// Diagnostics: source locations, severities, and a sink that collects
// structured messages from parsers, validators and the model compiler.
#pragma once

#include <string>
#include <vector>

namespace xtsoc {

/// A position in a textual source (action body or .xtm model file).
/// Lines and columns are 1-based; {0,0} means "no location".
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool is_valid() const { return line > 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity { kNote, kWarning, kError };

/// One structured diagnostic message.
struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string code;     ///< stable machine-readable code, e.g. "oal.parse.expected"
  std::string message;  ///< human-readable text

  std::string to_string() const;
};

/// Accumulates diagnostics; cheap to pass by reference through a pipeline.
class DiagnosticSink {
public:
  void error(std::string code, std::string message, SourceLoc loc = {});
  void warning(std::string code, std::string message, SourceLoc loc = {});
  void note(std::string code, std::string message, SourceLoc loc = {});

  bool has_errors() const;
  std::size_t error_count() const;
  const std::vector<Diagnostic>& all() const { return diags_; }
  void clear() { diags_.clear(); }

  /// All diagnostics joined by newlines — convenient for test failure output.
  std::string to_string() const;

private:
  std::vector<Diagnostic> diags_;
};

}  // namespace xtsoc
