// Deterministic pseudo-random number generation for workload generators.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomness in this repository flows through this splitmix64 generator
// seeded explicitly — never through std::random_device.
#pragma once

#include <cstdint>

namespace xtsoc {

/// One splitmix64 step: the seed-scrambling primitive every derived stream
/// in the repository starts from (fault sites, campaign seeds, snapshot
/// self-checks). Stateless — feed it the previous output to iterate.
inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xorshift64* stream: the per-site generator of fault::Plan, exposed here
/// so snapshot self-checks and xtsocd seed derivation draw from the same
/// sequence. State must never be zero (xorshift's one fixed point); seed()
/// forces the low bit, and the resumable raw state is readable/settable so
/// a checkpoint can persist a stream mid-sequence.
class Xorshift64Star {
public:
  Xorshift64Star() = default;
  /// Derive a never-zero state from an arbitrary 64-bit seed.
  static Xorshift64Star seeded(std::uint64_t seed) {
    Xorshift64Star s;
    s.state_ = splitmix64(seed) | 1;
    return s;
  }

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform double in [0, 1) — the Bernoulli draw fault::Plan rolls.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::uint64_t state() const { return state_; }
  /// Resume from a persisted state. Zero (the fixed point) is unreachable
  /// from any seeded stream, so it only appears via corruption; map it to 1
  /// rather than wedging the generator.
  void set_state(std::uint64_t s) { state_ = s != 0 ? s : 1; }

private:
  std::uint64_t state_ = 1;
};

/// splitmix64: tiny, fast, passes BigCrush; perfect for test workloads.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

private:
  std::uint64_t state_;
};

}  // namespace xtsoc
