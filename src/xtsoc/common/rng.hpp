// Deterministic pseudo-random number generation for workload generators.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomness in this repository flows through this splitmix64 generator
// seeded explicitly — never through std::random_device.
#pragma once

#include <cstdint>

namespace xtsoc {

/// splitmix64: tiny, fast, passes BigCrush; perfect for test workloads.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

private:
  std::uint64_t state_;
};

}  // namespace xtsoc
