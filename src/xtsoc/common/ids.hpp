// Strongly-typed integer identifiers for model elements.
//
// Every metamodel entity (class, state, event, ...) is referred to by a
// small-integer id that indexes into its owning container. Wrapping the
// integer in a distinct type per entity kind prevents accidentally using,
// say, a StateId where an EventId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace xtsoc {

/// CRTP-free strong id. `Tag` is an empty struct naming the entity kind.
template <typename Tag>
class Id {
public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel meaning "no such entity".
  static constexpr Id invalid() {
    return Id(std::numeric_limits<underlying_type>::max());
  }

  constexpr bool is_valid() const { return value_ != invalid().value_; }
  constexpr underlying_type value() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

struct ClassTag {};
struct AttributeTag {};
struct AssociationTag {};
struct StateTag {};
struct EventTag {};
struct TransitionTag {};
struct InstanceTag {};
struct SignalChannelTag {};
struct ProcessTag {};
struct HwSignalTag {};
struct TaskTag {};

using ClassId = Id<ClassTag>;
using AttributeId = Id<AttributeTag>;
using AssociationId = Id<AssociationTag>;
using StateId = Id<StateTag>;
using EventId = Id<EventTag>;
using TransitionId = Id<TransitionTag>;
using InstanceId = Id<InstanceTag>;
using ChannelId = Id<SignalChannelTag>;
using ProcessId = Id<ProcessTag>;
using HwSignalId = Id<HwSignalTag>;
using TaskId = Id<TaskTag>;

}  // namespace xtsoc

namespace std {
template <typename Tag>
struct hash<xtsoc::Id<Tag>> {
  size_t operator()(xtsoc::Id<Tag> id) const noexcept {
    return std::hash<typename xtsoc::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
