// .xtm — the textual model format.
//
// Models are data, not code: examples and tools load them from text so a
// model travels as one artifact (plus a separate .marks file — never mixed,
// per the paper's "marks describe models but they are not a part of them").
//
// Grammar (line comments start with '#'):
//
//   domain <Name>
//
//   class <Name> [key <KL>]
//     attr <name> : bool|int|real|string [= <literal>]
//     attr <name> : ref <Class>
//     event <name>([<param> : <type>[, ...]])     -- type may be "ref Class"
//     state <Name> [final] {
//       ...OAL action body (no braces in OAL, so '}' ends it)...
//     }
//     transition <From> on <event> -> <To>
//     initial <State>
//     on_unexpected ignore|cant_happen
//   end
//
//   assoc <Rn> <ClassA> <roleA> <multA> -- <ClassB> <roleB> <multB>
//     where mult is one of: 1, 0..1, 1..*, *
#pragma once

#include <memory>
#include <string_view>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::text {

/// Parse a .xtm document. Returns nullptr and reports to `sink` on error.
std::unique_ptr<xtuml::Domain> parse_xtm(std::string_view text,
                                         DiagnosticSink& sink);

/// Serialize a Domain back to .xtm text. parse_xtm(write_xtm(d)) is
/// structurally identical to d (round-trip property, tested).
std::string write_xtm(const xtuml::Domain& domain);

}  // namespace xtsoc::text
