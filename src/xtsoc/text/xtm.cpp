#include "xtsoc/text/xtm.hpp"

#include <charconv>
#include <sstream>

#include "xtsoc/common/strings.hpp"

namespace xtsoc::text {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::Multiplicity;
using xtuml::Parameter;
using xtuml::ScalarValue;

namespace {

/// Whitespace tokenizer over one line.
std::vector<std::string> words(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_mult(std::string_view s, Multiplicity* out) {
  if (s == "1") {
    *out = Multiplicity::kOne;
  } else if (s == "0..1") {
    *out = Multiplicity::kZeroOne;
  } else if (s == "1..*") {
    *out = Multiplicity::kMany;
  } else if (s == "*") {
    *out = Multiplicity::kZeroMany;
  } else {
    return false;
  }
  return true;
}

const char* mult_text(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne: return "1";
    case Multiplicity::kZeroOne: return "0..1";
    case Multiplicity::kMany: return "1..*";
    case Multiplicity::kZeroMany: return "*";
  }
  return "*";
}

bool parse_type(std::string_view s, DataType* out) {
  if (s == "bool") {
    *out = DataType::kBool;
  } else if (s == "int") {
    *out = DataType::kInt;
  } else if (s == "real") {
    *out = DataType::kReal;
  } else if (s == "string") {
    *out = DataType::kString;
  } else {
    return false;
  }
  return true;
}

class XtmParser {
public:
  XtmParser(std::string_view text, DiagnosticSink& sink)
      : lines_(split(text, '\n')), sink_(sink) {}

  std::unique_ptr<Domain> run() {
    // Pass 1: find the domain name and pre-declare every class so that
    // forward references (ref attrs, ref params, associations) resolve.
    std::string domain_name;
    for (const std::string& raw : lines_) {
      std::vector<std::string> w = words(strip_comment(raw));
      if (w.empty()) continue;
      if (w[0] == "domain" && w.size() >= 2 && domain_name.empty()) {
        domain_name = w[1];
      }
    }
    if (domain_name.empty()) {
      sink_.error("xtm.domain", "missing 'domain <Name>' declaration");
      return nullptr;
    }
    domain_ = std::make_unique<Domain>(domain_name);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::vector<std::string> w = words(strip_comment(lines_[i]));
      if (w.size() >= 2 && w[0] == "class") {
        std::string key = (w.size() >= 4 && w[2] == "key") ? w[3] : "";
        if (domain_->find_class(w[1]) != nullptr) {
          error(i, "xtm.class.dup", "duplicate class '" + w[1] + "'");
          continue;
        }
        domain_->add_class(w[1], key);
      }
    }

    // Pass 2: full parse.
    while (line_ < lines_.size()) {
      std::vector<std::string> w = words(strip_comment(lines_[line_]));
      if (w.empty() || w[0] == "domain") {
        ++line_;
        continue;
      }
      if (w[0] == "class") {
        parse_class(w);
      } else if (w[0] == "assoc") {
        parse_assoc(w);
        ++line_;
      } else {
        error(line_, "xtm.stmt", "unexpected '" + w[0] + "' at top level");
        ++line_;
      }
    }
    if (sink_.has_errors()) return nullptr;
    return std::move(domain_);
  }

private:
  static std::string strip_comment(const std::string& raw) {
    std::size_t pos = raw.find('#');
    return pos == std::string::npos ? raw : raw.substr(0, pos);
  }

  void error(std::size_t line, std::string code, std::string msg) {
    sink_.error(std::move(code), std::move(msg),
                {static_cast<int>(line) + 1, 1});
  }

  /// Parse "name : type [= literal]" or "name : ref Class" from words
  /// starting at index `at`. Returns false on error.
  bool parse_typed_name(const std::vector<std::string>& w, std::size_t at,
                        std::string* name, DataType* type, ClassId* ref,
                        std::optional<ScalarValue>* def) {
    if (w.size() < at + 3 || w[at + 1] != ":") return false;
    *name = w[at];
    if (w[at + 2] == "ref") {
      if (w.size() < at + 4) return false;
      *type = DataType::kInstRef;
      *ref = domain_->find_class_id(w[at + 3]);
      if (!ref->is_valid()) {
        error(line_, "xtm.ref", "unknown class '" + w[at + 3] + "'");
        return false;
      }
      return true;
    }
    if (!parse_type(w[at + 2], type)) {
      error(line_, "xtm.type", "unknown type '" + w[at + 2] + "'");
      return false;
    }
    if (w.size() >= at + 5 && w[at + 3] == "=") {
      std::string lit = w[at + 4];
      // Re-join the remainder in case of spaces inside string literals.
      for (std::size_t k = at + 5; k < w.size(); ++k) lit += " " + w[k];
      if (lit == "true") {
        *def = ScalarValue(true);
      } else if (lit == "false") {
        *def = ScalarValue(false);
      } else if (!lit.empty() && lit.front() == '"') {
        if (lit.size() < 2 || lit.back() != '"') {
          error(line_, "xtm.literal", "unterminated string literal");
          return false;
        }
        *def = ScalarValue(lit.substr(1, lit.size() - 2));
      } else if (lit.find('.') != std::string::npos) {
        try {
          *def = ScalarValue(std::stod(lit));
        } catch (...) {
          error(line_, "xtm.literal", "bad real literal '" + lit + "'");
          return false;
        }
      } else {
        std::int64_t v = 0;
        auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
        if (ec != std::errc{} || p != lit.data() + lit.size()) {
          error(line_, "xtm.literal", "bad literal '" + lit + "'");
          return false;
        }
        *def = ScalarValue(v);
      }
    }
    return true;
  }

  void parse_class(const std::vector<std::string>& header) {
    ClassId cls = domain_->find_class_id(header.size() >= 2 ? header[1] : "");
    ++line_;
    if (!cls.is_valid()) return;

    while (line_ < lines_.size()) {
      std::string stripped = strip_comment(lines_[line_]);
      std::vector<std::string> w = words(stripped);
      if (w.empty()) {
        ++line_;
        continue;
      }
      if (w[0] == "end") {
        ++line_;
        return;
      }
      if (w[0] == "attr") {
        std::string name;
        DataType type = DataType::kInt;
        ClassId ref = ClassId::invalid();
        std::optional<ScalarValue> def;
        if (parse_typed_name(w, 1, &name, &type, &ref, &def)) {
          domain_->add_attribute(cls, name, type, def, ref);
        } else if (!sink_.has_errors()) {
          error(line_, "xtm.attr", "malformed attr line");
        }
        ++line_;
      } else if (w[0] == "event") {
        parse_event(cls, stripped);
        ++line_;
      } else if (w[0] == "state") {
        parse_state(cls, w);
      } else if (w[0] == "transition") {
        // transition <From> on <event> -> <To>
        if (w.size() != 6 || w[2] != "on" || w[4] != "->") {
          error(line_, "xtm.transition",
                "expected 'transition <From> on <event> -> <To>'");
          ++line_;
          continue;
        }
        const xtuml::ClassDef& def = domain_->cls(cls);
        const xtuml::StateDef* from = def.find_state(w[1]);
        const xtuml::EventDef* ev = def.find_event(w[3]);
        const xtuml::StateDef* to = def.find_state(w[5]);
        if (from == nullptr || ev == nullptr || to == nullptr) {
          error(line_, "xtm.transition",
                "unknown state or event in transition");
        } else {
          domain_->add_transition(cls, from->id, ev->id, to->id);
        }
        ++line_;
      } else if (w[0] == "initial") {
        const xtuml::StateDef* st =
            w.size() >= 2 ? domain_->cls(cls).find_state(w[1]) : nullptr;
        if (st == nullptr) {
          error(line_, "xtm.initial", "unknown initial state");
        } else {
          domain_->set_initial_state(cls, st->id);
        }
        ++line_;
      } else if (w[0] == "on_unexpected") {
        if (w.size() >= 2 && w[1] == "cant_happen") {
          domain_->cls(cls).fallback = xtuml::EventFallback::kCantHappen;
        } else if (w.size() >= 2 && w[1] == "ignore") {
          domain_->cls(cls).fallback = xtuml::EventFallback::kIgnore;
        } else {
          error(line_, "xtm.fallback", "expected 'ignore' or 'cant_happen'");
        }
        ++line_;
      } else {
        error(line_, "xtm.class.stmt", "unexpected '" + w[0] + "' in class");
        ++line_;
      }
    }
    error(line_ - 1, "xtm.class.unterminated", "class without 'end'");
  }

  void parse_event(ClassId cls, const std::string& line) {
    std::size_t open = line.find('(');
    std::size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      error(line_, "xtm.event", "expected 'event name(params)'");
      return;
    }
    std::string name(trim(line.substr(line.find("event") + 5,
                                      open - line.find("event") - 5)));
    std::vector<Parameter> params;
    std::string inner = line.substr(open + 1, close - open - 1);
    if (!trim(inner).empty()) {
      for (const std::string& piece : split(inner, ',')) {
        std::vector<std::string> w = words(piece);
        // name : type   |   name : ref Class
        if (w.size() < 3 || w[1] != ":") {
          error(line_, "xtm.event.param", "malformed parameter '" + piece + "'");
          return;
        }
        Parameter p;
        p.name = w[0];
        if (w[2] == "ref") {
          if (w.size() < 4) {
            error(line_, "xtm.event.param", "ref parameter needs a class");
            return;
          }
          p.type = DataType::kInstRef;
          p.ref_class = domain_->find_class_id(w[3]);
          if (!p.ref_class.is_valid()) {
            error(line_, "xtm.event.param", "unknown class '" + w[3] + "'");
            return;
          }
        } else if (!parse_type(w[2], &p.type)) {
          error(line_, "xtm.event.param", "unknown type '" + w[2] + "'");
          return;
        }
        params.push_back(std::move(p));
      }
    }
    domain_->add_event(cls, name, std::move(params));
  }

  void parse_state(ClassId cls, const std::vector<std::string>& w) {
    // state <Name> [final] {       ...body...      }
    if (w.size() < 3 || w.back() != "{") {
      error(line_, "xtm.state", "expected 'state <Name> [final] {'");
      ++line_;
      return;
    }
    bool is_final = w.size() >= 4 && w[2] == "final";
    std::string name = w[1];
    ++line_;
    std::string body;
    while (line_ < lines_.size()) {
      std::string_view t = trim(lines_[line_]);
      if (t == "}") {
        ++line_;
        domain_->add_state(cls, name, body, is_final);
        return;
      }
      body += lines_[line_];
      body += '\n';
      ++line_;
    }
    error(line_ - 1, "xtm.state.unterminated",
          "state '" + name + "' without closing '}'");
  }

  void parse_assoc(const std::vector<std::string>& w) {
    // assoc <Rn> <ClassA> <roleA> <multA> -- <ClassB> <roleB> <multB>
    if (w.size() != 9 || w[5] != "--") {
      error(line_, "xtm.assoc",
            "expected 'assoc Rn ClassA roleA mult -- ClassB roleB mult'");
      return;
    }
    ClassId a = domain_->find_class_id(w[2]);
    ClassId b = domain_->find_class_id(w[6]);
    Multiplicity ma, mb;
    if (!a.is_valid() || !b.is_valid()) {
      error(line_, "xtm.assoc", "unknown class in association");
      return;
    }
    if (!parse_mult(w[4], &ma) || !parse_mult(w[8], &mb)) {
      error(line_, "xtm.assoc", "bad multiplicity (use 1, 0..1, 1..*, *)");
      return;
    }
    domain_->add_association(w[1], {a, w[3], ma}, {b, w[7], mb});
  }

  std::vector<std::string> lines_;
  DiagnosticSink& sink_;
  std::unique_ptr<Domain> domain_;
  std::size_t line_ = 0;
};

}  // namespace

std::unique_ptr<Domain> parse_xtm(std::string_view text, DiagnosticSink& sink) {
  return XtmParser(text, sink).run();
}

std::string write_xtm(const Domain& domain) {
  std::ostringstream os;
  os << "domain " << domain.name() << "\n\n";
  for (const auto& c : domain.classes()) {
    os << "class " << c.name;
    if (!c.key_letters.empty()) os << " key " << c.key_letters;
    os << '\n';
    for (const auto& a : c.attributes) {
      os << "  attr " << a.name << " : ";
      if (a.type == DataType::kInstRef) {
        os << "ref " << domain.cls(a.ref_class).name;
      } else {
        os << xtuml::to_string(a.type);
        if (a.default_value) {
          os << " = " << xtuml::scalar_to_string(*a.default_value);
        }
      }
      os << '\n';
    }
    for (const auto& e : c.events) {
      os << "  event " << e.name << '(';
      for (std::size_t i = 0; i < e.params.size(); ++i) {
        if (i > 0) os << ", ";
        os << e.params[i].name << " : ";
        if (e.params[i].type == DataType::kInstRef) {
          os << "ref " << domain.cls(e.params[i].ref_class).name;
        } else {
          os << xtuml::to_string(e.params[i].type);
        }
      }
      os << ")\n";
    }
    for (const auto& s : c.states) {
      os << "  state " << s.name << (s.is_final ? " final" : "") << " {\n";
      std::string body(trim(dedent(s.action_source)));
      if (!body.empty()) {
        os << indent(body, 4);
        if (body.back() != '\n') os << '\n';
      }
      os << "  }\n";
    }
    for (const auto& t : c.transitions) {
      os << "  transition " << c.state(t.from).name << " on "
         << c.event(t.event).name << " -> " << c.state(t.to).name << '\n';
    }
    if (c.has_state_machine() && c.initial_state.is_valid()) {
      os << "  initial " << c.state(c.initial_state).name << '\n';
    }
    if (c.fallback == xtuml::EventFallback::kCantHappen) {
      os << "  on_unexpected cant_happen\n";
    }
    os << "end\n\n";
  }
  for (const auto& a : domain.associations()) {
    os << "assoc " << a.name << ' ' << domain.cls(a.a.cls).name << ' '
       << a.a.role << ' ' << mult_text(a.a.mult) << " -- "
       << domain.cls(a.b.cls).name << ' ' << a.b.role << ' '
       << mult_text(a.b.mult) << '\n';
  }
  return os.str();
}

}  // namespace xtsoc::text
