// Packet-filter SoC: the paper's full workflow on one page.
//
//   1. Model a packet pipeline (classifier -> crypto -> sink) with NO
//      hardware/software decision anywhere in the model.
//   2. Run it all-software, measure, and let the advisor find the hot spot.
//   3. Move ONE mark (isHardware on the hot class), remap, re-run.
//   4. Compare: same functional results, different cycle counts — and the
//      entire "redesign" was a one-line mark diff (paper §4: "Changing the
//      partition is a matter of changing the placement of the marks").
//
//   $ ./packet_filter

#include <cstdio>

#include "xtsoc/core/project.hpp"
#include "xtsoc/xtuml/builder.hpp"

using namespace xtsoc;
using runtime::InstanceHandle;
using runtime::Value;

namespace {

std::unique_ptr<xtuml::Domain> make_packet_soc() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("PacketSoc");
  b.cls("Classifier", "CLS");
  b.cls("Crypto", "CRY");
  b.cls("Sink", "SNK");

  b.edit("Classifier")
      .attr("seen", DataType::kInt)
      .ref_attr("crypto", "Crypto")
      .ref_attr("sink", "Sink")
      .event("packet", {{"len", DataType::kInt}, {"seq", DataType::kInt}})
      .state("Classify",
             "self.seen = self.seen + 1;\n"
             "if (param.len % 2 == 0)\n"
             "  generate encrypt(seq: param.seq, len: param.len) to "
             "self.crypto;\n"
             "else\n"
             "  generate deliver(seq: param.seq, check: param.len) to "
             "self.sink;\n"
             "end if;")
      .transition("Classify", "packet", "Classify");

  // Crypto does the heavy lifting: a per-packet work loop. This is the
  // class the measurements will finger as the hardware candidate.
  b.edit("Crypto")
      .attr("done_count", DataType::kInt)
      .ref_attr("sink", "Sink")
      .event("encrypt", {{"seq", DataType::kInt}, {"len", DataType::kInt}})
      .state("Scramble",
             "key = 5;\n"
             "acc = param.seq;\n"
             "round = 0;\n"
             "while (round < param.len)\n"
             "  acc = (acc * 31 + key) % 65537;\n"
             "  round = round + 1;\n"
             "end while;\n"
             "self.done_count = self.done_count + 1;\n"
             "generate deliver(seq: param.seq, check: acc) to self.sink;")
      .transition("Scramble", "encrypt", "Scramble");

  b.edit("Sink")
      .attr("received", DataType::kInt)
      .attr("checksum", DataType::kInt)
      .event("deliver", {{"seq", DataType::kInt}, {"check", DataType::kInt}})
      .state("Collect",
             "self.received = self.received + 1;\n"
             "self.checksum = (self.checksum + param.check) % 1000000007;")
      .transition("Collect", "deliver", "Collect");
  return b.take();
}

struct RunResult {
  std::uint64_t cycles = 0;
  std::int64_t received = 0;
  std::int64_t checksum = 0;
  perf::PerfReport perf;
};

RunResult run_workload(core::Project& project, int packets) {
  cosim::CoSimConfig cfg;
  cfg.sw_steps_per_cycle = 8;
  cfg.sw_ops_per_cycle = 64;  // a modest embedded core
  auto cosim = project.make_cosim(cfg);
  InstanceHandle sink = cosim->create("Sink");
  InstanceHandle crypto =
      cosim->create_with("Crypto", {{"sink", Value(sink)}});
  InstanceHandle classifier = cosim->create_with(
      "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});

  // Burst arrival: all packets hit the classifier at once, so completion
  // time is compute-bound — exactly the situation where the partition
  // decision matters.
  for (int i = 0; i < packets; ++i) {
    std::int64_t len = 16 + (i * 7) % 48;
    cosim->inject(classifier, "packet",
                  {Value(len), Value(static_cast<std::int64_t>(i))});
  }
  cosim->run(1'000'000);

  RunResult r;
  r.cycles = cosim->cycles();
  const xtuml::ClassDef& sink_cls = *project.domain().find_class("Sink");
  runtime::Executor& owner = cosim->executor_of(sink.cls);
  r.received = std::get<std::int64_t>(
      owner.database().get_attr(sink, sink_cls.find_attribute("received")->id));
  r.checksum = std::get<std::int64_t>(
      owner.database().get_attr(sink, sink_cls.find_attribute("checksum")->id));
  r.perf = perf::measure(*cosim);
  return r;
}

}  // namespace

int main() {
  constexpr int kPackets = 200;
  DiagnosticSink sink;

  // Step 1: all-software (no marks at all).
  auto project =
      core::Project::from_domain(make_packet_soc(), marks::MarkSet{}, sink);
  if (!project) {
    std::fprintf(stderr, "model rejected:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("== step 1: all-software prototype ==\n%s\n",
              project->summary().c_str());

  RunResult sw = run_workload(*project, kPackets);
  std::printf("%s\n", sw.perf.to_table().c_str());

  // Step 2: measure -> the advisor fingers the hot class.
  perf::RepartitionAdvice advice = perf::suggest_repartition(sw.perf);
  if (!advice.has_suggestion) {
    std::printf("advisor: nothing to move\n");
    return 0;
  }
  std::printf("advisor: %s\n\n", advice.rationale.c_str());

  // Step 3: the repartition IS the mark diff. No model edits.
  marks::MarkSet accel = project->marks();
  accel.mark_hardware(advice.class_name);
  accel.set_domain_mark(marks::kBusLatency, xtuml::ScalarValue(std::int64_t{2}));
  auto diff = project->repartition(accel, sink);
  if (!diff) {
    std::fprintf(stderr, "repartition rejected:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("== step 2: repartition = mark diff (%zu changes) ==\n%s\n",
              diff->size(), diff->to_string().c_str());
  std::printf("%s\n", project->summary().c_str());

  RunResult hw = run_workload(*project, kPackets);
  std::printf("%s\n", hw.perf.to_table().c_str());

  // Step 4: same answers, different placement.
  std::printf("== step 3: results ==\n");
  std::printf("  %-22s %12s %12s\n", "", "all-sw", "accelerated");
  std::printf("  %-22s %12llu %12llu\n", "cycles",
              static_cast<unsigned long long>(sw.cycles),
              static_cast<unsigned long long>(hw.cycles));
  std::printf("  %-22s %12lld %12lld\n", "packets delivered",
              static_cast<long long>(sw.received),
              static_cast<long long>(hw.received));
  std::printf("  %-22s %12lld %12lld\n", "checksum",
              static_cast<long long>(sw.checksum),
              static_cast<long long>(hw.checksum));
  std::printf("  functional results %s; placement changed by a sticky note.\n",
              (sw.received == hw.received && sw.checksum == hw.checksum)
                  ? "IDENTICAL"
                  : "DIVERGED (bug!)");
  return sw.received == hw.received && sw.checksum == hw.checksum ? 0 : 1;
}
