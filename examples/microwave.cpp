// The classic Shlaer-Mellor microwave oven, with formal test cases executed
// against the model (paper §2: "formal test cases can be executed against
// the model to verify that requirements have been properly met") and then
// against a partitioned implementation — same test cases, unchanged.
//
//   $ ./microwave

#include <cstdio>

#include "xtsoc/core/project.hpp"
#include "xtsoc/xtuml/builder.hpp"

using namespace xtsoc;
using runtime::Value;

namespace {

std::unique_ptr<xtuml::Domain> make_oven_model() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Microwave");
  b.cls("Oven", "OVN");
  b.cls("Magnetron", "MAG");

  // The magnetron is the power stage: a natural hardware candidate.
  b.edit("Magnetron")
      .attr("energized", DataType::kBool)
      .attr("watt_seconds", DataType::kInt)
      .event("power_on", {{"watts", DataType::kInt}})
      .event("power_off")
      .state("Off", "self.energized = false;")
      .state("Radiating",
             "self.energized = true;\n"
             "self.watt_seconds = self.watt_seconds + param.watts;")
      .transition("Off", "power_on", "Radiating")
      .transition("Radiating", "power_off", "Off")
      .transition("Radiating", "power_on", "Radiating")
      .initial("Off");

  b.edit("Oven")
      .attr("remaining", DataType::kInt)
      .attr("door_open", DataType::kBool)
      .ref_attr("tube", "Magnetron")
      .event("open_door")
      .event("close_door")
      .event("start", {{"seconds", DataType::kInt}})
      .event("second_elapsed")
      .state("Idle")
      .state("Cooking",
             "self.remaining = param.seconds;\n"
             "generate power_on(watts: 900) to self.tube;\n"
             "generate second_elapsed() to self delay 10;")
      .state("Ticking",
             "self.remaining = self.remaining - 1;\n"
             "if (self.remaining > 0)\n"
             "  generate second_elapsed() to self delay 10;\n"
             "else\n"
             "  generate done() to self;\n"
             "end if;")
      .state("Finished",
             "generate power_off() to self.tube;\n"
             "log \"cooking complete\";")
      .state("Interrupted",
             "generate power_off() to self.tube;")
      .event("done")
      .transition("Idle", "start", "Cooking")
      .transition("Cooking", "second_elapsed", "Ticking")
      .transition("Ticking", "second_elapsed", "Ticking")
      .transition("Ticking", "done", "Finished")
      .transition("Cooking", "open_door", "Interrupted")
      .transition("Ticking", "open_door", "Interrupted")
      .transition("Interrupted", "close_door", "Idle")
      .transition("Finished", "open_door", "Interrupted")
      .initial("Idle");
  return b.take();
}

/// Requirement: a 3-second cook energizes the tube, ticks down, powers off.
verify::TestCase cook_requirement() {
  verify::TestCase t;
  t.name = "req-1: normal cook cycle";
  t.population = {
      {"tube", "Magnetron", {}},
      {"oven", "Oven", {{"tube", verify::RefByName{"tube"}}}},
  };
  t.stimuli = {{"oven", "start", {Value(std::int64_t{3})}, 0}};
  t.expect_states = {{"oven", "Finished"}, {"tube", "Off"}};
  t.expect_attrs = {
      {"oven", "remaining", Value(std::int64_t{0})},
      {"tube", "energized", Value(false)},
      {"tube", "watt_seconds", Value(std::int64_t{900})},
  };
  return t;
}

/// Requirement: opening the door stops radiation immediately.
verify::TestCase door_safety_requirement() {
  verify::TestCase t;
  t.name = "req-2: door interlock";
  t.population = {
      {"tube", "Magnetron", {}},
      {"oven", "Oven", {{"tube", verify::RefByName{"tube"}}}},
  };
  t.stimuli = {
      {"oven", "start", {Value(std::int64_t{30})}, 0},
      {"oven", "open_door", {}, 15},  // interrupt between ticks 1 and 2
  };
  t.expect_states = {{"oven", "Interrupted"}, {"tube", "Off"}};
  t.expect_attrs = {{"tube", "energized", Value(false)}};
  return t;
}

void report(const char* what, const verify::RunReport& r) {
  std::printf("  %-28s %s\n", what, r.to_string().c_str());
}

}  // namespace

int main() {
  DiagnosticSink sink;

  // Mark the magnetron for hardware: the partition decision lives here, in
  // the marks, not in the model above.
  marks::MarkSet marks;
  marks.mark_hardware("Magnetron");
  marks.set_domain_mark(marks::kBusLatency,
                        xtuml::ScalarValue(std::int64_t{2}));

  auto project = core::Project::from_domain(make_oven_model(),
                                            std::move(marks), sink);
  if (!project) {
    std::fprintf(stderr, "model rejected:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("%s\n", project->summary().c_str());

  std::printf("requirements, executed against the MODEL (no implementation):\n");
  for (const auto& test : {cook_requirement(), door_safety_requirement()}) {
    report(test.name.c_str(), project->run_model_test(test));
  }

  std::printf("\nsame requirements, against the PARTITIONED system "
              "(magnetron in hardware):\n");
  for (const auto& test : {cook_requirement(), door_safety_requirement()}) {
    verify::ConformanceReport cr = project->run_conformance(test);
    report(test.name.c_str(), cr.cosim_run);
    std::printf("  %-28s %s\n", "  projection equivalence",
                cr.equivalence.to_string().c_str());
  }
  return 0;
}
