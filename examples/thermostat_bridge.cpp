// Multi-domain systems: an application domain (thermostat logic) and a
// device domain (heater driver), modelled independently and joined by
// bridges — the integration story of the paper's reference [2], MDA
// Distilled. Each domain only ever talks to its own PROXY classes; wires
// forward proxy signals to bound instances in the other domain.
//
//   $ ./thermostat_bridge

#include <cstdio>

#include "xtsoc/bridge/bridge.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/xtuml/builder.hpp"

using namespace xtsoc;
using runtime::Value;

namespace {

std::unique_ptr<xtuml::Domain> make_app_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("App");
  // The heater as the APPLICATION sees it: just "something heatable".
  b.cls("HeaterProxy").event("heat_request", {{"watts", DataType::kInt}});
  b.cls("Thermostat")
      .attr("confirmed", DataType::kInt)
      .ref_attr("heater", "HeaterProxy")
      .event("too_cold", {{"delta", DataType::kInt}})
      .event("heating_started")
      .state("Watching")
      .state("Requesting",
             "log \"app: requesting heat\";\n"
             "generate heat_request(watts: 100 * param.delta) to self.heater;")
      .state("Heating",
             "self.confirmed = self.confirmed + 1;\n"
             "log \"app: heater confirmed on\";")
      .transition("Watching", "too_cold", "Requesting")
      .transition("Requesting", "heating_started", "Heating")
      .transition("Heating", "too_cold", "Requesting");
  return b.take();
}

std::unique_ptr<xtuml::Domain> make_device_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Device");
  // The client as the DRIVER sees it: something to notify.
  b.cls("AppProxy").event("started");
  b.cls("Heater")
      .attr("watts", DataType::kInt)
      .attr("activations", DataType::kInt)
      .ref_attr("client", "AppProxy")
      .event("on", {{"watts", DataType::kInt}})
      .state("Off")
      .state("On",
             "self.watts = param.watts;\n"
             "self.activations = self.activations + 1;\n"
             "log \"device: element on at\", self.watts, \"W\";\n"
             "generate started() to self.client;")
      .transition("Off", "on", "On")
      .transition("On", "on", "On");
  return b.take();
}

}  // namespace

int main() {
  DiagnosticSink sink;
  auto app_domain = make_app_domain();
  auto dev_domain = make_device_domain();
  auto app = oal::compile_domain(*app_domain, sink);
  auto dev = oal::compile_domain(*dev_domain, sink);
  if (!app || !dev) {
    std::fprintf(stderr, "%s", sink.to_string().c_str());
    return 1;
  }

  bridge::SystemDef def;
  def.add_domain(*app);
  def.add_domain(*dev);
  def.add_wire({"App", "HeaterProxy", "heat_request", "Device", "Heater", "on"});
  def.add_wire({"Device", "AppProxy", "started",
                "App", "Thermostat", "heating_started"});
  if (!def.validate(sink)) {
    std::fprintf(stderr, "%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("system: 2 domains, %zu wires — validated\n",
              def.wires().size());

  bridge::SystemExecutor sys(def);
  auto& app_rt = sys.domain("App");
  auto& dev_rt = sys.domain("Device");
  auto proxy = app_rt.create("HeaterProxy");
  auto thermo = app_rt.create_with("Thermostat", {{"heater", Value(proxy)}});
  auto app_proxy = dev_rt.create("AppProxy");
  auto heater = dev_rt.create_with("Heater", {{"client", Value(app_proxy)}});
  sys.bind(proxy, "App", heater, "Device");
  sys.bind(app_proxy, "Device", thermo, "App");

  for (int i = 1; i <= 3; ++i) {
    app_rt.inject(thermo, "too_cold", {Value(static_cast<std::int64_t>(i))});
    sys.run_all();
  }

  // Show the log lines of both domains, in their own timelines.
  for (auto* rt : {&app_rt, &dev_rt}) {
    std::printf("--- %s ---\n", rt->domain().name().c_str());
    for (const auto& e : rt->trace().events()) {
      if (e.kind == runtime::TraceKind::kLog) {
        std::printf("  %s\n", e.text.c_str());
      }
    }
  }
  std::printf("bridged signals carried: %llu\n",
              static_cast<unsigned long long>(sys.forwarded_count()));
  return sys.forwarded_count() == 6 ? 0 : 1;  // 3 requests + 3 confirmations
}
