// Traffic-light controller, authored as .xtm TEXT (the model is data), then
// pushed through the model compiler: the same marked model yields C for the
// software half and VHDL for the hardware half, with the interface defined
// in exactly one place.
//
//   $ ./traffic_light            # prints summary + file inventory
//   $ ./traffic_light --dump     # also prints every generated file

#include <cstdio>
#include <cstring>

#include "xtsoc/core/project.hpp"

using namespace xtsoc;

namespace {

constexpr const char* kModel = R"(
# Intersection controller: one Controller sequences two Lights.
#
# The controller holds instance REFERENCES to its lights and talks to them
# only by signals — associations and data access may not cross a partition
# boundary, so a model that keeps lights behind refs can put them on either
# side of the fence.
domain Traffic

class Controller key CTL
  attr cycles : int = 0
  attr ns : ref Light          # north-south head
  attr ew : ref Light          # east-west head
  event tick()
  state Running {
    self.cycles = self.cycles + 1;
    generate advance() to self.ns;
    generate advance() to self.ew;
    generate tick() to self delay 10;
  }
  transition Running on tick -> Running
  initial Running
end

# The lamp driver is a hardware candidate: trivially simple, hard-real-time.
class Light key LGT
  attr color : int = 0        # 0=red 1=green 2=yellow
  event advance()
  state Red {
    self.color = 0;
  }
  state Green {
    self.color = 1;
  }
  state Yellow {
    self.color = 2;
  }
  transition Red on advance -> Green
  transition Green on advance -> Yellow
  transition Yellow on advance -> Red
  initial Red
end
)";

constexpr const char* kMarks = R"(
# sticky notes, kept OUTSIDE the model
Light.isHardware = true
Light.maxInstances = 4
Light.intWidth = 8
domain.busLatency = 1
)";

}  // namespace

int main(int argc, char** argv) {
  const bool dump = argc > 1 && std::strcmp(argv[1], "--dump") == 0;

  DiagnosticSink sink;
  auto project = core::Project::from_xtm(kModel, kMarks, sink);
  if (!project) {
    std::fprintf(stderr, "rejected:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("%s\n", project->summary().c_str());

  // Hold the model to its word before generating anything: run it.
  auto exec = project->make_abstract_executor();
  auto l1 = exec->create("Light");
  auto l2 = exec->create("Light");
  auto ctl = exec->create_with(
      "Controller",
      {{"ns", runtime::Value(l1)}, {"ew", runtime::Value(l2)}});
  exec->inject(ctl, "tick");
  exec->run_all(/*max_dispatches=*/20);  // the controller self-ticks forever
  std::printf("abstract run: %llu dispatches, t=%llu, light1 color=%s\n\n",
              static_cast<unsigned long long>(exec->dispatch_count()),
              static_cast<unsigned long long>(exec->now()),
              runtime::to_string(
                  exec->database().get_attr(l1, AttributeId(0))).c_str());

  // One marked model -> two compilable texts.
  codegen::Output out = project->generate_all(sink);
  if (sink.has_errors()) {
    std::fprintf(stderr, "codegen failed:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("generated %zu files, %zu lines total:\n", out.files.size(),
              out.total_lines());
  for (const auto& f : out.files) {
    std::printf("  %-24s %6zu lines\n", f.path.c_str(),
                count_lines(f.content));
  }
  if (dump) {
    for (const auto& f : out.files) {
      std::printf("\n===== %s =====\n%s", f.path.c_str(), f.content.c_str());
    }
  } else {
    std::printf("\n(re-run with --dump to print the generated C and VHDL)\n");
  }
  return 0;
}
