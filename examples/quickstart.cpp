// Quickstart: build a tiny Executable UML model in C++, run it on the
// abstract executor, and watch the trace.
//
// The model is a doorbell: pressing the button signals the chime, which
// counts rings and re-arms itself. No hardware/software decision is made
// anywhere in this file — that is the whole point of the paper's abstract
// modelling argument (§1-2).
//
//   $ ./quickstart

#include <cstdio>

#include "xtsoc/core/project.hpp"
#include "xtsoc/xtuml/builder.hpp"

using namespace xtsoc;

int main() {
  // --- 1. Model: classes, signals, state machines --------------------------
  xtuml::DomainBuilder b("Doorbell");
  b.cls("Chime", "CHM");
  b.cls("Button", "BTN");

  b.edit("Chime")
      .attr("rings", xtuml::DataType::kInt)
      .event("ring", {{"volume", xtuml::DataType::kInt}})
      .state("Armed")
      .state("Ringing",
             "self.rings = self.rings + 1;\n"
             "log \"ding! volume\", param.volume, \"total rings\", self.rings;\n"
             "generate rearm() to self;")
      .event("rearm")
      .transition("Armed", "ring", "Ringing")
      .transition("Ringing", "rearm", "Armed");

  b.edit("Button")
      .ref_attr("chime", "Chime")
      .event("press")
      .state("Idle")
      .state("Pressed", "generate ring(volume: 7) to self.chime;\n"
                        "generate release() to self;")
      .event("release")
      .transition("Idle", "press", "Pressed")
      .transition("Pressed", "release", "Idle");

  // --- 2. Compile (validate + type-check every action) ---------------------
  DiagnosticSink sink;
  auto project = core::Project::from_domain(b.take(), marks::MarkSet{}, sink);
  if (!project) {
    std::fprintf(stderr, "model rejected:\n%s", sink.to_string().c_str());
    return 1;
  }
  std::printf("%s\n", project->summary().c_str());

  // --- 3. Execute the MODEL, no implementation anywhere --------------------
  auto exec = project->make_abstract_executor();
  auto chime = exec->create("Chime");
  auto button = exec->create_with("Button", {{"chime", runtime::Value(chime)}});

  for (int i = 0; i < 3; ++i) exec->inject(button, "press");
  exec->run_all();

  std::printf("--- trace ---\n%s", exec->trace().to_string().c_str());
  std::printf("--- done: %llu signals dispatched ---\n",
              static_cast<unsigned long long>(exec->dispatch_count()));
  return 0;
}
