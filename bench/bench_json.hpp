// Machine-readable benchmark output.
//
// Every bench binary writes a BENCH_<name>.json next to the repo root (the
// `bench` CMake target runs them all), so performance numbers are diffable
// across commits without scraping google-benchmark's console output. The
// JSON measurements are short, self-contained runs taken with Timer —
// independent of the google-benchmark harness, which still provides the
// detailed interactive numbers.
//
// Schema: {"bench": "<name>", "results": [{"metric": ..., "value": ...,
// "unit": ..., "config": ...}, ...]} — one entry per (metric, config)
// point.
//
// Output directory: $XTSOC_BENCH_DIR if set, else the source tree root
// (XTSOC_REPO_ROOT, injected by bench/CMakeLists.txt).
//
// Invoke a bench with --json-only to run just the JSON measurements and
// skip the google-benchmark suite (what the `bench` target does).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "xtsoc/obs/json.hpp"

namespace xtsoc::bench {

/// Wall-clock stopwatch for the JSON measurements.
class Timer {
public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

private:
  std::chrono::steady_clock::time_point start_;
};

class JsonReport {
public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(std::string metric, double value, std::string unit,
           std::string config) {
    rows_.push_back(
        {std::move(metric), value, std::move(unit), std::move(config)});
  }

  /// Write BENCH_<name>.json and report the path on stdout. Serialization
  /// goes through obs::JsonWriter — the toolchain's one JSON emission path
  /// — so escaping and number formatting can't drift from runtime reports.
  void write() const {
    std::string path = out_dir() + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("bench: cannot write " + path);
    }
    obs::JsonWriter w(/*indent=*/2);
    w.begin_object().field("bench", name_).key("results").begin_array();
    for (const Row& r : rows_) {
      w.begin_object()
          .field("metric", r.metric)
          .field("value", r.value)
          .field("unit", r.unit)
          .field("config", r.config)
          .end_object();
    }
    w.end_array().end_object();
    const std::string& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

private:
  struct Row {
    std::string metric;
    double value;
    std::string unit;
    std::string config;
  };

  static std::string out_dir() {
    if (const char* dir = std::getenv("XTSOC_BENCH_DIR")) return dir;
#ifdef XTSOC_REPO_ROOT
    return XTSOC_REPO_ROOT;
#else
    return ".";
#endif
  }

  std::string name_;
  std::vector<Row> rows_;
};

/// True when invoked with --json-only: emit the JSON report and exit
/// without running the google-benchmark suite.
inline bool json_only(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json-only") return true;
  }
  return false;
}

}  // namespace xtsoc::bench
