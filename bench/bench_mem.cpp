// Memory hierarchy cost model: cached vs uncached worlds on one workload.
//
// Drives mem::System directly (no model on top, like bench_noc drives the
// raw fabric): three executor tiles on a 2x2 mesh loop over per-tile
// working sets plus a small shared region, with the DRAM edge and the
// directory on the fourth tile. The same deterministic access tape runs
// against a mark-sized cache and against the uncached (sets=0) world, so
// the numbers isolate what the hierarchy buys:
//   * simulated cycles to drain the workload (the CI gate: a working set
//     that fits in cache must finish at least 2x sooner than uncached),
//   * miss rate and mean load-to-use latency,
//   * DRAM row-hit rate (bank/row locality the open-row policy exploits),
//   * coherence share of all fabric flits (what the protocol costs the NoC).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "xtsoc/mem/mem.hpp"
#include "xtsoc/mem/wire.hpp"
#include "xtsoc/noc/fabric.hpp"

namespace {

using namespace xtsoc;

struct MemRun {
  std::uint64_t cycles = 0;  ///< cycles until caches, DRAM and NoC drain
  mem::MemStats stats;
  std::uint64_t fabric_flits = 0;
};

/// The fixed workload: `rounds` passes over `working_lines` private lines
/// per tile plus one shared line per pass, one access per tile per cycle,
/// every fourth access a store. Runs until the timing pipeline is idle.
MemRun pump_workload(int sets, int rounds, int working_lines) {
  noc::FabricConfig fcfg;
  fcfg.width = 2;
  fcfg.height = 2;
  noc::Fabric fabric(fcfg);

  mem::MemConfig mcfg;
  mcfg.dram_tile = 3;
  mcfg.sets = sets;
  mcfg.ways = 2;
  mem::System sys(mcfg, &fabric);
  const int tiles[] = {0, 1, 2};
  for (int t : tiles) sys.add_domain(t, nullptr);

  std::uint64_t cycle = 0;
  auto step = [&] {
    sys.append_visible(cycle);
    ++cycle;
    fabric.tick(cycle);
    std::vector<mem::System::Incoming> delivered;
    for (int t : tiles) {
      for (noc::Delivery& d : fabric.pop_due(t, cycle)) {
        if (!mem::wire::is_coherence(d.opcode)) continue;
        delivered.push_back(
            mem::System::Incoming{t, d.opcode, std::move(d.payload)});
      }
    }
    sys.tick(cycle, delivered);
  };

  const std::int64_t line = mcfg.line_bytes;
  const std::int64_t shared_base = 1 << 20;  // far from every private set
  int access = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < working_lines; ++s) {
      for (int tag = 0; tag < 3; ++tag) {
        const std::int64_t addr = (tag * working_lines + s) * line;
        if (access % 4 == 0) {
          sys.write(tag, cycle, addr, access);
        } else {
          (void)sys.read(tag, cycle, addr);
        }
        ++access;
      }
      step();
    }
    // One shared-line read per tile per round: keeps the directory's
    // sharer tracking (and its flits) in the measurement.
    for (int tag = 0; tag < 3; ++tag) {
      (void)sys.read(tag, cycle, shared_base + (r % 2) * line);
    }
    step();
  }
  while ((!sys.idle() || !fabric.idle()) && cycle < 1'000'000) step();

  MemRun run;
  run.cycles = cycle;
  run.stats = sys.stats();
  run.fabric_flits = fabric.stats().flits_injected;
  return run;
}

constexpr int kRounds = 16;
constexpr int kWorkingLines = 8;  // fits a sets=16 x ways=2 cache easily
constexpr int kCachedSets = 16;

double miss_rate(const mem::MemStats& s) {
  const std::uint64_t accesses = s.hits + s.misses;
  return accesses == 0
             ? 0.0
             : static_cast<double>(s.misses) / static_cast<double>(accesses);
}

double row_hit_rate(const mem::MemStats& s) {
  const std::uint64_t dram = s.dram_reads + s.dram_writes;
  return dram == 0
             ? 0.0
             : static_cast<double>(s.dram_row_hits) / static_cast<double>(dram);
}

double coh_flit_share(const MemRun& r) {
  return r.fabric_flits == 0
             ? 0.0
             : static_cast<double>(r.stats.coh_flits) /
                   static_cast<double>(r.fabric_flits);
}

void print_summary() {
  std::printf("== Memory hierarchy: cached vs uncached on one tape ==\n");
  std::printf("2x2 mesh, 3 tiles, %d rounds x %d lines/tile + shared:\n",
              kRounds, kWorkingLines);
  std::printf("  %-9s %8s %10s %12s %10s %10s\n", "config", "cycles",
              "miss rate", "load-to-use", "row hits", "coh flits");
  for (int sets : {kCachedSets, 0}) {
    MemRun run = pump_workload(sets, kRounds, kWorkingLines);
    std::printf("  %-9s %8llu %9.1f%% %12.2f %9.1f%% %9.1f%%\n",
                sets > 0 ? "cached" : "uncached",
                static_cast<unsigned long long>(run.cycles),
                100.0 * miss_rate(run.stats), run.stats.mean_load_use(),
                100.0 * row_hit_rate(run.stats), 100.0 * coh_flit_share(run));
  }
  std::printf("(the cached world pays compulsory misses once and then hits; "
              "uncached pays a\n directory round-trip per access — the gap "
              "the CI speedup gate pins)\n\n");
}

void BM_MemWorkload(benchmark::State& state) {
  const int sets = static_cast<int>(state.range(0));
  std::uint64_t cycles = 0;
  std::uint64_t accesses = 0;
  double latency = 0.0;
  for (auto _ : state) {
    MemRun run = pump_workload(sets, kRounds, kWorkingLines);
    cycles += run.cycles;
    accesses += run.stats.loads + run.stats.stores;
    latency = run.stats.mean_load_use();
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["accesses/s"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
  state.counters["mean_load_use_cycles"] = latency;
}
BENCHMARK(BM_MemWorkload)->Arg(16)->Arg(0)->ArgNames({"sets"});

void emit_json() {
  bench::JsonReport report("mem");
  std::uint64_t cycles_of[2] = {0, 0};  // [cached, uncached]
  int i = 0;
  for (int sets : {kCachedSets, 0}) {
    MemRun run = pump_workload(sets, kRounds, kWorkingLines);
    char cfg[64];
    std::snprintf(cfg, sizeof cfg, "sets=%d,ways=2,rounds=%d,lines=%d", sets,
                  kRounds, kWorkingLines);
    const std::string label(cfg);
    report.add("drain_cycles", static_cast<double>(run.cycles), "cycles",
               label);
    report.add("miss_rate", miss_rate(run.stats), "misses/access", label);
    report.add("mean_load_use", run.stats.mean_load_use(), "cycles", label);
    report.add("dram_row_hit_rate", row_hit_rate(run.stats), "hits/access",
               label);
    report.add("coh_flit_share", coh_flit_share(run), "flits/flit", label);
    cycles_of[i++] = run.cycles;
  }
  // The gated number: simulated time saved by the cache on a workload that
  // fits in it. CI requires >= 2.
  report.add("speedup_cached_vs_uncached",
             cycles_of[0] == 0 ? 0.0
                               : static_cast<double>(cycles_of[1]) /
                                     static_cast<double>(cycles_of[0]),
             "x", "uncached drain_cycles / cached drain_cycles");
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
