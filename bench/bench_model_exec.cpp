// E3 — "A model can be executed independent of implementation" (paper §2).
//
// Measures abstract-executor throughput (signals dispatched per second) as
// the model scales in instances, queue depth, and per-action work, plus the
// cost of trace recording. Prints a summary table, then runs the
// google-benchmark timings that regenerate it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"

namespace {

using namespace xtsoc;

std::unique_ptr<core::Project>& chain_project() {
  static auto p = bench::make_project(bench::make_relay_chain(4),
                                      marks::MarkSet{});
  return p;
}

std::unique_ptr<core::Project>& soc_project() {
  static auto p =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  return p;
}

/// Dispatch throughput on a token ring: `instances` per stage, one token
/// each, ttl = kTtl hops.
void BM_RingDispatch(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  const bool tracing = state.range(1) != 0;
  auto& project = chain_project();

  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::ExecutorConfig cfg;
    cfg.trace_enabled = tracing;
    auto exec = project->make_abstract_executor(cfg);
    std::vector<runtime::InstanceHandle> firsts;
    for (int i = 0; i < instances; ++i) {
      runtime::InstanceHandle prev;
      runtime::InstanceHandle first;
      for (int s = 0; s < 4; ++s) {
        auto h = exec->create("Stage" + std::to_string(s));
        if (s == 0) first = h;
        if (s > 0) {
          exec->database().set_attr(prev, AttributeId(1),
                                    runtime::Value(h));
        }
        prev = h;
      }
      exec->database().set_attr(prev, AttributeId(1), runtime::Value(first));
      firsts.push_back(first);
    }
    for (auto& f : firsts) {
      exec->inject(f, "token", {runtime::Value(std::int64_t{256})});
    }
    state.ResumeTiming();

    exec->run_all();
    dispatched += exec->dispatch_count();
  }
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(dispatched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RingDispatch)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->ArgNames({"rings", "trace"});

/// Packet-SoC throughput: heavier actions (the crypto loop).
void BM_PacketSoc(benchmark::State& state) {
  const int packets = static_cast<int>(state.range(0));
  auto& project = soc_project();
  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::ExecutorConfig cfg;
    cfg.trace_enabled = false;
    auto exec = project->make_abstract_executor(cfg);
    auto sink = exec->create("Sink");
    auto crypto = exec->create_with("Crypto", {{"sink", runtime::Value(sink)}});
    auto cls = exec->create_with(
        "Classifier",
        {{"crypto", runtime::Value(crypto)}, {"sink", runtime::Value(sink)}});
    for (int i = 0; i < packets; ++i) {
      exec->inject(cls, "packet",
                   {runtime::Value(std::int64_t{16 + (i * 7) % 48}),
                    runtime::Value(static_cast<std::int64_t>(i))});
    }
    state.ResumeTiming();
    exec->run_all();
    dispatched += exec->dispatch_count();
  }
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(dispatched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSoc)->Arg(100)->Arg(1000)->ArgNames({"packets"});

/// Cost of one compile (validate + parse + typecheck every action).
void BM_CompileDomain(benchmark::State& state) {
  const int classes = static_cast<int>(state.range(0));
  auto domain = xtsoc::bench::make_synthetic(classes, 4);
  for (auto _ : state) {
    DiagnosticSink sink;
    auto compiled = oal::compile_domain(*domain, sink);
    benchmark::DoNotOptimize(compiled);
  }
  state.counters["classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_CompileDomain)->Arg(4)->Arg(16)->Arg(64)->ArgNames({"classes"});

void print_summary() {
  std::printf("== E3: model execution independent of implementation ==\n");
  std::printf("abstract executor, token ring 4 stages x 16 rings, "
              "ttl 256, trace on/off:\n");
  for (bool trace : {true, false}) {
    runtime::ExecutorConfig cfg;
    cfg.trace_enabled = trace;
    auto exec = chain_project()->make_abstract_executor(cfg);
    std::vector<runtime::InstanceHandle> firsts;
    for (int i = 0; i < 16; ++i) {
      runtime::InstanceHandle prev, first;
      for (int s = 0; s < 4; ++s) {
        auto h = exec->create("Stage" + std::to_string(s));
        if (s == 0) first = h;
        if (s > 0) exec->database().set_attr(prev, AttributeId(1),
                                             runtime::Value(h));
        prev = h;
      }
      exec->database().set_attr(prev, AttributeId(1), runtime::Value(first));
      firsts.push_back(first);
    }
    for (auto& f : firsts)
      exec->inject(f, "token", {runtime::Value(std::int64_t{256})});
    exec->run_all();
    std::printf("  trace=%-5s dispatches=%llu ops=%llu trace_events=%zu\n",
                trace ? "on" : "off",
                static_cast<unsigned long long>(exec->dispatch_count()),
                static_cast<unsigned long long>(exec->ops_executed()),
                exec->trace().size());
  }
  std::printf("\n");
}

/// Ring-dispatch throughput (16 rings, ttl 256), setup excluded.
double ring_signals_per_sec(bool trace) {
  runtime::ExecutorConfig cfg;
  cfg.trace_enabled = trace;
  auto exec = chain_project()->make_abstract_executor(cfg);
  std::vector<runtime::InstanceHandle> firsts;
  for (int i = 0; i < 16; ++i) {
    runtime::InstanceHandle prev, first;
    for (int s = 0; s < 4; ++s) {
      auto h = exec->create("Stage" + std::to_string(s));
      if (s == 0) first = h;
      if (s > 0) exec->database().set_attr(prev, AttributeId(1),
                                           runtime::Value(h));
      prev = h;
    }
    exec->database().set_attr(prev, AttributeId(1), runtime::Value(first));
    firsts.push_back(first);
  }
  for (auto& f : firsts)
    exec->inject(f, "token", {runtime::Value(std::int64_t{256})});
  xtsoc::bench::Timer t;
  exec->run_all();
  return static_cast<double>(exec->dispatch_count()) / t.seconds();
}

void emit_json() {
  xtsoc::bench::JsonReport report("model_exec");
  report.add("signals_per_sec", ring_signals_per_sec(false), "signals/s",
             "ring=4x16,ttl=256,trace=off");
  report.add("signals_per_sec", ring_signals_per_sec(true), "signals/s",
             "ring=4x16,ttl=256,trace=on");
  {
    runtime::ExecutorConfig cfg;
    cfg.trace_enabled = false;
    auto exec = soc_project()->make_abstract_executor(cfg);
    auto sink = exec->create("Sink");
    auto crypto = exec->create_with("Crypto", {{"sink", runtime::Value(sink)}});
    auto cls = exec->create_with(
        "Classifier",
        {{"crypto", runtime::Value(crypto)}, {"sink", runtime::Value(sink)}});
    for (int i = 0; i < 1000; ++i) {
      exec->inject(cls, "packet",
                   {runtime::Value(std::int64_t{16 + (i * 7) % 48}),
                    runtime::Value(static_cast<std::int64_t>(i))});
    }
    xtsoc::bench::Timer t;
    exec->run_all();
    report.add("signals_per_sec",
               static_cast<double>(exec->dispatch_count()) / t.seconds(),
               "signals/s", "packet_soc,packets=1000,trace=off");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (xtsoc::bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
