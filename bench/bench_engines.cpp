// Engine ablation: the tree-walking interpreter vs the bytecode VM vs the
// AOT jit (xtsoc::jit — actions lowered to C++, compiled to a shared
// object, dlopen'd).
//
// All three engines implement the same observable semantics (checked in
// engines_test.cpp and jit_test.cpp); this bench measures the cost of each
// "manner" the model compiler may choose (paper §4), plus one-time
// bytecode compilation and the jit's cold-compile/warm-load cache split.
// The summary cross-checks the engines on a real workload before timing
// anything.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/jit/jit.hpp"
#include "xtsoc/oal/bytecode.hpp"
#include "xtsoc/verify/equivalence.hpp"

namespace {

using namespace xtsoc;
using runtime::ActionEngine;
using runtime::Value;

/// A scratch jit cache for this process, removed on exit so repeated bench
/// runs measure a genuinely cold compile.
class ScratchCache {
public:
  ScratchCache() {
    std::error_code ec;
    dir_ = (std::filesystem::temp_directory_path(ec) /
            ("xtsoc-jit-bench-" + std::to_string(::getpid())))
               .string();
  }
  ~ScratchCache() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::string& dir() const { return dir_; }

private:
  std::string dir_;
};

std::unique_ptr<runtime::Executor> run_soc(
    core::Project& project, ActionEngine engine, int packets, bool tracing,
    const runtime::CompiledActions* compiled = nullptr) {
  runtime::ExecutorConfig cfg;
  cfg.engine = engine;
  cfg.trace_enabled = tracing;
  cfg.compiled = compiled;
  auto exec = project.make_abstract_executor(cfg);
  auto sink = exec->create("Sink");
  auto crypto = exec->create_with("Crypto", {{"sink", Value(sink)}});
  auto cls = exec->create_with(
      "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
  for (int i = 0; i < packets; ++i) {
    exec->inject(cls, "packet",
                 {Value(std::int64_t{16 + (i * 7) % 48}),
                  Value(static_cast<std::int64_t>(i))});
  }
  exec->run_all();
  return exec;
}

void print_summary() {
  std::printf("== engine ablation: AST walker vs bytecode VM vs jit ==\n");
  auto project =
      xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                 marks::MarkSet{});
  ScratchCache cache;
  jit::JitOptions jopts;
  jopts.cache_dir = cache.dir();
  jit::JitResult jr = jit::compile(project->compiled(), jopts);
  auto ast = run_soc(*project, ActionEngine::kAstWalk, 64, true);
  auto vm = run_soc(*project, ActionEngine::kBytecode, 64, true);
  bool same = ast->trace().to_string() == vm->trace().to_string();
  std::printf("  cross-check on 64 packets: ast/vm traces %s (%zu events)\n",
              same ? "IDENTICAL" : "DIVERGED", ast->trace().size());
  if (jr.module != nullptr) {
    auto jat =
        run_soc(*project, ActionEngine::kJit, 64, true, jr.module.get());
    std::printf("  cross-check on 64 packets: vm/jit traces %s\n",
                vm->trace().to_string() == jat->trace().to_string()
                    ? "IDENTICAL"
                    : "DIVERGED");
  } else {
    std::printf("  jit unavailable (%s) — timings fall back to the VM\n",
                jr.reason.c_str());
  }
  auto finals = verify::compare_final_states(ast->database(),
                                             {&vm->database()});
  std::printf("  final states: %s\n",
              finals.equivalent ? "IDENTICAL" : "DIVERGED");
  std::printf("  (timings below; VM pays one-time compile, jit one "
              "native compile — then less per-node overhead)\n\n");
}

void BM_Engine(benchmark::State& state) {
  const ActionEngine engine = state.range(0) == 0   ? ActionEngine::kAstWalk
                              : state.range(0) == 1 ? ActionEngine::kBytecode
                                                    : ActionEngine::kJit;
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});
  jit::JitResult jr;
  ScratchCache cache;
  if (engine == ActionEngine::kJit) {
    jit::JitOptions jopts;
    jopts.cache_dir = cache.dir();
    jr = jit::compile(project->compiled(), jopts);
    if (jr.module == nullptr) {
      state.SkipWithError(("jit unavailable: " + jr.reason).c_str());
      return;
    }
  }
  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    auto exec =
        run_soc(*project, engine, 200, /*tracing=*/false, jr.module.get());
    dispatched += exec->dispatch_count();
  }
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(dispatched), benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) == 0   ? "ast"
                 : state.range(0) == 1 ? "bytecode"
                                       : "jit");
}
BENCHMARK(BM_Engine)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"engine"});

void BM_BytecodeCompile(benchmark::State& state) {
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});
  ClassId crypto = project->domain().find_class_id("Crypto");
  const oal::AnalyzedAction& action =
      project->compiled().action(crypto, StateId(0));
  for (auto _ : state) {
    oal::CodeBlock bc = oal::compile_bytecode(action);
    benchmark::DoNotOptimize(bc);
  }
}
BENCHMARK(BM_BytecodeCompile);

void emit_json() {
  xtsoc::bench::JsonReport report("engines");
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});

  // The jit pays its native compile once, into a scratch cache so this
  // process measures a true cold build; the second compile() must then be
  // a pure dlopen from the cache — both halves are reported so the
  // cold-vs-warm split is visible in CI.
  ScratchCache cache;
  jit::JitOptions jopts;
  jopts.cache_dir = cache.dir();
  xtsoc::bench::Timer t_cold;
  jit::JitResult jr = jit::compile(project->compiled(), jopts);
  const double cold_sec = t_cold.seconds();
  if (jr.module != nullptr) {
    report.add("jit_compile_sec", cold_sec, "s", "cache=cold");
    xtsoc::bench::Timer t_warm;
    jit::JitResult warm = jit::compile(project->compiled(), jopts);
    if (warm.module != nullptr && warm.cache_hit) {
      report.add("jit_load_sec", t_warm.seconds(), "s", "cache=warm");
    }
  } else {
    std::fprintf(stderr, "bench_engines: jit unavailable: %s\n",
                 jr.reason.c_str());
  }

  // Best of N: a single 500-packet run takes milliseconds, so one
  // scheduler preemption skews it badly — the fastest repetition is the
  // one closest to the engine's actual cost. One untimed warm-up run
  // brings code and model state into cache first.
  constexpr int kReps = 5;
  double bytecode_rate = 0.0;
  std::vector<std::pair<ActionEngine, const char*>> engines = {
      {ActionEngine::kAstWalk, "engine=ast,packets=500,trace=off"},
      {ActionEngine::kBytecode, "engine=bytecode,packets=500,trace=off"}};
  if (jr.module != nullptr) {
    engines.push_back({ActionEngine::kJit, "engine=jit,packets=500,trace=off"});
  }
  for (auto [engine, config] : engines) {
    const runtime::CompiledActions* compiled =
        engine == ActionEngine::kJit ? jr.module.get() : nullptr;
    (void)run_soc(*project, engine, 500, /*tracing=*/false, compiled);
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      xtsoc::bench::Timer t;
      auto exec = run_soc(*project, engine, 500, /*tracing=*/false, compiled);
      double rate = static_cast<double>(exec->dispatch_count()) / t.seconds();
      if (rate > best) best = rate;
    }
    report.add("signals_per_sec", best, "signals/s", config);
    if (engine == ActionEngine::kBytecode) bytecode_rate = best;
    if (engine == ActionEngine::kJit && bytecode_rate > 0.0) {
      report.add("jit_speedup_vs_bytecode", best / bytecode_rate, "x",
                 "packets=500,trace=off");
    }
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (xtsoc::bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
