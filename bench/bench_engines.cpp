// Engine ablation: the tree-walking interpreter vs the bytecode VM.
//
// Both engines implement the same observable semantics (checked in
// engines_test.cpp); this bench measures the cost of each "manner" the
// model compiler may choose (paper §4), plus one-time bytecode compilation.
// The summary cross-checks the two engines on a real workload before
// timing anything.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/oal/bytecode.hpp"
#include "xtsoc/verify/equivalence.hpp"

namespace {

using namespace xtsoc;
using runtime::ActionEngine;
using runtime::Value;

std::unique_ptr<runtime::Executor> run_soc(core::Project& project,
                                           ActionEngine engine, int packets,
                                           bool tracing) {
  runtime::ExecutorConfig cfg;
  cfg.engine = engine;
  cfg.trace_enabled = tracing;
  auto exec = project.make_abstract_executor(cfg);
  auto sink = exec->create("Sink");
  auto crypto = exec->create_with("Crypto", {{"sink", Value(sink)}});
  auto cls = exec->create_with(
      "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
  for (int i = 0; i < packets; ++i) {
    exec->inject(cls, "packet",
                 {Value(std::int64_t{16 + (i * 7) % 48}),
                  Value(static_cast<std::int64_t>(i))});
  }
  exec->run_all();
  return exec;
}

void print_summary() {
  std::printf("== engine ablation: AST walker vs bytecode VM ==\n");
  auto project =
      xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                 marks::MarkSet{});
  auto ast = run_soc(*project, ActionEngine::kAstWalk, 64, true);
  auto vm = run_soc(*project, ActionEngine::kBytecode, 64, true);
  bool same = ast->trace().to_string() == vm->trace().to_string();
  std::printf("  cross-check on 64 packets: traces %s (%zu events)\n",
              same ? "IDENTICAL" : "DIVERGED", ast->trace().size());
  auto finals = verify::compare_final_states(ast->database(),
                                             {&vm->database()});
  std::printf("  final states: %s\n",
              finals.equivalent ? "IDENTICAL" : "DIVERGED");
  std::printf("  (timings below; VM pays one-time compile, then less "
              "per-node overhead)\n\n");
}

void BM_Engine(benchmark::State& state) {
  const ActionEngine engine = state.range(0) == 0 ? ActionEngine::kAstWalk
                                                  : ActionEngine::kBytecode;
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});
  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    auto exec = run_soc(*project, engine, 200, /*tracing=*/false);
    dispatched += exec->dispatch_count();
  }
  state.counters["signals/s"] = benchmark::Counter(
      static_cast<double>(dispatched), benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) == 0 ? "ast" : "bytecode");
}
BENCHMARK(BM_Engine)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_BytecodeCompile(benchmark::State& state) {
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});
  ClassId crypto = project->domain().find_class_id("Crypto");
  const oal::AnalyzedAction& action =
      project->compiled().action(crypto, StateId(0));
  for (auto _ : state) {
    oal::CodeBlock bc = oal::compile_bytecode(action);
    benchmark::DoNotOptimize(bc);
  }
}
BENCHMARK(BM_BytecodeCompile);

void emit_json() {
  xtsoc::bench::JsonReport report("engines");
  auto project = xtsoc::bench::make_project(xtsoc::bench::make_packet_soc(),
                                            marks::MarkSet{});
  // Best of N: a single 500-packet run takes milliseconds, so one
  // scheduler preemption skews it badly — the fastest repetition is the
  // one closest to the engine's actual cost. One untimed warm-up run
  // brings code and model state into cache first.
  constexpr int kReps = 5;
  for (ActionEngine engine : {ActionEngine::kAstWalk, ActionEngine::kBytecode}) {
    (void)run_soc(*project, engine, 500, /*tracing=*/false);
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      xtsoc::bench::Timer t;
      auto exec = run_soc(*project, engine, 500, /*tracing=*/false);
      double rate = static_cast<double>(exec->dispatch_count()) / t.seconds();
      if (rate > best) best = rate;
    }
    report.add("signals_per_sec", best, "signals/s",
               engine == ActionEngine::kAstWalk
                   ? "engine=ast,packets=500,trace=off"
                   : "engine=bytecode,packets=500,trace=off");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (xtsoc::bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
