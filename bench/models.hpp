// Model builders shared by the benchmark binaries.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "xtsoc/core/project.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::bench {

/// The packet-filter SoC from examples/packet_filter.cpp: Classifier ->
/// Crypto -> Sink, with a per-packet work loop in Crypto.
inline std::unique_ptr<xtuml::Domain> make_packet_soc() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("PacketSoc");
  b.cls("Classifier", "CLS");
  b.cls("Crypto", "CRY");
  b.cls("Sink", "SNK");

  b.edit("Classifier")
      .attr("seen", DataType::kInt)
      .ref_attr("crypto", "Crypto")
      .ref_attr("sink", "Sink")
      .event("packet", {{"len", DataType::kInt}, {"seq", DataType::kInt}})
      .state("Classify",
             "self.seen = self.seen + 1;\n"
             "if (param.len % 2 == 0)\n"
             "  generate encrypt(seq: param.seq, len: param.len) to "
             "self.crypto;\n"
             "else\n"
             "  generate deliver(seq: param.seq, check: param.len) to "
             "self.sink;\n"
             "end if;")
      .transition("Classify", "packet", "Classify");

  b.edit("Crypto")
      .attr("done_count", DataType::kInt)
      .ref_attr("sink", "Sink")
      .event("encrypt", {{"seq", DataType::kInt}, {"len", DataType::kInt}})
      .state("Scramble",
             "key = 5;\n"
             "acc = param.seq;\n"
             "round = 0;\n"
             "while (round < param.len)\n"
             "  acc = (acc * 31 + key) % 65537;\n"
             "  round = round + 1;\n"
             "end while;\n"
             "self.done_count = self.done_count + 1;\n"
             "generate deliver(seq: param.seq, check: acc) to self.sink;")
      .transition("Scramble", "encrypt", "Scramble");

  b.edit("Sink")
      .attr("received", DataType::kInt)
      .attr("checksum", DataType::kInt)
      .event("deliver", {{"seq", DataType::kInt}, {"check", DataType::kInt}})
      .state("Collect",
             "self.received = self.received + 1;\n"
             "self.checksum = (self.checksum + param.check) % 1000000007;")
      .transition("Collect", "deliver", "Collect");
  return b.take();
}

/// A relay ring of `n` classes, each forwarding a token to the next: the
/// workload for signal-latency measurements. Class i is "Stage<i>".
inline std::unique_ptr<xtuml::Domain> make_relay_chain(int n) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Chain");
  for (int i = 0; i < n; ++i) b.cls("Stage" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    std::string next = "Stage" + std::to_string((i + 1) % n);
    b.edit("Stage" + std::to_string(i))
        .attr("hops", DataType::kInt)
        .ref_attr("next", next)
        .event("token", {{"ttl", DataType::kInt}})
        .state("Fwd",
               "self.hops = self.hops + 1;\n"
               "if (param.ttl > 0)\n"
               "  generate token(ttl: param.ttl - 1) to self.next;\n"
               "end if;")
        .transition("Fwd", "token", "Fwd");
  }
  return b.take();
}

/// Synthetic domain for scaling studies: `classes` classes, each with
/// `states` states in a cycle plus a modest action, all independent.
inline std::unique_ptr<xtuml::Domain> make_synthetic(int classes, int states) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Synth");
  for (int c = 0; c < classes; ++c) {
    auto cb = b.cls("C" + std::to_string(c), "K" + std::to_string(c));
    cb.attr("x", DataType::kInt).attr("y", DataType::kInt).event("step");
    for (int s = 0; s < states; ++s) {
      cb.state("S" + std::to_string(s),
               "self.x = self.x + 1;\n"
               "self.y = self.x * 2 - self.y;");
    }
    for (int s = 0; s < states; ++s) {
      cb.transition("S" + std::to_string(s), "step",
                    "S" + std::to_string((s + 1) % states));
    }
  }
  return b.take();
}

inline std::unique_ptr<core::Project> make_project(
    std::unique_ptr<xtuml::Domain> domain, marks::MarkSet marks) {
  DiagnosticSink sink;
  auto p = core::Project::from_domain(std::move(domain), std::move(marks), sink);
  if (!p) throw std::runtime_error("project: " + sink.to_string());
  return p;
}

}  // namespace xtsoc::bench
