// E1 — "once you have something that executes, it costs a lot to change the
// interface" (paper §1) — unless the interface is generated.
//
// Scenario: a boundary event grows a new payload field. With generated
// interfaces the "cost" is one model edit + regenerate; every opcode,
// offset, width, pack/unpack site and the digest update themselves in both
// C and VHDL. The summary counts how many generated interface touch-points
// changed automatically — each one is a site a hand-maintained interface
// would need a coordinated manual edit at (with silent corruption on any
// miss; the digest handshake turns such a miss into a connect-time error,
// demonstrated in cosim tests).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"

namespace {

using namespace xtsoc;

std::unique_ptr<xtuml::Domain> make_soc(bool extended) {
  using xtuml::DataType;
  auto d = bench::make_packet_soc();
  if (extended) {
    // The interface change: encrypt() gains a priority field, consumed by
    // the crypto action.
    xtuml::ClassDef& crypto = d->cls(d->find_class_id("Crypto"));
    for (auto& e : crypto.events) {
      if (e.name == "encrypt") {
        e.params.push_back({"prio", DataType::kInt, ClassId::invalid()});
      }
    }
    // Classifier now supplies it.
    xtuml::ClassDef& cls = d->cls(d->find_class_id("Classifier"));
    for (auto& s : cls.states) {
      std::size_t pos = s.action_source.find("len: param.len)");
      if (pos != std::string::npos) {
        s.action_source.replace(pos, 15, "len: param.len, prio: 1)");
      }
    }
  }
  return d;
}

marks::MarkSet crypto_hw() {
  marks::MarkSet m;
  m.mark_hardware("Crypto");
  return m;
}

std::size_t count_lines_differing(const std::string& a, const std::string& b) {
  auto la = split(a, '\n');
  auto lb = split(b, '\n');
  std::size_t n = std::max(la.size(), lb.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::string_view va = i < la.size() ? std::string_view(la[i]) : "";
    std::string_view vb = i < lb.size() ? std::string_view(lb[i]) : "";
    if (va != vb) ++diff;
  }
  return diff;
}

void print_summary() {
  std::printf("== E1: interface change, generated vs hand-maintained ==\n");
  auto before = bench::make_project(make_soc(false), crypto_hw());
  auto after = bench::make_project(make_soc(true), crypto_hw());

  DiagnosticSink sink;
  codegen::Output out_before = before->generate_all(sink);
  codegen::Output out_after = after->generate_all(sink);

  std::printf("  change: event Crypto.encrypt gains field 'prio:int'\n");
  std::printf("  model edits: 2 (one event declaration, one generate site)\n");
  std::printf("  interface digest: %s -> %s (mismatch is caught at connect)\n",
              before->system().interface().digest(before->domain()).c_str(),
              after->system().interface().digest(after->domain()).c_str());

  std::size_t total_diff = 0;
  std::printf("  generated lines that updated THEMSELVES:\n");
  for (const auto& f : out_after.files) {
    const codegen::GeneratedFile* old = out_before.find(f.path);
    std::size_t d =
        old ? count_lines_differing(old->content, f.content)
            : count_lines(f.content);
    if (d > 0) std::printf("    %-26s %5zu lines\n", f.path.c_str(), d);
    total_diff += d;
  }
  std::printf("  total: %zu generated lines across %zu files — each one a "
              "manual-edit site avoided\n\n",
              total_diff, out_after.files.size());
}

void BM_RegenerateAfterInterfaceChange(benchmark::State& state) {
  // The full cost of an interface change with this toolchain: recompile the
  // model + remap + regenerate both halves.
  bool extended = false;
  for (auto _ : state) {
    extended = !extended;
    auto project = bench::make_project(make_soc(extended), crypto_hw());
    DiagnosticSink sink;
    codegen::Output out = project->generate_all(sink);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RegenerateAfterInterfaceChange);

void BM_InterfaceSynthesisOnly(benchmark::State& state) {
  auto project = bench::make_project(make_soc(true), crypto_hw());
  DiagnosticSink sink;
  mapping::Partition part =
      mapping::Partition::from_marks(project->domain(), project->marks());
  for (auto _ : state) {
    mapping::InterfaceSpec spec = mapping::synthesize_interface(
        project->compiled(), part, project->marks(), sink);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_InterfaceSynthesisOnly);

void BM_DigestCheck(benchmark::State& state) {
  auto project = bench::make_project(make_soc(true), crypto_hw());
  for (auto _ : state) {
    std::string d = project->system().interface().digest(project->domain());
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DigestCheck);

void emit_json() {
  bench::JsonReport report("interface_change");
  auto before = bench::make_project(make_soc(false), crypto_hw());
  auto after = bench::make_project(make_soc(true), crypto_hw());
  DiagnosticSink sink;
  codegen::Output out_before = before->generate_all(sink);
  codegen::Output out_after = after->generate_all(sink);
  std::size_t total_diff = 0;
  for (const auto& f : out_after.files) {
    const codegen::GeneratedFile* old = out_before.find(f.path);
    total_diff += old ? count_lines_differing(old->content, f.content)
                      : count_lines(f.content);
  }
  report.add("auto_updated_lines", static_cast<double>(total_diff), "lines",
             "change=encrypt+=prio");
  bench::Timer t;
  int reps = 0;
  while (t.seconds() < 0.2) {
    auto project = bench::make_project(make_soc(true), crypto_hw());
    DiagnosticSink s;
    codegen::Output out = project->generate_all(s);
    benchmark::DoNotOptimize(out);
    ++reps;
  }
  report.add("regenerate_sec", t.seconds() / reps, "s",
             "compile+remap+generate_all");
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
