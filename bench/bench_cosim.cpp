// E5 — "The two halves are known to fit together because the interface was
// generated" (paper §4).
//
// Measures the partitioned system end to end:
//   * cross-boundary round-trip completion time vs bus latency (summary
//     table: the hw/sw crossover as software work grows),
//   * co-simulation throughput (cycles/s, signals/s),
//   * raw hwsim kernel throughput (delta cycles/s) as the substrate floor.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/hwsim/components.hpp"
#include "xtsoc/jit/jit.hpp"
#include "xtsoc/obs/registry.hpp"

namespace {

using namespace xtsoc;
using runtime::Value;

marks::MarkSet crypto_hw(int bus_latency) {
  marks::MarkSet m;
  m.mark_hardware("Crypto");
  m.set_domain_mark(marks::kBusLatency,
                    xtuml::ScalarValue(static_cast<std::int64_t>(bus_latency)));
  return m;
}

std::uint64_t run_packets(core::Project& project, int packets,
                          std::uint64_t sw_ops_per_cycle) {
  cosim::CoSimConfig cfg;
  cfg.trace_enabled = false;
  cfg.sw_steps_per_cycle = 8;
  cfg.sw_ops_per_cycle = sw_ops_per_cycle;
  auto cs = project.make_cosim(cfg);
  auto sink = cs->create("Sink");
  auto crypto = cs->create_with("Crypto", {{"sink", Value(sink)}});
  auto cls = cs->create_with(
      "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
  for (int i = 0; i < packets; ++i) {
    cs->inject(cls, "packet",
               {Value(std::int64_t{16 + (i * 7) % 48}),
                Value(static_cast<std::int64_t>(i))});
  }
  cs->run(10'000'000);
  return cs->cycles();
}

void print_summary() {
  std::printf("== E5: partitioned execution, generated interface ==\n");
  std::printf("completion cycles for 100 packets (sw core: 64 ops/cycle):\n");
  std::printf("  %12s %14s %18s\n", "bus latency", "all-software",
              "crypto-in-hw");
  auto sw_project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  for (int latency : {0, 2, 8, 32, 128}) {
    auto hw_project =
        bench::make_project(bench::make_packet_soc(), crypto_hw(latency));
    std::uint64_t sw_cycles = run_packets(*sw_project, 100, 64);
    std::uint64_t hw_cycles = run_packets(*hw_project, 100, 64);
    std::printf("  %12d %14llu %18llu%s\n", latency,
                static_cast<unsigned long long>(sw_cycles),
                static_cast<unsigned long long>(hw_cycles),
                hw_cycles < sw_cycles ? "  <- hw wins" : "");
  }
  std::printf("(the crossover: a slow enough bus erases the accelerator's "
              "advantage — the\n measurement-driven repartitioning loop of "
              "paper §1 in one table)\n\n");
}

void BM_CosimPackets(benchmark::State& state) {
  const int latency = static_cast<int>(state.range(0));
  auto project =
      bench::make_project(bench::make_packet_soc(), crypto_hw(latency));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += run_packets(*project, 50, 64);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CosimPackets)->Arg(0)->Arg(8)->Arg(32)->ArgNames({"latency"});

/// Round-trip signal latency through the bus, isolated: one token bounced
/// between a software stage and a hardware stage.
void BM_BoundaryRoundTrip(benchmark::State& state) {
  const int latency = static_cast<int>(state.range(0));
  marks::MarkSet m;
  m.mark_hardware("Stage1");
  m.set_domain_mark(marks::kBusLatency,
                    xtuml::ScalarValue(static_cast<std::int64_t>(latency)));
  auto project = bench::make_project(bench::make_relay_chain(2), std::move(m));
  std::uint64_t cycles = 0;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    cosim::CoSimConfig cfg;
    cfg.trace_enabled = false;
    auto cs = project->make_cosim(cfg);
    auto s0 = cs->create("Stage0");
    auto s1 = cs->create("Stage1");
    cs->executor_of(s0.cls).database().set_attr(s0, AttributeId(1), Value(s1));
    cs->executor_of(s1.cls).database().set_attr(s1, AttributeId(1), Value(s0));
    cs->inject(s0, "token", {Value(std::int64_t{64})});
    cs->run(1'000'000);
    cycles += cs->cycles();
    hops += 64;
  }
  state.counters["cycles/hop"] =
      static_cast<double>(cycles) / static_cast<double>(hops);
}
BENCHMARK(BM_BoundaryRoundTrip)->Arg(0)->Arg(2)->Arg(8)->ArgNames({"latency"});

// --- mesh scaling workload (the windowed-parallelism benchmark) --------------
//
// width x height - 1 hardware classes, one per mesh tile (the CPU owns tile
// 0), each an independent clocked FSM that burns a fixed compute loop every
// cycle and occasionally pings its ring neighbour across the fabric. One
// hardware clock domain per tile means that many concurrently evaluable
// domains — the workload the `threads` knob is for. The 4-cycle link (see
// mesh_marks) lets the conservative-lookahead scheduler run each domain 4
// cycles per pool handshake; emit_json sweeps 2x2/4x4/8x8 x threads
// 1/2/4/8.

std::unique_ptr<xtuml::Domain> make_mesh_soc(int nodes) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("MeshSoc");
  for (int i = 0; i < nodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % nodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "acc = self.acc;\n"
               "r = 0;\n"
               "while (r < 64)\n"
               "  acc = (acc * 33 + 7) % 65537;\n"
               "  r = r + 1;\n"
               "end while;\n"
               "self.acc = acc;\n"
               "if (acc % 16 == 0)\n"
               "  generate ping(v: acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;\n"
               "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet mesh_marks(int width, int height, int link_latency = 4) {
  marks::MarkSet m;
  const int nodes = width * height - 1;  // tile 0 is the CPU tile
  for (int i = 0; i < nodes; ++i) {
    std::string cls = "Node" + std::to_string(i);
    int tile = i + 1;
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     xtuml::ScalarValue(std::int64_t{tile % width}));
    m.set_class_mark(cls, marks::kTileY,
                     xtuml::ScalarValue(std::int64_t{tile / width}));
  }
  m.set_domain_mark(marks::kMeshWidth,
                    xtuml::ScalarValue(static_cast<std::int64_t>(width)));
  m.set_domain_mark(marks::kMeshHeight,
                    xtuml::ScalarValue(static_cast<std::int64_t>(height)));
  // A 4-cycle link gives the conservative-lookahead scheduler a 4-cycle
  // window: domains run 4 cycles per pool handshake instead of paying a
  // barrier per delta cycle. This is the knob the speedup depends on.
  m.set_domain_mark(marks::kLinkLatency,
                    xtuml::ScalarValue(static_cast<std::int64_t>(link_latency)));
  return m;
}

std::unique_ptr<cosim::CoSimulation> make_mesh_cosim(
    core::Project& project, int nodes, int threads,
    obs::Registry* obs = nullptr,
    runtime::ActionEngine engine = runtime::ActionEngine::kAstWalk,
    const runtime::CompiledActions* compiled = nullptr) {
  cosim::CoSimConfig cfg;
  cfg.trace_enabled = false;
  cfg.threads = threads;
  cfg.obs = obs;
  cfg.engine = engine;
  cfg.compiled = compiled;
  auto cs = project.make_cosim(cfg);
  std::vector<runtime::InstanceHandle> handles;
  handles.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    handles.push_back(cs->create("Node" + std::to_string(i)));
  }
  for (int i = 0; i < nodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cs->executor_of(handles[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(handles[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(handles[static_cast<std::size_t>((i + 1) % nodes)]));
    cs->inject(handles[static_cast<std::size_t>(i)], "tick");
  }
  return cs;
}

/// Steady-state mesh throughput at `threads`, in hardware cycles per
/// wall-clock second. When `phases` is non-null it receives the windowed
/// scheduler's per-phase wall-clock split for the whole run.
double mesh_cycles_per_sec(
    int width, int height, int threads, obs::Registry* obs = nullptr,
    runtime::ActionEngine engine = runtime::ActionEngine::kAstWalk,
    const runtime::CompiledActions* compiled = nullptr,
    cosim::CoSimulation::PhaseSeconds* phases = nullptr) {
  const int nodes = width * height - 1;
  auto project =
      bench::make_project(make_mesh_soc(nodes), mesh_marks(width, height));
  auto cs = make_mesh_cosim(*project, nodes, threads, obs, engine, compiled);
  cs->run_cycles(200);  // warm-up: pools and queues reach steady state
  std::uint64_t cycles = 0;
  bench::Timer t;
  while (t.seconds() < 0.4) {
    cs->run_cycles(500);
    cycles += 500;
  }
  if (phases != nullptr) *phases = cs->phase_seconds();
  return static_cast<double>(cycles) / t.seconds();
}

void BM_MeshCosim(benchmark::State& state) {
  constexpr int kWidth = 4, kHeight = 4;
  constexpr int kNodes = kWidth * kHeight - 1;
  const int threads = static_cast<int>(state.range(0));
  auto project =
      bench::make_project(make_mesh_soc(kNodes), mesh_marks(kWidth, kHeight));
  auto cs = make_mesh_cosim(*project, kNodes, threads);
  cs->run_cycles(200);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cs->run_cycles(500);
    cycles += 500;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeshCosim)->Arg(1)->Arg(2)->Arg(8)->ArgNames({"threads"});

/// Substrate floor: raw hwsim delta-cycle throughput (a counter bank).
void BM_HwsimKernel(benchmark::State& state) {
  const int counters = static_cast<int>(state.range(0));
  hwsim::Simulator sim;
  HwSignalId clk = sim.wire(1, 0, "clk");
  sim.add_clock(clk, 1);
  std::vector<hwsim::Counter> bank;
  bank.reserve(static_cast<std::size_t>(counters));
  for (int i = 0; i < counters; ++i) bank.emplace_back(sim, clk, 32);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.run_cycles(clk, 1000);
    cycles += 1000;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HwsimKernel)->Arg(1)->Arg(16)->Arg(256)->ArgNames({"counters"});

void emit_json() {
  bench::JsonReport report("cosim");
  // Scaling sweep: mesh size x thread count. parallel_efficiency is
  // speedup / threads — 1.0 means perfect scaling, and anything above
  // 1/threads means the extra threads helped at all. Two headline
  // "speedup" metrics feed the CI regression gates: 4x4 at 8 threads
  // (parity floor on any hardware) and 8x8 at 8 threads (the sharded
  // replay's >= 3x bar, gated only on runners with >= 8 cores). The
  // phaseA_pct/phaseB_pct rows record where the windowed scheduler's
  // wall-clock went, so the next perf investigation can see where the
  // Amdahl wall moved.
  double serial_4x4 = 0.0, par8_4x4 = 0.0;
  double serial_8x8 = 0.0, par8_8x8 = 0.0;
  for (int dim : {2, 4, 8}) {
    const std::string mesh =
        "mesh=" + std::to_string(dim) + "x" + std::to_string(dim);
    double serial = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const std::string cfg = mesh + ",threads=" + std::to_string(threads);
      cosim::CoSimulation::PhaseSeconds phases;
      const double rate = mesh_cycles_per_sec(
          dim, dim, threads, nullptr, runtime::ActionEngine::kAstWalk,
          nullptr, &phases);
      report.add("cycles_per_sec", rate, "cycles/s", cfg);
      if (threads == 1) {
        serial = rate;
      } else {
        report.add("parallel_efficiency", rate / (serial * threads), "x", cfg);
      }
      if (dim == 8 && (threads == 1 || threads == 8)) {
        const double total = phases.boundary + phases.phase_a + phases.phase_b;
        if (total > 0) {
          report.add("phaseA_pct", 100.0 * phases.phase_a / total, "%", cfg);
          report.add("phaseB_pct", 100.0 * phases.phase_b / total, "%", cfg);
        }
      }
      if (dim == 4 && threads == 1) serial_4x4 = rate;
      if (dim == 4 && threads == 8) par8_4x4 = rate;
      if (dim == 8 && threads == 1) serial_8x8 = rate;
      if (dim == 8 && threads == 8) par8_8x8 = rate;
    }
  }
  report.add("speedup", par8_4x4 / serial_4x4, "x",
             "mesh=4x4,threads=8 vs threads=1");
  const double speedup8 = par8_8x8 / serial_8x8;
  report.add("speedup", speedup8, "x", "mesh=8x8,threads=8 vs threads=1");
  // The ROADMAP bar for the sharded replay: >= 3x at 8 threads on the 8x8
  // mesh. A speedup needs cores under the pool, so the gate is conditional
  // on the hardware rather than silently skipped — a single-core runner
  // still publishes the metric for the record.
  if (std::thread::hardware_concurrency() >= 8 && speedup8 < 3.0) {
    std::fprintf(stderr,
                 "bench_cosim: 8x8 mesh speedup at 8 threads regressed: "
                 "%.2fx < 3x\n",
                 speedup8);
    report.write();
    std::exit(1);
  }
  {
    // Observability residue. With no registry every probe is a dead null
    // test; with a registry attached but tracing off, counters count and
    // spans skip. The CI benchmarks job gates obs_disabled_overhead_pct
    // <= 2 — a sub-2% contract, which is BELOW the bias a single heap
    // layout can introduce: one long-lived measurement once reported the
    // counted cosim 6% FASTER than the bare one, purely from allocation
    // order. So the measurement repeats over kRounds rounds, each round
    // constructing all three cosims FRESH in a rotated order (layout luck
    // lands on a different side every round), timing tightly alternating
    // 500-cycle slices and keeping each side's minimum (the robust
    // estimator for "the cost of the code itself"). The reported overhead
    // is the MEDIAN across rounds, which a single lucky/unlucky layout
    // cannot move.
    constexpr int kNodes = 4 * 4 - 1;
    constexpr int kRounds = 5;
    constexpr int kSlices = 12;
    std::vector<double> disabled_pct, tracing_pct;
    for (int round = 0; round < kRounds; ++round) {
      obs::Registry counting;
      obs::Registry tracing;
      tracing.enable_tracing();
      obs::Registry* regs[3] = {nullptr, &counting, &tracing};
      std::unique_ptr<core::Project> proj[3];
      std::unique_ptr<cosim::CoSimulation> cs[3];
      for (int j = 0; j < 3; ++j) {
        const int which = (round + j) % 3;  // rotate construction order
        proj[which] =
            bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
        cs[which] = make_mesh_cosim(*proj[which], kNodes, 1, regs[which]);
      }
      for (auto& c : cs) c->run_cycles(200);  // warm-up
      auto slice = [](cosim::CoSimulation& c) {
        bench::Timer t;
        c.run_cycles(500);
        return t.seconds();
      };
      double best[3] = {1e9, 1e9, 1e9};
      for (int s = 0; s < kSlices; ++s) {
        for (int j = 0; j < 3; ++j) best[j] = std::min(best[j], slice(*cs[j]));
      }
      disabled_pct.push_back((best[1] / best[0] - 1.0) * 100.0);
      tracing_pct.push_back((best[2] / best[0] - 1.0) * 100.0);
    }
    auto median = [](std::vector<double>& v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    report.add("obs_disabled_overhead_pct",
               std::max(0.0, median(disabled_pct)), "%",
               "mesh=4x4,threads=1,registry attached vs absent");
    report.add("obs_tracing_overhead_pct", std::max(0.0, median(tracing_pct)),
               "%", "mesh=4x4,threads=1,tracing on vs registry absent");
  }
  {
    // End-to-end engine rows: the same 4x4 mesh with actions run by the
    // bytecode VM vs the AOT-compiled jit module. The jit module is
    // content-addressed, so one compile (into a scratch cache removed
    // below) serves every cosim built from the same model. When the jit
    // is unavailable (no compiler) the rows are simply omitted — the
    // bench still reports, mirroring the runtime's fallback contract.
    std::error_code ec;
    const std::string cache_dir =
        (std::filesystem::temp_directory_path(ec) /
         ("xtsoc-jit-bench-cosim-" + std::to_string(::getpid())))
            .string();
    constexpr int kNodes = 4 * 4 - 1;
    auto project =
        bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
    jit::JitOptions jopts;
    jopts.cache_dir = cache_dir;
    jit::JitResult jr = jit::compile(project->compiled(), jopts);
    if (jr.module != nullptr) {
      for (int threads : {1, 8}) {
        const std::string cfg = "mesh=4x4,threads=" + std::to_string(threads);
        const double bc = mesh_cycles_per_sec(
            4, 4, threads, nullptr, runtime::ActionEngine::kBytecode);
        const double jt =
            mesh_cycles_per_sec(4, 4, threads, nullptr,
                                runtime::ActionEngine::kJit, jr.module.get());
        report.add("cycles_per_sec", bc, "cycles/s", cfg + ",engine=bytecode");
        report.add("cycles_per_sec", jt, "cycles/s", cfg + ",engine=jit");
        report.add("jit_speedup_end_to_end", jt / bc, "x", cfg);
      }
    } else {
      std::fprintf(stderr, "bench_cosim: jit unavailable: %s\n",
                   jr.reason.c_str());
    }
    std::filesystem::remove_all(cache_dir, ec);
  }
  {
    auto project =
        bench::make_project(bench::make_packet_soc(), crypto_hw(8));
    bench::Timer t;
    std::uint64_t cycles = run_packets(*project, 100, 64);
    report.add("cycles_per_sec", static_cast<double>(cycles) / t.seconds(),
               "cycles/s", "packet_soc,latency=8,threads=1");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
