// NoC fabric throughput and latency across mesh sizes.
//
// Measures the raw cycle-accurate mesh (no model on top): every tile
// streams frames to the diagonally opposite tile, the worst-case uniform
// pattern for XY routing (all routes cross the mesh center). Reported per
// mesh size (1x2 — the bus-equivalent degenerate case — then 2x2 and 4x4):
//   * simulated frames per wall-clock second (how fast the simulator is),
//   * mean end-to-end frame latency in fabric cycles (how congested the
//     mesh is — this is the number a placement change moves).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/noc/topology.hpp"
#include "xtsoc/noc/traffic.hpp"

namespace {

using namespace xtsoc;

struct NocRun {
  std::uint64_t cycles = 0;
  std::uint64_t frames = 0;
  double mean_latency = 0.0;
};

/// Send `frames_per_tile` frames from every tile to its opposite corner and
/// run the fabric dry.
NocRun pump_frames(int width, int height, int frames_per_tile,
                   int payload_bytes) {
  noc::FabricConfig cfg;
  cfg.width = width;
  cfg.height = height;
  noc::Fabric fabric(cfg);

  const int tiles = width * height;
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_bytes),
                                    0xab);
  std::uint64_t cycle = 0;
  for (int i = 0; i < frames_per_tile; ++i) {
    for (int t = 0; t < tiles; ++t) {
      int dst = tiles - 1 - t;
      if (dst == t) continue;
      fabric.send_frame(t, dst, static_cast<std::uint32_t>(i), payload, cycle);
    }
  }
  while (!fabric.idle() && cycle < 10'000'000) {
    fabric.tick(++cycle);
    for (int t = 0; t < tiles; ++t) (void)fabric.pop_due(t, cycle);
  }

  noc::FabricStats stats = fabric.stats();
  NocRun run;
  run.cycles = cycle;
  run.frames = stats.frames_delivered;
  run.mean_latency = stats.latency.mean();
  return run;
}

/// One saturation-sweep point: drive a topology x routing fabric with a
/// synthetic pattern at a fixed offered load, then run the network dry.
struct SweepPoint {
  double offered = 0.0;     ///< frames offered per tile per cycle
  double throughput = 0.0;  ///< frames delivered per cycle (whole network)
  double mean_latency = 0.0;
  std::uint64_t delivered = 0;
};

SweepPoint run_sweep(noc::TopologyKind topology, noc::RoutePolicy routing,
                     noc::TrafficPattern pattern, double load, int width,
                     int height, int inject_cycles) {
  noc::FabricConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.topology = topology;
  cfg.routing = routing;
  noc::Fabric fabric(cfg);

  noc::TrafficSpec spec;
  spec.pattern = pattern;
  spec.seed = 42;
  spec.offered_load = load;
  spec.payload_bytes = 8;
  spec.hotspot_tile = 0;
  noc::TrafficGen gen(spec, fabric.topology());

  const int tiles = width * height;
  std::uint64_t cycle = 0;
  for (int c = 0; c < inject_cycles; ++c) {
    gen.tick(fabric, cycle);
    fabric.tick(++cycle);
    for (int t = 0; t < tiles; ++t) (void)fabric.pop_due(t, cycle);
  }
  while (!fabric.idle() && cycle < static_cast<std::uint64_t>(inject_cycles) +
                                       100'000) {
    fabric.tick(++cycle);
    for (int t = 0; t < tiles; ++t) (void)fabric.pop_due(t, cycle);
  }

  noc::FabricStats stats = fabric.stats();
  SweepPoint p;
  p.offered = load;
  p.delivered = stats.frames_delivered;
  p.throughput =
      cycle == 0 ? 0.0
                 : static_cast<double>(stats.frames_delivered) /
                       static_cast<double>(cycle);
  p.mean_latency = stats.latency.mean();
  return p;
}

/// The (topology, routing) grid the sweep covers. Ring is 16x1 (same tile
/// count as the 4x4 benchmarks); mesh/torus run 8x8 so wraparound links
/// have distance to save.
struct SweepConfig {
  noc::TopologyKind topology;
  noc::RoutePolicy routing;
  int width, height;
};

constexpr SweepConfig kSweepGrid[] = {
    {noc::TopologyKind::kMesh, noc::RoutePolicy::kXY, 8, 8},
    {noc::TopologyKind::kMesh, noc::RoutePolicy::kYX, 8, 8},
    {noc::TopologyKind::kMesh, noc::RoutePolicy::kAdaptive, 8, 8},
    {noc::TopologyKind::kTorus, noc::RoutePolicy::kXY, 8, 8},
    {noc::TopologyKind::kTorus, noc::RoutePolicy::kAdaptive, 8, 8},
    {noc::TopologyKind::kRing, noc::RoutePolicy::kXY, 16, 1},
};

constexpr noc::TrafficPattern kSweepPatterns[] = {
    noc::TrafficPattern::kUniform,
    noc::TrafficPattern::kHotspot,
    noc::TrafficPattern::kTranspose,
    noc::TrafficPattern::kBursty,
};

constexpr double kSweepLoad = 0.05;
constexpr int kSweepInjectCycles = 512;

std::string sweep_config_label(const SweepConfig& c,
                               noc::TrafficPattern pattern, double load) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "topology=%s,routing=%s,pattern=%s,load=%.2f,shape=%dx%d",
                noc::to_string(c.topology), noc::to_string(c.routing),
                noc::to_string(pattern), load, c.width, c.height);
  return buf;
}

void print_summary() {
  std::printf("== NoC fabric: frames and latency vs mesh size ==\n");
  std::printf("opposite-corner traffic, 64 frames/tile, 16-byte frames:\n");
  std::printf("  %6s %8s %10s %14s %16s\n", "mesh", "frames", "cycles",
              "frames/cycle", "mean latency");
  for (auto [w, h] : {std::pair{1, 2}, {2, 2}, {4, 4}}) {
    NocRun run = pump_frames(w, h, 64, 16);
    std::printf("  %3dx%-2d %8llu %10llu %14.3f %16.2f\n", w, h,
                static_cast<unsigned long long>(run.frames),
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.frames) /
                    static_cast<double>(run.cycles),
                run.mean_latency);
  }
  std::printf("(larger meshes move more frames per cycle but each frame "
              "travels farther —\n the bisection-bandwidth/diameter tradeoff "
              "a placement must respect)\n\n");

  std::printf("== Saturation sweep: topology x routing x pattern ==\n");
  std::printf("synthetic traffic (seed 42), %d inject cycles, 8-byte "
              "frames, load=%.2f:\n",
              kSweepInjectCycles, kSweepLoad);
  std::printf("  %-6s %-9s %-10s %10s %14s %14s\n", "topo", "routing",
              "pattern", "delivered", "frames/cycle", "mean latency");
  for (const SweepConfig& c : kSweepGrid) {
    for (noc::TrafficPattern p : kSweepPatterns) {
      SweepPoint pt = run_sweep(c.topology, c.routing, p, kSweepLoad,
                                c.width, c.height, kSweepInjectCycles);
      std::printf("  %-6s %-9s %-10s %10llu %14.3f %14.2f\n",
                  noc::to_string(c.topology), noc::to_string(c.routing),
                  noc::to_string(p),
                  static_cast<unsigned long long>(pt.delivered),
                  pt.throughput, pt.mean_latency);
    }
  }

  std::printf("\nload curve, transpose pattern (mesh vs torus 8x8, XY):\n");
  std::printf("  %-6s", "load");
  for (double load : {0.02, 0.05, 0.10, 0.20}) std::printf(" %12.2f", load);
  std::printf("\n");
  for (auto [topo, name] :
       {std::pair{noc::TopologyKind::kMesh, "mesh"},
        std::pair{noc::TopologyKind::kTorus, "torus"}}) {
    std::printf("  %-6s", name);
    for (double load : {0.02, 0.05, 0.10, 0.20}) {
      SweepPoint pt =
          run_sweep(topo, noc::RoutePolicy::kXY,
                    noc::TrafficPattern::kTranspose, load, 8, 8,
                    kSweepInjectCycles);
      std::printf(" %12.2f", pt.mean_latency);
    }
    std::printf("  (mean latency)\n");
  }
  std::printf("(wraparound halves the average transpose path, so the torus "
              "saturates later —\n the latency gap CI gates on)\n\n");
}

void BM_NocFrames(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int height = static_cast<int>(state.range(1));
  std::uint64_t frames = 0;
  std::uint64_t cycles = 0;
  double mean_latency = 0.0;
  for (auto _ : state) {
    NocRun run = pump_frames(width, height, 32, 16);
    frames += run.frames;
    cycles += run.cycles;
    mean_latency = run.mean_latency;
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["mean_latency_cycles"] = mean_latency;
}
BENCHMARK(BM_NocFrames)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({4, 4})
    ->ArgNames({"w", "h"});

/// Segmentation cost: same byte volume, different flit widths.
void BM_NocFlitWidth(benchmark::State& state) {
  const int flit_bytes = static_cast<int>(state.range(0));
  std::uint64_t frames = 0;
  for (auto _ : state) {
    noc::FabricConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    cfg.flit_payload_bytes = flit_bytes;
    noc::Fabric fabric(cfg);
    std::vector<std::uint8_t> payload(64, 0x5a);
    std::uint64_t cycle = 0;
    for (int i = 0; i < 32; ++i) {
      fabric.send_frame(0, 3, static_cast<std::uint32_t>(i), payload, cycle);
    }
    while (!fabric.idle() && cycle < 1'000'000) {
      fabric.tick(++cycle);
      (void)fabric.pop_due(3, cycle);
    }
    frames += fabric.stats().frames_delivered;
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NocFlitWidth)->Arg(1)->Arg(4)->Arg(16)->ArgNames({"flit_bytes"});

void emit_json() {
  bench::JsonReport report("noc");
  bench::Timer t;
  std::uint64_t frames = 0;
  std::uint64_t cycles = 0;
  double mean_latency = 0.0;
  while (t.seconds() < 0.3) {
    NocRun run = pump_frames(4, 4, 64, 16);
    frames += run.frames;
    cycles += run.cycles;
    mean_latency = run.mean_latency;
  }
  report.add("frames_per_sec", static_cast<double>(frames) / t.seconds(),
             "frames/s", "mesh=4x4,frames_per_tile=64,payload=16B");
  report.add("cycles_per_sec", static_cast<double>(cycles) / t.seconds(),
             "cycles/s", "mesh=4x4,frames_per_tile=64,payload=16B");
  report.add("mean_latency", mean_latency, "cycles",
             "mesh=4x4,opposite-corner traffic");

  // Saturation sweep: one (throughput, mean_latency) pair per
  // topology x routing x pattern point — the rows the CI benchmarks job
  // publishes and gates on (torus must beat mesh on transpose latency).
  for (const SweepConfig& c : kSweepGrid) {
    for (noc::TrafficPattern p : kSweepPatterns) {
      SweepPoint pt = run_sweep(c.topology, c.routing, p, kSweepLoad,
                                c.width, c.height, kSweepInjectCycles);
      const std::string label = sweep_config_label(c, p, kSweepLoad);
      report.add("sweep_throughput", pt.throughput, "frames/cycle", label);
      report.add("sweep_mean_latency", pt.mean_latency, "cycles", label);
    }
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
