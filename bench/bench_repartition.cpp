// E2 — "Changing the partition is a matter of changing the placement of the
// marks" (paper §4).
//
// Sweeps every partition of the 3-class packet SoC and reports, for each:
//   * the mark-diff size from the all-software baseline (the ENTIRE edit),
//   * that the model itself was untouched (0 model edits by construction),
//   * remap time (partition + validation + interface synthesis),
//   * regenerated C+VHDL size.
// Then benchmarks the remap and full-regenerate operations.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"

namespace {

using namespace xtsoc;

const char* kClasses[3] = {"Classifier", "Crypto", "Sink"};

marks::MarkSet marks_for(int mask) {
  marks::MarkSet m;
  for (int i = 0; i < 3; ++i) {
    if (mask & (1 << i)) m.mark_hardware(kClasses[i]);
  }
  return m;
}

void print_summary() {
  std::printf("== E2: repartitioning = moving marks ==\n");
  auto project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  marks::MarkSet baseline;  // all-software

  std::printf("  %-28s %9s %11s %11s %9s\n", "partition (hw classes)",
              "markdiff", "model-edits", "iface-msgs", "gen-lines");
  for (int mask = 0; mask < 8; ++mask) {
    DiagnosticSink sink;
    marks::MarkSet m = marks_for(mask);
    auto diff_opt = project->repartition(m, sink);
    if (!diff_opt) {
      std::printf("  mask %d rejected: %s\n", mask, sink.to_string().c_str());
      continue;
    }
    marks::MarkDiff from_baseline = marks::MarkSet::diff(baseline, m);
    codegen::Output out = project->generate_all(sink);

    std::string label;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) label += std::string(kClasses[i]) + " ";
    }
    if (label.empty()) label = "(none: all software)";
    std::printf("  %-28s %9zu %11d %11zu %9zu\n", label.c_str(),
                from_baseline.size(), 0,
                project->system().interface().message_count(),
                out.total_lines());
  }
  std::printf("  (model-edits is structurally 0: repartition() never touches "
              "the Domain)\n\n");
}

void BM_Remap(benchmark::State& state) {
  auto project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  int mask = 1;
  for (auto _ : state) {
    DiagnosticSink sink;
    auto diff = project->repartition(marks_for(mask), sink);
    benchmark::DoNotOptimize(diff);
    mask = (mask + 1) % 8;
  }
}
BENCHMARK(BM_Remap);

void BM_RegenerateAll(benchmark::State& state) {
  auto project = bench::make_project(bench::make_packet_soc(),
                                     marks_for(0b010));  // Crypto in hw
  for (auto _ : state) {
    DiagnosticSink sink;
    codegen::Output out = project->generate_all(sink);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RegenerateAll);

/// The cost of the whole repartition workflow: remap + regenerate. This is
/// what replaces the paper's "partition changes are expensive, and are
/// difficult to do correctly" (§1) manual rework.
void BM_FullRepartitionWorkflow(benchmark::State& state) {
  auto project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  int mask = 1;
  for (auto _ : state) {
    DiagnosticSink sink;
    project->repartition(marks_for(mask), sink);
    codegen::Output out = project->generate_all(sink);
    benchmark::DoNotOptimize(out);
    mask = (mask % 7) + 1;
  }
}
BENCHMARK(BM_FullRepartitionWorkflow);

void emit_json() {
  bench::JsonReport report("repartition");
  auto project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  {
    bench::Timer t;
    int reps = 0;
    int mask = 1;
    while (t.seconds() < 0.2) {
      DiagnosticSink sink;
      auto diff = project->repartition(marks_for(mask), sink);
      benchmark::DoNotOptimize(diff);
      mask = (mask % 7) + 1;
      ++reps;
    }
    report.add("remap_sec", t.seconds() / reps, "s",
               "packet_soc,all 7 hw masks round-robin");
  }
  {
    DiagnosticSink sink;
    project->repartition(marks_for(0b010), sink);
    codegen::Output out = project->generate_all(sink);
    report.add("generated_lines", static_cast<double>(out.total_lines()),
               "lines", "packet_soc,hw=Crypto");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
