// xtsoc::fault — the cost of being injectable.
//
// Two claims are gated here:
//   * fault_disabled_overhead_pct: a co-simulation with NO fault plan (and
//     one with a zero-rate plan attached) must run at the no-fault
//     baseline — every probe on the hot path is a dead null/flag test.
//     CI gates this at <= 2%.
//   * with faults armed, the resilient transport (CRC, acks, retransmit
//     bookkeeping) costs real time; fault_armed_overhead_pct reports it
//     (informational, not gated — armed runs are opt-in).
// Plus campaign fan-out throughput (runs/s at 1 and 4 campaign threads).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"

namespace {

using namespace xtsoc;
using runtime::Value;

/// The bench_cosim mesh workload: ping-ponging hardware nodes on a mesh,
/// one class per tile, tile 0 reserved for software.
std::unique_ptr<xtuml::Domain> make_mesh_soc(int nodes) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("MeshSoc");
  for (int i = 0; i < nodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % nodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "acc = self.acc;\n"
               "r = 0;\n"
               "while (r < 64)\n"
               "  acc = (acc * 33 + 7) % 65537;\n"
               "  r = r + 1;\n"
               "end while;\n"
               "self.acc = acc;\n"
               "if (acc % 16 == 0)\n"
               "  generate ping(v: acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;\n"
               "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet mesh_marks(int width, int height) {
  marks::MarkSet m;
  const int nodes = width * height - 1;  // tile 0 is the CPU tile
  for (int i = 0; i < nodes; ++i) {
    std::string cls = "Node" + std::to_string(i);
    int tile = i + 1;
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     xtuml::ScalarValue(std::int64_t{tile % width}));
    m.set_class_mark(cls, marks::kTileY,
                     xtuml::ScalarValue(std::int64_t{tile / width}));
  }
  m.set_domain_mark(marks::kMeshWidth,
                    xtuml::ScalarValue(static_cast<std::int64_t>(width)));
  m.set_domain_mark(marks::kMeshHeight,
                    xtuml::ScalarValue(static_cast<std::int64_t>(height)));
  m.set_domain_mark(marks::kLinkLatency, xtuml::ScalarValue(std::int64_t{4}));
  return m;
}

std::unique_ptr<cosim::CoSimulation> make_mesh_cosim(core::Project& project,
                                                     int nodes,
                                                     fault::Plan* plan) {
  cosim::CoSimConfig cfg;
  cfg.trace_enabled = false;
  cfg.fault = plan;
  auto cs = project.make_cosim(cfg);
  std::vector<runtime::InstanceHandle> handles;
  handles.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    handles.push_back(cs->create("Node" + std::to_string(i)));
  }
  for (int i = 0; i < nodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cs->executor_of(handles[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(handles[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(handles[static_cast<std::size_t>((i + 1) % nodes)]));
    cs->inject(handles[static_cast<std::size_t>(i)], "tick");
  }
  return cs;
}

fault::FaultSpec armed_spec() {
  fault::FaultSpec s;
  s.seed = 42;
  s.flit_drop = 0.01;
  s.flit_corrupt = 0.01;
  return s;
}

void emit_json() {
  bench::JsonReport report("fault");
  constexpr int kNodes = 4 * 4 - 1;
  {
    // Alternating best-of-30 slices, as in bench_cosim's obs overhead
    // measurement: min-time is the robust estimator for the cost of the
    // code itself, and alternation spreads scheduler noise evenly.
    fault::FaultSpec zero;  // attached but all-zero: the disabled path
    fault::Plan zero_plan(zero);
    fault::Plan armed_plan(armed_spec());
    auto p_bare = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
    auto p_zero = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
    auto p_armed = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
    auto cs_bare = make_mesh_cosim(*p_bare, kNodes, nullptr);
    auto cs_zero = make_mesh_cosim(*p_zero, kNodes, &zero_plan);
    auto cs_armed = make_mesh_cosim(*p_armed, kNodes, &armed_plan);
    for (auto* cs : {cs_bare.get(), cs_zero.get(), cs_armed.get()}) {
      cs->run_cycles(200);  // warm-up
    }
    auto slice = [](cosim::CoSimulation& cs) {
      bench::Timer t;
      cs.run_cycles(1000);
      return t.seconds();
    };
    double bare = 1e9, zero_t = 1e9, armed = 1e9;
    for (int s = 0; s < 40; ++s) {
      bare = std::min(bare, slice(*cs_bare));
      zero_t = std::min(zero_t, slice(*cs_zero));
      armed = std::min(armed, slice(*cs_armed));
    }
    report.add("fault_disabled_overhead_pct",
               std::max(0.0, (zero_t / bare - 1.0) * 100.0), "%",
               "mesh=4x4,zero-rate plan attached vs no plan");
    report.add("fault_armed_overhead_pct",
               std::max(0.0, (armed / bare - 1.0) * 100.0), "%",
               "mesh=4x4,drop+corrupt at 1% vs no plan");
  }
  {
    // Campaign fan-out throughput: 16 seeds over the 4x4 mesh workload.
    auto project = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
    auto one_run = [&](int index, std::uint64_t) {
      fault::Plan plan(fault::Campaign(armed_spec(), 16, 1).spec_for(index));
      auto cs = make_mesh_cosim(*project, kNodes, &plan);
      cs->run_cycles(500);
      return cosim::outcome_of(*cs, plan);
    };
    double secs_at[2] = {0.0, 0.0};
    int slot = 0;
    for (int threads : {1, 4}) {
      fault::Campaign campaign(armed_spec(), 16, threads);
      bench::Timer t;
      fault::CampaignResult r = campaign.run(one_run);
      secs_at[slot++] = t.seconds();
      report.add("campaign_runs_per_sec",
                 static_cast<double>(r.runs.size()) / t.seconds(), "runs/s",
                 "mesh=4x4,16 seeds,threads=" + std::to_string(threads));
    }
    const double speedup = secs_at[0] / secs_at[1];
    report.add("campaign_speedup_x", speedup, "x",
               "mesh=4x4,16 seeds,threads=4 vs threads=1");
    // The fan-out must actually scale — but only where the host can
    // express it. On fewer than 4 hardware threads the 4-thread campaign
    // degenerates to time-slicing and the ratio is noise, so the gate is
    // conditional on the hardware, not silently skipped: the metric is
    // emitted either way for the CI trend line.
    if (std::thread::hardware_concurrency() >= 4 && speedup < 1.5) {
      std::fprintf(stderr,
                   "bench_fault: FAIL: campaign speedup %.2fx < 1.5x at "
                   "threads=4 (%u hardware threads)\n",
                   speedup, std::thread::hardware_concurrency());
      report.write();
      std::exit(1);
    }
  }
  report.write();
}

void BM_FaultDisabled(benchmark::State& state) {
  constexpr int kNodes = 4 * 4 - 1;
  const bool attach = state.range(0) != 0;
  fault::FaultSpec zero;
  fault::Plan plan(zero);
  auto project = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
  auto cs = make_mesh_cosim(*project, kNodes, attach ? &plan : nullptr);
  for (auto _ : state) {
    cs->run_cycles(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FaultDisabled)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FaultArmed(benchmark::State& state) {
  constexpr int kNodes = 4 * 4 - 1;
  fault::Plan plan(armed_spec());
  auto project = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
  auto cs = make_mesh_cosim(*project, kNodes, &plan);
  for (auto _ : state) {
    cs->run_cycles(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FaultArmed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
