// E4 — "Repeatable mappings ... produce compilable text (e.g., C, VHDL)"
// (paper §4).
//
// Measures model-compiler throughput: lines of C / VHDL generated per
// second as the model scales, for each backend, plus the template
// (archetype) engine on its own.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/mapping/archetype.hpp"

namespace {

using namespace xtsoc;

/// Synthetic model with half the classes marked hardware.
std::unique_ptr<core::Project> scaled_project(int classes) {
  auto domain = bench::make_synthetic(classes, 4);
  marks::MarkSet m;
  for (int i = 0; i < classes; i += 2) m.mark_hardware("C" + std::to_string(i));
  return bench::make_project(std::move(domain), std::move(m));
}

void BM_GenerateC(benchmark::State& state) {
  auto project = scaled_project(static_cast<int>(state.range(0)));
  std::size_t lines = 0;
  for (auto _ : state) {
    DiagnosticSink sink;
    codegen::Output out = project->generate_c(sink);
    lines += out.total_lines();
    benchmark::DoNotOptimize(out);
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GenerateC)->Arg(4)->Arg(16)->Arg(64)->ArgNames({"classes"});

void BM_GenerateVhdl(benchmark::State& state) {
  auto project = scaled_project(static_cast<int>(state.range(0)));
  std::size_t lines = 0;
  for (auto _ : state) {
    DiagnosticSink sink;
    codegen::Output out = project->generate_vhdl(sink);
    lines += out.total_lines();
    benchmark::DoNotOptimize(out);
  }
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GenerateVhdl)->Arg(4)->Arg(16)->Arg(64)->ArgNames({"classes"});

void BM_ArchetypeRender(benchmark::State& state) {
  mapping::Bindings b;
  b.set("class", "Oven");
  std::vector<mapping::ListItem> fields;
  for (int i = 0; i < 32; ++i) {
    fields.push_back(mapping::Record{{"name", "f" + std::to_string(i)},
                                     {"type", "int64_t"}});
  }
  b.set_list("fields", std::move(fields));
  const char* archetype =
      "typedef struct {\n%for f in fields%  ${f.type} ${f.name};\n%end%"
      "} ${class}_t;\n";
  for (auto _ : state) {
    DiagnosticSink sink;
    std::string out = mapping::render_archetype(archetype, b, sink);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ArchetypeRender);

void print_summary() {
  std::printf("== E4: model compiler output, by model size ==\n");
  std::printf("  %8s %12s %12s %14s\n", "classes", "C lines", "VHDL lines",
              "total bytes");
  for (int classes : {4, 16, 64}) {
    auto project = scaled_project(classes);
    DiagnosticSink sink;
    codegen::Output c = project->generate_c(sink);
    codegen::Output v = project->generate_vhdl(sink);
    std::printf("  %8d %12zu %12zu %14zu\n", classes, c.total_lines(),
                v.total_lines(), c.total_bytes() + v.total_bytes());
  }
  std::printf("\n");
}

void emit_json() {
  xtsoc::bench::JsonReport report("codegen");
  auto project = scaled_project(16);
  {
    DiagnosticSink sink;
    bench::Timer t;
    std::size_t lines = 0;
    while (t.seconds() < 0.2) {
      codegen::Output out = project->generate_c(sink);
      lines += out.total_lines();
    }
    report.add("lines_per_sec", static_cast<double>(lines) / t.seconds(),
               "lines/s", "backend=c,classes=16");
  }
  {
    DiagnosticSink sink;
    bench::Timer t;
    std::size_t lines = 0;
    while (t.seconds() < 0.2) {
      codegen::Output out = project->generate_vhdl(sink);
      lines += out.total_lines();
    }
    report.add("lines_per_sec", static_cast<double>(lines) / t.seconds(),
               "lines/s", "backend=vhdl,classes=16");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
