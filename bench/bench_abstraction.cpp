// E7 — "SystemC and Handel-C are low-level, and presume too much
// implementation" (paper §1): the abstraction-leverage ablation.
//
// For each example model, compares the size of the abstract specification
// (the .xtm text, which contains the ENTIRE system description including
// action bodies) against the size of the generated implementation (C +
// VHDL). The ratio is the leverage the abstract modelling level buys; the
// marks column shows how little text carries the whole partition decision.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/text/xtm.hpp"

namespace {

using namespace xtsoc;

struct Row {
  const char* name;
  std::unique_ptr<core::Project> project;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  {
    marks::MarkSet m;
    m.mark_hardware("Crypto");
    rows.push_back(
        {"packet_soc", bench::make_project(bench::make_packet_soc(),
                                           std::move(m))});
  }
  {
    marks::MarkSet m;
    m.mark_hardware("Stage1");
    m.mark_hardware("Stage3");
    rows.push_back({"relay_chain_4",
                    bench::make_project(bench::make_relay_chain(4),
                                        std::move(m))});
  }
  {
    marks::MarkSet m;
    for (int i = 0; i < 16; i += 2) m.mark_hardware("C" + std::to_string(i));
    rows.push_back({"synthetic_16x4",
                    bench::make_project(bench::make_synthetic(16, 4),
                                        std::move(m))});
  }
  return rows;
}

void print_summary() {
  std::printf("== E7: abstraction leverage (model text vs generated text) ==\n");
  std::printf("  %-16s %11s %11s %11s %11s %8s\n", "model", "model lines",
              "marks lines", "C lines", "VHDL lines", "ratio");
  for (const Row& row : make_rows()) {
    std::string model_text = text::write_xtm(row.project->domain());
    std::string marks_text = row.project->marks().to_text();
    DiagnosticSink sink;
    codegen::Output c = row.project->generate_c(sink);
    codegen::Output v = row.project->generate_vhdl(sink);
    std::size_t model_lines = count_lines(model_text);
    std::size_t marks_lines = count_lines(marks_text);
    std::size_t impl_lines = c.total_lines() + v.total_lines();
    std::printf("  %-16s %11zu %11zu %11zu %11zu %7.1fx\n", row.name,
                model_lines, marks_lines, c.total_lines(), v.total_lines(),
                static_cast<double>(impl_lines) /
                    static_cast<double>(model_lines + marks_lines));
  }
  std::printf("(one abstract line of specification expands to several lines "
              "of placed\n implementation — and the partition rides in the "
              "marks column alone)\n\n");
}

void BM_ModelToTextRoundTrip(benchmark::State& state) {
  auto project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  for (auto _ : state) {
    std::string xtm = text::write_xtm(project->domain());
    DiagnosticSink sink;
    auto back = text::parse_xtm(xtm, sink);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_ModelToTextRoundTrip);

void BM_FullPipelineFromText(benchmark::State& state) {
  // Text in, generated system out: the entire toolchain end to end.
  auto seed_project =
      bench::make_project(bench::make_packet_soc(), marks::MarkSet{});
  std::string xtm = text::write_xtm(seed_project->domain());
  std::string marks_text = "Crypto.isHardware = true\n";
  for (auto _ : state) {
    DiagnosticSink sink;
    auto project = core::Project::from_xtm(xtm, marks_text, sink);
    codegen::Output out = project->generate_all(sink);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FullPipelineFromText);

void emit_json() {
  bench::JsonReport report("abstraction");
  for (const Row& row : make_rows()) {
    std::string model_text = text::write_xtm(row.project->domain());
    std::string marks_text = row.project->marks().to_text();
    DiagnosticSink sink;
    codegen::Output c = row.project->generate_c(sink);
    codegen::Output v = row.project->generate_vhdl(sink);
    std::size_t spec_lines =
        count_lines(model_text) + count_lines(marks_text);
    std::size_t impl_lines = c.total_lines() + v.total_lines();
    report.add("leverage_ratio",
               static_cast<double>(impl_lines) /
                   static_cast<double>(spec_lines),
               "x", std::string("model=") + row.name);
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
