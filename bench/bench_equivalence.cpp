// E6 — run-to-completion / cause-and-effect semantics preserved by every
// mapping (paper §2, §4: the model compiler "may do any manner it chooses
// so long as the defined behavior is preserved").
//
// Summary: for every partition of the packet SoC, run the same randomized
// workload abstractly and partitioned, and check per-instance projection
// equivalence (plus causality on the abstract trace). Also runs the
// queue-policy ablation: the xtUML self-directed-first discipline vs plain
// FIFO. Benchmarks time the verification machinery itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/common/rng.hpp"
#include "xtsoc/verify/explore.hpp"
#include "xtsoc/verify/testcase.hpp"

namespace {

using namespace xtsoc;
using runtime::Value;

const char* kClasses[3] = {"Classifier", "Crypto", "Sink"};

marks::MarkSet marks_for(int mask) {
  marks::MarkSet m;
  for (int i = 0; i < 3; ++i) {
    if (mask & (1 << i)) m.mark_hardware(kClasses[i]);
  }
  return m;
}

/// Randomized-but-reproducible packet workload as a formal test case.
/// `single_sender` keeps every receiver on one incoming channel (all
/// packets take the crypto path), which is the topology where the STRICT
/// per-instance projection equivalence is guaranteed; with mixed paths the
/// Sink has two senders, xtUML promises only pairwise order, and the
/// guaranteed relation is final-state equivalence (second table).
verify::TestCase random_workload(std::uint64_t seed, int packets,
                                 bool single_sender) {
  Rng rng(seed);
  verify::TestCase t;
  t.name = "random packets";
  t.population = {
      {"sink", "Sink", {}},
      {"crypto", "Crypto", {{"sink", verify::RefByName{"sink"}}}},
      {"cls",
       "Classifier",
       {{"crypto", verify::RefByName{"crypto"}},
        {"sink", verify::RefByName{"sink"}}}},
  };
  for (int i = 0; i < packets; ++i) {
    std::int64_t len = rng.range(1, 32);
    if (single_sender) len *= 2;  // even: always via Crypto
    t.stimuli.push_back(
        {"cls", "packet", {Value(len), Value(static_cast<std::int64_t>(i))},
         0});
  }
  t.expect_attrs = {
      {"sink", "received", Value(static_cast<std::int64_t>(packets))}};
  return t;
}

void print_summary() {
  std::printf("== E6: behaviour preservation across every partition ==\n");
  verify::TestCase strict_test =
      random_workload(/*seed=*/7, /*packets=*/64, /*single_sender=*/true);
  verify::TestCase mixed_test =
      random_workload(/*seed=*/7, /*packets=*/64, /*single_sender=*/false);

  std::printf("  %-28s %12s %12s %12s\n", "partition (hw classes)",
              "projections", "final-state", "cosim cycles");
  for (int mask = 0; mask < 8; ++mask) {
    auto project =
        bench::make_project(bench::make_packet_soc(), marks_for(mask));

    // Strict per-instance projections on the single-sender workload.
    verify::ConformanceReport cr = project->run_conformance(strict_test);

    // Final-state equivalence on the mixed (multi-sender) workload.
    verify::AbstractRunner abs(project->compiled());
    abs.run(mixed_test);
    verify::CosimRunner part(project->system());
    part.run(mixed_test);
    auto finals = verify::compare_final_states(
        abs.executor().database(),
        {&part.cosim().hw_executor().database(),
         &part.cosim().sw_executor().database()});

    std::string label;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) label += std::string(kClasses[i]) + " ";
    }
    if (label.empty()) label = "(none)";
    std::printf("  %-28s %12s %12s %12llu\n", label.c_str(),
                cr.passed() ? "EQUIV" : "DIVERGED",
                finals.equivalent ? "EQUIV" : "DIVERGED",
                static_cast<unsigned long long>(cr.cosim_run.duration));
  }

  // Causality check on the abstract trace.
  auto project = bench::make_project(bench::make_packet_soc(), marks_for(0));
  verify::AbstractRunner runner(project->compiled());
  runner.run(strict_test);
  std::string err;
  bool causal = verify::check_causality(runner.executor().trace(), &err);
  std::printf("  causality (send-before-dispatch): %s\n",
              causal ? "HOLDS" : err.c_str());

  // Ablation: plain-FIFO queueing still preserves per-instance projections
  // for this pipeline (single sender per receiver pair) but is NOT the
  // xtUML discipline; the runtime test suite shows the model where they
  // differ (Executor.FifoPolicyAblationChangesOrder).
  runtime::ExecutorConfig fifo;
  fifo.policy = runtime::QueuePolicy::kFifoOnly;
  verify::AbstractRunner fifo_runner(project->compiled(), fifo);
  verify::RunReport fr = fifo_runner.run(strict_test);
  auto eq = verify::compare_executions(runner.executor().trace(),
                                       {&fifo_runner.executor().trace()});
  std::printf("  ablation (FIFO-only queue): functional %s, projections %s\n",
              fr.passed ? "PASS" : "FAIL",
              eq.equivalent ? "EQUIVALENT" : "DIVERGENT");

  // Exhaustive schedule check: EVERY legal interleaving of a small packet
  // burst is explored — no schedule faults, no dead states.
  auto xr = verify::explore(project->compiled(), [](runtime::Executor& exec) {
    auto sink = exec.create("Sink");
    auto crypto = exec.create_with("Crypto", {{"sink", Value(sink)}});
    auto cls = exec.create_with(
        "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
    for (int i = 0; i < 4; ++i) {
      exec.inject(cls, "packet",
                  {Value(std::int64_t{2 * (i + 1)}),
                   Value(static_cast<std::int64_t>(i))});
    }
  });
  std::printf("  exhaustive schedules (4-packet burst): %s\n\n",
              xr.to_string().c_str());
}

void BM_ExploreSchedules(benchmark::State& state) {
  auto project = bench::make_project(bench::make_packet_soc(), marks_for(0));
  for (auto _ : state) {
    auto xr = verify::explore(project->compiled(),
                              [](runtime::Executor& exec) {
      auto sink = exec.create("Sink");
      auto crypto = exec.create_with("Crypto", {{"sink", Value(sink)}});
      auto cls = exec.create_with(
          "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
      for (int i = 0; i < 3; ++i) {
        exec.inject(cls, "packet",
                    {Value(std::int64_t{2 * (i + 1)}),
                     Value(static_cast<std::int64_t>(i))});
      }
    });
    benchmark::DoNotOptimize(xr);
  }
}
BENCHMARK(BM_ExploreSchedules);

void BM_Conformance(benchmark::State& state) {
  const int mask = static_cast<int>(state.range(0));
  auto project =
      bench::make_project(bench::make_packet_soc(), marks_for(mask));
  verify::TestCase test = random_workload(7, 32, true);
  for (auto _ : state) {
    verify::ConformanceReport cr = project->run_conformance(test);
    if (!cr.passed()) state.SkipWithError("divergence!");
    benchmark::DoNotOptimize(cr);
  }
}
BENCHMARK(BM_Conformance)->Arg(0)->Arg(2)->Arg(7)->ArgNames({"hwmask"});

void BM_ProjectionCompare(benchmark::State& state) {
  auto project = bench::make_project(bench::make_packet_soc(), marks_for(2));
  verify::TestCase test = random_workload(7, 128, true);
  verify::AbstractRunner a(project->compiled());
  a.run(test);
  verify::CosimRunner c(project->system());
  c.run(test);
  for (auto _ : state) {
    auto eq = verify::compare_executions(
        a.executor().trace(), {&c.cosim().hw_executor().trace(),
                               &c.cosim().sw_executor().trace()});
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_ProjectionCompare);

void BM_CausalityCheck(benchmark::State& state) {
  auto project = bench::make_project(bench::make_packet_soc(), marks_for(0));
  verify::AbstractRunner a(project->compiled());
  a.run(random_workload(7, 128, true));
  for (auto _ : state) {
    std::string err;
    bool ok = verify::check_causality(a.executor().trace(), &err);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CausalityCheck);

void emit_json() {
  bench::JsonReport report("equivalence");
  verify::TestCase test = random_workload(7, 32, true);
  {
    auto project =
        bench::make_project(bench::make_packet_soc(), marks_for(2));
    bench::Timer t;
    int reps = 0;
    bool all_passed = true;
    while (t.seconds() < 0.3) {
      verify::ConformanceReport cr = project->run_conformance(test);
      all_passed = all_passed && cr.passed();
      ++reps;
    }
    report.add("conformance_sec", t.seconds() / reps, "s",
               "packet_soc,hw=Crypto,packets=32");
    report.add("conformance_passed", all_passed ? 1.0 : 0.0, "bool",
               "packet_soc,hw=Crypto,packets=32");
  }
  {
    auto project =
        bench::make_project(bench::make_packet_soc(), marks_for(0));
    bench::Timer t;
    auto xr = verify::explore(project->compiled(),
                              [](runtime::Executor& exec) {
      auto sink = exec.create("Sink");
      auto crypto = exec.create_with("Crypto", {{"sink", Value(sink)}});
      auto cls = exec.create_with(
          "Classifier", {{"crypto", Value(crypto)}, {"sink", Value(sink)}});
      for (int i = 0; i < 3; ++i) {
        exec.inject(cls, "packet",
                    {Value(std::int64_t{2 * (i + 1)}),
                     Value(static_cast<std::int64_t>(i))});
      }
    });
    benchmark::DoNotOptimize(xr);
    report.add("explore_sec", t.seconds(), "s", "packet_soc,3-packet burst");
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
