// xtsoc::snap — what a checkpoint buys.
//
// Two claims are gated here (the acceptance numbers of the snap/xtsocd
// subsystem):
//   * restore is cheap: snap_restore_latency_ms is the cost of
//     re-elaborating + load_state, the per-seed price a warm campaign
//     pays in place of re-simulating the warm-up prefix;
//   * warm campaigns beat cold re-elaboration by >= 5x on the 4x4-mesh
//     16-seed fault campaign (campaign_runs_per_sec warm vs cold). The
//     gate is enforced HERE, in-process — the ratio is per-run work
//     (restore+250 cycles vs elaborate+6250 cycles), independent of host
//     parallelism, so it holds on a 1-core CI runner too.
// Exactness is asserted alongside the speedup: the warm document must be
// byte-identical to the cold one, or the speedup is measuring a different
// computation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/snapshot.hpp"
#include "xtsoc/snap/warm.hpp"

namespace {

using namespace xtsoc;
using runtime::Value;

/// Ping-ponging hardware nodes on a 4x4 mesh, one class per tile, tile 0
/// reserved for software. Unlike the bench_fault stressor, this workload
/// is steady-state by construction: each node keeps exactly one tick
/// circulating (receiving a ping does NOT mint another — the tick issued
/// by the last Spin execution is still in flight), so traffic, event
/// population, and live NoC state are flat in cycle count. That is the
/// premise a warm campaign monetizes — the checkpoint is O(live state),
/// not O(history) — and it mirrors the realistic shape: campaigns warm up
/// into steady state, they don't snapshot a diverging backlog.
std::unique_ptr<xtuml::Domain> make_mesh_soc(int nodes) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("MeshSoc");
  for (int i = 0; i < nodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % nodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        // 63 iterations, not 64: the affine map x -> 33x+7 mod 65537 has
        // power-of-two order (the group order is 2^16), so composing it
        // 2^6 times collapses the orbit to period 32 where acc % 16 == 0
        // hits ~8x too often and the ping rate saturates NIC injection.
        // An odd composition count keeps the full orbit and the intended
        // ~1/16 rate — the steady-state premise above depends on it.
        .state("Spin",
               "acc = self.acc;\n"
               "r = 0;\n"
               "while (r < 63)\n"
               "  acc = (acc * 33 + 7) % 65537;\n"
               "  r = r + 1;\n"
               "end while;\n"
               "self.acc = acc;\n"
               "if (acc % 16 == 0)\n"
               "  generate ping(v: acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet mesh_marks(int width, int height) {
  marks::MarkSet m;
  const int nodes = width * height - 1;  // tile 0 is the CPU tile
  for (int i = 0; i < nodes; ++i) {
    std::string cls = "Node" + std::to_string(i);
    int tile = i + 1;
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     xtuml::ScalarValue(std::int64_t{tile % width}));
    m.set_class_mark(cls, marks::kTileY,
                     xtuml::ScalarValue(std::int64_t{tile / width}));
  }
  m.set_domain_mark(marks::kMeshWidth,
                    xtuml::ScalarValue(static_cast<std::int64_t>(width)));
  m.set_domain_mark(marks::kMeshHeight,
                    xtuml::ScalarValue(static_cast<std::int64_t>(height)));
  m.set_domain_mark(marks::kLinkLatency, xtuml::ScalarValue(std::int64_t{4}));
  return m;
}

constexpr int kNodes = 4 * 4 - 1;
constexpr int kRuns = 16;
// The campaign shape: a long shared warm-up, a short injection tail. The
// fault window opens after the checkpoint (the warm-exactness
// precondition), which is also the realistic shape — faults are
// interesting once the system is in steady state, not during boot.
constexpr std::uint64_t kWarmCycles = 6000;
constexpr std::uint64_t kRunCycles = 250;
constexpr std::uint64_t kWindowStart = 6000;

/// Create + wire + kick the mesh population on an existing co-simulation.
void populate_mesh(cosim::CoSimulation& cs) {
  std::vector<runtime::InstanceHandle> handles;
  handles.reserve(static_cast<std::size_t>(kNodes));
  for (int i = 0; i < kNodes; ++i) {
    handles.push_back(cs.create("Node" + std::to_string(i)));
  }
  for (int i = 0; i < kNodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cs.executor_of(handles[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(handles[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(handles[static_cast<std::size_t>((i + 1) % kNodes)]));
    cs.inject(handles[static_cast<std::size_t>(i)], "tick");
  }
}

fault::FaultSpec campaign_spec() {
  fault::FaultSpec s;
  s.seed = 42;
  s.flit_drop = 0.01;
  s.flit_corrupt = 0.01;
  s.window_start = kWindowStart;
  return s;
}

void emit_json() {
  bench::JsonReport report("snap");
  auto project = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
  const mapping::MappedSystem& sys = project->system();

  {
    // Snapshot mechanics: size, save cost, restore latency (best-of-8;
    // restore = re-elaborate + load_state, the warm path's per-seed cost).
    fault::Plan plan(campaign_spec());
    cosim::CoSimConfig cfg;
    cfg.trace_enabled = false;
    cfg.fault = &plan;
    cosim::CoSimulation cs(sys, cfg);
    populate_mesh(cs);
    cs.run_cycles(kWarmCycles);
    bench::Timer save_t;
    const std::vector<std::uint8_t> bytes = snap::save(cs, &plan, nullptr);
    const double save_ms = save_t.seconds() * 1e3;
    report.add("snap_snapshot_kb",
               static_cast<double>(bytes.size()) / 1024.0, "KiB",
               "mesh=4x4,cycle=6000");
    report.add("snap_save_ms", save_ms, "ms", "mesh=4x4,cycle=6000");
    double restore_ms = 1e18;
    for (int i = 0; i < 8; ++i) {
      fault::Plan p(campaign_spec());
      cosim::CoSimConfig rcfg;
      rcfg.trace_enabled = false;
      rcfg.fault = &p;
      bench::Timer t;
      cosim::CoSimulation fresh(sys, rcfg);
      snap::restore(fresh, bytes.data(), bytes.size(), &p, nullptr);
      restore_ms = std::min(restore_ms, t.seconds() * 1e3);
    }
    report.add("snap_restore_latency_ms", restore_ms, "ms",
               "mesh=4x4,cycle=6000,elaborate+load_state");
  }

  // Cold vs warm 16-seed campaign over the same span. Cold pays
  // (elaborate + 6250 cycles) per seed; warm pays (restore + 250 cycles)
  // per seed after a one-time checkpoint build.
  const fault::FaultSpec spec = campaign_spec();
  fault::CampaignResult cold_result;
  double cold_secs = 0.0;
  {
    fault::Campaign campaign(spec, kRuns, 1);
    bench::Timer t;
    cold_result = campaign.run([&](int index, std::uint64_t) {
      fault::Plan plan(campaign.spec_for(index));
      cosim::CoSimConfig cfg;
      cfg.trace_enabled = false;
      cfg.fault = &plan;
      cosim::CoSimulation cs(sys, cfg);
      populate_mesh(cs);
      cs.run_cycles(kWarmCycles + kRunCycles);
      return cosim::outcome_of(cs, plan);
    });
    cold_secs = t.seconds();
    report.add("campaign_runs_per_sec", kRuns / cold_secs, "runs/s",
               "mesh=4x4,16 seeds,cold");
  }

  fault::CampaignResult warm_result;
  double warm_secs = 0.0;
  {
    bench::Timer setup_t;
    cosim::CoSimConfig wcfg;
    wcfg.trace_enabled = false;
    snap::WarmCampaign warm(sys, wcfg, spec, kWarmCycles, kRunCycles,
                            populate_mesh);
    report.add("snap_warm_setup_ms", setup_t.seconds() * 1e3, "ms",
               "mesh=4x4,one-time checkpoint build");
    bench::Timer t;
    warm_result = warm.run(kRuns, 1);
    warm_secs = t.seconds();
    report.add("campaign_runs_per_sec", kRuns / warm_secs, "runs/s",
               "mesh=4x4,16 seeds,warm");
  }

  // Exactness first: a speedup over a different computation is not a
  // speedup. Then the >= 5x gate.
  if (warm_result.to_snapshot().to_json(2) !=
      cold_result.to_snapshot().to_json(2)) {
    std::fprintf(stderr,
                 "bench_snap: FAIL: warm campaign document differs from "
                 "cold — warm-start exactness broken\n");
    std::exit(1);
  }
  const double speedup = cold_secs / warm_secs;
  report.add("snap_warm_speedup_x", speedup, "x",
             "mesh=4x4,16 seeds,warm vs cold");
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "bench_snap: FAIL: warm campaign speedup %.2fx < 5x gate\n",
                 speedup);
    report.write();  // leave the evidence on disk either way
    std::exit(1);
  }
  report.write();
}

void BM_SnapRestore(benchmark::State& state) {
  auto project = bench::make_project(make_mesh_soc(kNodes), mesh_marks(4, 4));
  const mapping::MappedSystem& sys = project->system();
  cosim::CoSimConfig cfg;
  cfg.trace_enabled = false;
  cosim::CoSimulation cs(sys, cfg);
  populate_mesh(cs);
  cs.run_cycles(static_cast<std::uint64_t>(state.range(0)));
  const std::vector<std::uint8_t> bytes = snap::save(cs);
  for (auto _ : state) {
    cosim::CoSimulation fresh(sys, cfg);
    snap::restore(fresh, bytes.data(), bytes.size());
    benchmark::DoNotOptimize(fresh.cycles());
  }
}
BENCHMARK(BM_SnapRestore)->Arg(500)->Arg(1750)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  emit_json();
  if (bench::json_only(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
