# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xtuml_test[1]_include.cmake")
include("/root/repo/build/tests/oal_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/marks_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/hwsim_test[1]_include.cmake")
include("/root/repo/build/tests/swrt_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/bridge_test[1]_include.cmake")
