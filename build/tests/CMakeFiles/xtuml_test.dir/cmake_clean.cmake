file(REMOVE_RECURSE
  "CMakeFiles/xtuml_test.dir/xtuml_test.cpp.o"
  "CMakeFiles/xtuml_test.dir/xtuml_test.cpp.o.d"
  "xtuml_test"
  "xtuml_test.pdb"
  "xtuml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtuml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
