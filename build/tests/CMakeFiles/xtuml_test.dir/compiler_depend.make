# Empty compiler generated dependencies file for xtuml_test.
# This may be replaced when dependencies are built.
