file(REMOVE_RECURSE
  "CMakeFiles/oal_test.dir/oal_test.cpp.o"
  "CMakeFiles/oal_test.dir/oal_test.cpp.o.d"
  "oal_test"
  "oal_test.pdb"
  "oal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
