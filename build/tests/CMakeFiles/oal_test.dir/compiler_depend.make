# Empty compiler generated dependencies file for oal_test.
# This may be replaced when dependencies are built.
