file(REMOVE_RECURSE
  "CMakeFiles/swrt_test.dir/swrt_test.cpp.o"
  "CMakeFiles/swrt_test.dir/swrt_test.cpp.o.d"
  "swrt_test"
  "swrt_test.pdb"
  "swrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
