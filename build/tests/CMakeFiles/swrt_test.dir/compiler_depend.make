# Empty compiler generated dependencies file for swrt_test.
# This may be replaced when dependencies are built.
