# Empty compiler generated dependencies file for xtsoc_codegen.
# This may be replaced when dependencies are built.
