file(REMOVE_RECURSE
  "libxtsoc_codegen.a"
)
