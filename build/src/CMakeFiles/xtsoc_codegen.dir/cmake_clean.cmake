file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_codegen.dir/xtsoc/codegen/cgen.cpp.o"
  "CMakeFiles/xtsoc_codegen.dir/xtsoc/codegen/cgen.cpp.o.d"
  "CMakeFiles/xtsoc_codegen.dir/xtsoc/codegen/vhdlgen.cpp.o"
  "CMakeFiles/xtsoc_codegen.dir/xtsoc/codegen/vhdlgen.cpp.o.d"
  "libxtsoc_codegen.a"
  "libxtsoc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
