# Empty compiler generated dependencies file for xtsoc_bridge.
# This may be replaced when dependencies are built.
