file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_bridge.dir/xtsoc/bridge/bridge.cpp.o"
  "CMakeFiles/xtsoc_bridge.dir/xtsoc/bridge/bridge.cpp.o.d"
  "libxtsoc_bridge.a"
  "libxtsoc_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
