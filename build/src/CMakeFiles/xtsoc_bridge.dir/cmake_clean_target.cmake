file(REMOVE_RECURSE
  "libxtsoc_bridge.a"
)
