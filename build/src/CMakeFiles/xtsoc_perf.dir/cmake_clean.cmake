file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_perf.dir/xtsoc/perf/perf.cpp.o"
  "CMakeFiles/xtsoc_perf.dir/xtsoc/perf/perf.cpp.o.d"
  "CMakeFiles/xtsoc_perf.dir/xtsoc/perf/traceexport.cpp.o"
  "CMakeFiles/xtsoc_perf.dir/xtsoc/perf/traceexport.cpp.o.d"
  "libxtsoc_perf.a"
  "libxtsoc_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
