# Empty dependencies file for xtsoc_perf.
# This may be replaced when dependencies are built.
