file(REMOVE_RECURSE
  "libxtsoc_perf.a"
)
