file(REMOVE_RECURSE
  "libxtsoc_marks.a"
)
