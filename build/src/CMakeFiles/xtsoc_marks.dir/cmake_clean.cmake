file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_marks.dir/xtsoc/marks/marks.cpp.o"
  "CMakeFiles/xtsoc_marks.dir/xtsoc/marks/marks.cpp.o.d"
  "libxtsoc_marks.a"
  "libxtsoc_marks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_marks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
