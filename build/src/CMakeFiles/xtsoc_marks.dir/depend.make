# Empty dependencies file for xtsoc_marks.
# This may be replaced when dependencies are built.
