file(REMOVE_RECURSE
  "libxtsoc_core.a"
)
