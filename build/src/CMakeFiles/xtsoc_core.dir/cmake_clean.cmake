file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_core.dir/xtsoc/core/project.cpp.o"
  "CMakeFiles/xtsoc_core.dir/xtsoc/core/project.cpp.o.d"
  "CMakeFiles/xtsoc_core.dir/xtsoc/core/stimulus.cpp.o"
  "CMakeFiles/xtsoc_core.dir/xtsoc/core/stimulus.cpp.o.d"
  "libxtsoc_core.a"
  "libxtsoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
