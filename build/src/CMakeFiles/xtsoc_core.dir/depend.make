# Empty dependencies file for xtsoc_core.
# This may be replaced when dependencies are built.
