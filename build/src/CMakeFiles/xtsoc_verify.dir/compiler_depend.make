# Empty compiler generated dependencies file for xtsoc_verify.
# This may be replaced when dependencies are built.
