file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/equivalence.cpp.o"
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/equivalence.cpp.o.d"
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/explore.cpp.o"
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/explore.cpp.o.d"
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/testcase.cpp.o"
  "CMakeFiles/xtsoc_verify.dir/xtsoc/verify/testcase.cpp.o.d"
  "libxtsoc_verify.a"
  "libxtsoc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
