file(REMOVE_RECURSE
  "libxtsoc_verify.a"
)
