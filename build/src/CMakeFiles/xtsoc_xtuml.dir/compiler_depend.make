# Empty compiler generated dependencies file for xtsoc_xtuml.
# This may be replaced when dependencies are built.
