file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/builder.cpp.o"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/builder.cpp.o.d"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/model.cpp.o"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/model.cpp.o.d"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/types.cpp.o"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/types.cpp.o.d"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/validate.cpp.o"
  "CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/validate.cpp.o.d"
  "libxtsoc_xtuml.a"
  "libxtsoc_xtuml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_xtuml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
