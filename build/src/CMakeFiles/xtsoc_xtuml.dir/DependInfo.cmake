
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtsoc/xtuml/builder.cpp" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/builder.cpp.o" "gcc" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/builder.cpp.o.d"
  "/root/repo/src/xtsoc/xtuml/model.cpp" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/model.cpp.o" "gcc" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/model.cpp.o.d"
  "/root/repo/src/xtsoc/xtuml/types.cpp" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/types.cpp.o" "gcc" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/types.cpp.o.d"
  "/root/repo/src/xtsoc/xtuml/validate.cpp" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/validate.cpp.o" "gcc" "src/CMakeFiles/xtsoc_xtuml.dir/xtsoc/xtuml/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
