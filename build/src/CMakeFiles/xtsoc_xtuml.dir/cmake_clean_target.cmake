file(REMOVE_RECURSE
  "libxtsoc_xtuml.a"
)
