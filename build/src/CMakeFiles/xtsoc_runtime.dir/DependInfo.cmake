
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtsoc/runtime/database.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/database.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/database.cpp.o.d"
  "/root/repo/src/xtsoc/runtime/executor.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/executor.cpp.o.d"
  "/root/repo/src/xtsoc/runtime/interp.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/interp.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/interp.cpp.o.d"
  "/root/repo/src/xtsoc/runtime/trace.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/trace.cpp.o.d"
  "/root/repo/src/xtsoc/runtime/value.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/value.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/value.cpp.o.d"
  "/root/repo/src/xtsoc/runtime/vm.cpp" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/vm.cpp.o" "gcc" "src/CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_oal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_xtuml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
