# Empty compiler generated dependencies file for xtsoc_runtime.
# This may be replaced when dependencies are built.
