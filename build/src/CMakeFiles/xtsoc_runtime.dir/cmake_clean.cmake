file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/database.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/database.cpp.o.d"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/executor.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/executor.cpp.o.d"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/interp.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/interp.cpp.o.d"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/trace.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/trace.cpp.o.d"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/value.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/value.cpp.o.d"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/vm.cpp.o"
  "CMakeFiles/xtsoc_runtime.dir/xtsoc/runtime/vm.cpp.o.d"
  "libxtsoc_runtime.a"
  "libxtsoc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
