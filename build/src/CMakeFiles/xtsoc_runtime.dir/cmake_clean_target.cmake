file(REMOVE_RECURSE
  "libxtsoc_runtime.a"
)
