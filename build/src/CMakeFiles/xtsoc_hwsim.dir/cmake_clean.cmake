file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/components.cpp.o"
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/components.cpp.o.d"
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/kernel.cpp.o"
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/kernel.cpp.o.d"
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/vcd.cpp.o"
  "CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/vcd.cpp.o.d"
  "libxtsoc_hwsim.a"
  "libxtsoc_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
