
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtsoc/hwsim/components.cpp" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/components.cpp.o" "gcc" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/components.cpp.o.d"
  "/root/repo/src/xtsoc/hwsim/kernel.cpp" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/kernel.cpp.o" "gcc" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/kernel.cpp.o.d"
  "/root/repo/src/xtsoc/hwsim/vcd.cpp" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/vcd.cpp.o" "gcc" "src/CMakeFiles/xtsoc_hwsim.dir/xtsoc/hwsim/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
