# Empty dependencies file for xtsoc_hwsim.
# This may be replaced when dependencies are built.
