file(REMOVE_RECURSE
  "libxtsoc_hwsim.a"
)
