file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_swrt.dir/xtsoc/swrt/scheduler.cpp.o"
  "CMakeFiles/xtsoc_swrt.dir/xtsoc/swrt/scheduler.cpp.o.d"
  "libxtsoc_swrt.a"
  "libxtsoc_swrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_swrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
