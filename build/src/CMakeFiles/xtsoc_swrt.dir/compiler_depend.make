# Empty compiler generated dependencies file for xtsoc_swrt.
# This may be replaced when dependencies are built.
