file(REMOVE_RECURSE
  "libxtsoc_swrt.a"
)
