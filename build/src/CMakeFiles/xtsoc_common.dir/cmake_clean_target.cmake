file(REMOVE_RECURSE
  "libxtsoc_common.a"
)
