file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_common.dir/xtsoc/common/diagnostics.cpp.o"
  "CMakeFiles/xtsoc_common.dir/xtsoc/common/diagnostics.cpp.o.d"
  "CMakeFiles/xtsoc_common.dir/xtsoc/common/strings.cpp.o"
  "CMakeFiles/xtsoc_common.dir/xtsoc/common/strings.cpp.o.d"
  "libxtsoc_common.a"
  "libxtsoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
