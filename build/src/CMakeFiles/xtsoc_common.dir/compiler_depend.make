# Empty compiler generated dependencies file for xtsoc_common.
# This may be replaced when dependencies are built.
