file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/archetype.cpp.o"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/archetype.cpp.o.d"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/classrefs.cpp.o"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/classrefs.cpp.o.d"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/interface.cpp.o"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/interface.cpp.o.d"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/modelcompiler.cpp.o"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/modelcompiler.cpp.o.d"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/partition.cpp.o"
  "CMakeFiles/xtsoc_mapping.dir/xtsoc/mapping/partition.cpp.o.d"
  "libxtsoc_mapping.a"
  "libxtsoc_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
