# Empty compiler generated dependencies file for xtsoc_mapping.
# This may be replaced when dependencies are built.
