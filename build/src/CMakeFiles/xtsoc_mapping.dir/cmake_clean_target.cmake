file(REMOVE_RECURSE
  "libxtsoc_mapping.a"
)
