file(REMOVE_RECURSE
  "libxtsoc_text.a"
)
