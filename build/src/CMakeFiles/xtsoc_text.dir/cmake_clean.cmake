file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_text.dir/xtsoc/text/xtm.cpp.o"
  "CMakeFiles/xtsoc_text.dir/xtsoc/text/xtm.cpp.o.d"
  "libxtsoc_text.a"
  "libxtsoc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
