# Empty compiler generated dependencies file for xtsoc_text.
# This may be replaced when dependencies are built.
