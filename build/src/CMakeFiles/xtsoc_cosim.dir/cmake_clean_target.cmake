file(REMOVE_RECURSE
  "libxtsoc_cosim.a"
)
