
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtsoc/cosim/bus.cpp" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/bus.cpp.o" "gcc" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/bus.cpp.o.d"
  "/root/repo/src/xtsoc/cosim/codec.cpp" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/codec.cpp.o" "gcc" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/codec.cpp.o.d"
  "/root/repo/src/xtsoc/cosim/cosim.cpp" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/cosim.cpp.o" "gcc" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/cosim.cpp.o.d"
  "/root/repo/src/xtsoc/cosim/hwdomain.cpp" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/hwdomain.cpp.o" "gcc" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/hwdomain.cpp.o.d"
  "/root/repo/src/xtsoc/cosim/swdomain.cpp" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/swdomain.cpp.o" "gcc" "src/CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/swdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_swrt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_marks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_oal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_xtuml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
