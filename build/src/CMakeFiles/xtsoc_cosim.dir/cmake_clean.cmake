file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/bus.cpp.o"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/bus.cpp.o.d"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/codec.cpp.o"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/codec.cpp.o.d"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/cosim.cpp.o"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/cosim.cpp.o.d"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/hwdomain.cpp.o"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/hwdomain.cpp.o.d"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/swdomain.cpp.o"
  "CMakeFiles/xtsoc_cosim.dir/xtsoc/cosim/swdomain.cpp.o.d"
  "libxtsoc_cosim.a"
  "libxtsoc_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
