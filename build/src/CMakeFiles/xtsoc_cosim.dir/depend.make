# Empty dependencies file for xtsoc_cosim.
# This may be replaced when dependencies are built.
