file(REMOVE_RECURSE
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/bytecode.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/bytecode.cpp.o.d"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/compiled.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/compiled.cpp.o.d"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/lexer.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/lexer.cpp.o.d"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/parser.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/parser.cpp.o.d"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/printer.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/printer.cpp.o.d"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/sema.cpp.o"
  "CMakeFiles/xtsoc_oal.dir/xtsoc/oal/sema.cpp.o.d"
  "libxtsoc_oal.a"
  "libxtsoc_oal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsoc_oal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
