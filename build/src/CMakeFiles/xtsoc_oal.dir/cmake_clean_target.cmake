file(REMOVE_RECURSE
  "libxtsoc_oal.a"
)
