# Empty compiler generated dependencies file for xtsoc_oal.
# This may be replaced when dependencies are built.
