
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtsoc/oal/bytecode.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/bytecode.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/bytecode.cpp.o.d"
  "/root/repo/src/xtsoc/oal/compiled.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/compiled.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/compiled.cpp.o.d"
  "/root/repo/src/xtsoc/oal/lexer.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/lexer.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/lexer.cpp.o.d"
  "/root/repo/src/xtsoc/oal/parser.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/parser.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/parser.cpp.o.d"
  "/root/repo/src/xtsoc/oal/printer.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/printer.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/printer.cpp.o.d"
  "/root/repo/src/xtsoc/oal/sema.cpp" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/sema.cpp.o" "gcc" "src/CMakeFiles/xtsoc_oal.dir/xtsoc/oal/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_xtuml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
