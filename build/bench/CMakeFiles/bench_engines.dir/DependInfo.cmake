
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_engines.cpp" "bench/CMakeFiles/bench_engines.dir/bench_engines.cpp.o" "gcc" "bench/CMakeFiles/bench_engines.dir/bench_engines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtsoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_swrt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_marks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_oal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_xtuml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtsoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
