file(REMOVE_RECURSE
  "CMakeFiles/bench_engines.dir/bench_engines.cpp.o"
  "CMakeFiles/bench_engines.dir/bench_engines.cpp.o.d"
  "bench_engines"
  "bench_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
