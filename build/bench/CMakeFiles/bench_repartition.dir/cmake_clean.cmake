file(REMOVE_RECURSE
  "CMakeFiles/bench_repartition.dir/bench_repartition.cpp.o"
  "CMakeFiles/bench_repartition.dir/bench_repartition.cpp.o.d"
  "bench_repartition"
  "bench_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
