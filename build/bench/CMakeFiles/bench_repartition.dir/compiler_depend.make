# Empty compiler generated dependencies file for bench_repartition.
# This may be replaced when dependencies are built.
