# Empty compiler generated dependencies file for bench_model_exec.
# This may be replaced when dependencies are built.
