file(REMOVE_RECURSE
  "CMakeFiles/bench_model_exec.dir/bench_model_exec.cpp.o"
  "CMakeFiles/bench_model_exec.dir/bench_model_exec.cpp.o.d"
  "bench_model_exec"
  "bench_model_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
