# Empty compiler generated dependencies file for bench_cosim.
# This may be replaced when dependencies are built.
