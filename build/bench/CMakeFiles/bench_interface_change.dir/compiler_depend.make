# Empty compiler generated dependencies file for bench_interface_change.
# This may be replaced when dependencies are built.
