file(REMOVE_RECURSE
  "CMakeFiles/bench_interface_change.dir/bench_interface_change.cpp.o"
  "CMakeFiles/bench_interface_change.dir/bench_interface_change.cpp.o.d"
  "bench_interface_change"
  "bench_interface_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interface_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
