# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xtsocc_check "/root/repo/build/tools/xtsocc" "/root/repo/examples/models/traffic.xtm" "-m" "/root/repo/examples/models/traffic.marks" "--check")
set_tests_properties(xtsocc_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_list "/root/repo/build/tools/xtsocc" "/root/repo/examples/models/traffic.xtm" "-m" "/root/repo/examples/models/traffic.marks")
set_tests_properties(xtsocc_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_emit "/root/repo/build/tools/xtsocc" "/root/repo/examples/models/traffic.xtm" "-m" "/root/repo/examples/models/traffic.marks" "-o" "/root/repo/build/xtsocc_out")
set_tests_properties(xtsocc_emit PROPERTIES  FIXTURES_SETUP "xtsocc_out" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_badfile "/root/repo/build/tools/xtsocc" "/nonexistent.xtm")
set_tests_properties(xtsocc_badfile PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_nomodel "/root/repo/build/tools/xtsocc")
set_tests_properties(xtsocc_nomodel PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_simulate "/root/repo/build/tools/xtsocc" "/root/repo/examples/models/traffic.xtm" "-m" "/root/repo/examples/models/traffic.marks" "--quiet" "--simulate" "/root/repo/examples/models/traffic.sim")
set_tests_properties(xtsocc_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_simulate_cosim "/root/repo/build/tools/xtsocc" "/root/repo/examples/models/traffic.xtm" "-m" "/root/repo/examples/models/traffic.marks" "--quiet" "--simulate" "/root/repo/examples/models/traffic.sim" "--on-cosim")
set_tests_properties(xtsocc_simulate_cosim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xtsocc_emitted_c_compiles "sh" "-c" "cd /root/repo/build/xtsocc_out/sw && cc -std=c99 -Wall -Werror -c traffic_model.c traffic_main.c")
set_tests_properties(xtsocc_emitted_c_compiles PROPERTIES  FIXTURES_REQUIRED "xtsocc_out" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
