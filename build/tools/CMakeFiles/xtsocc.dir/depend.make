# Empty dependencies file for xtsocc.
# This may be replaced when dependencies are built.
