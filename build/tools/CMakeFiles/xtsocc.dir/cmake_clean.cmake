file(REMOVE_RECURSE
  "CMakeFiles/xtsocc.dir/xtsocc.cpp.o"
  "CMakeFiles/xtsocc.dir/xtsocc.cpp.o.d"
  "xtsocc"
  "xtsocc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtsocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
