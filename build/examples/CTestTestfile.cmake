# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microwave "/root/repo/build/examples/microwave")
set_tests_properties(example_microwave PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_filter "/root/repo/build/examples/packet_filter")
set_tests_properties(example_packet_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_light "/root/repo/build/examples/traffic_light")
set_tests_properties(example_traffic_light PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thermostat_bridge "/root/repo/build/examples/thermostat_bridge")
set_tests_properties(example_thermostat_bridge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
