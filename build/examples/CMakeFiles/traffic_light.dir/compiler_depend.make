# Empty compiler generated dependencies file for traffic_light.
# This may be replaced when dependencies are built.
