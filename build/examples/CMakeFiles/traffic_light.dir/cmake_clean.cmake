file(REMOVE_RECURSE
  "CMakeFiles/traffic_light.dir/traffic_light.cpp.o"
  "CMakeFiles/traffic_light.dir/traffic_light.cpp.o.d"
  "traffic_light"
  "traffic_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
