file(REMOVE_RECURSE
  "CMakeFiles/thermostat_bridge.dir/thermostat_bridge.cpp.o"
  "CMakeFiles/thermostat_bridge.dir/thermostat_bridge.cpp.o.d"
  "thermostat_bridge"
  "thermostat_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermostat_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
