# Empty dependencies file for thermostat_bridge.
# This may be replaced when dependencies are built.
