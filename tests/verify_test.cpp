#include <gtest/gtest.h>

#include <algorithm>

#include "test_models.hpp"
#include "xtsoc/perf/perf.hpp"
#include "xtsoc/perf/traceexport.hpp"
#include "xtsoc/verify/equivalence.hpp"
#include "xtsoc/verify/testcase.hpp"

namespace xtsoc::verify {
namespace {

using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

marks::MarkSet hw_consumer_marks() {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_domain_mark(marks::kBusLatency, ScalarValue(std::int64_t{3}));
  return m;
}

TestCase pipeline_test(int kicks) {
  TestCase t;
  t.name = "pipeline";
  t.population = {
      {"cns", "Consumer", {}},
      {"prd", "Producer", {{"sink", RefByName{"cns"}}}},
  };
  // Pace the kicks so each round trip finishes before the next kick
  // (see DESIGN.md on multi-sender races being model bugs, not tool bugs).
  for (int i = 0; i < kicks; ++i) {
    t.stimuli.push_back({"prd", "kick", {}, static_cast<std::uint64_t>(i) * 100});
  }
  int total = kicks * (kicks + 1) / 2;
  t.expect_attrs = {
      {"prd", "sent", Value(static_cast<std::int64_t>(kicks))},
      {"prd", "acks", Value(static_cast<std::int64_t>(kicks))},
      {"cns", "total", Value(static_cast<std::int64_t>(total))},
  };
  t.expect_states = {{"prd", "Waiting"}, {"cns", "Ready"}};
  return t;
}

// --- AbstractRunner --------------------------------------------------------------

TEST(AbstractRunner, PassingCase) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  RunReport r = runner.run(pipeline_test(3));
  EXPECT_TRUE(r.passed) << r.to_string();
  EXPECT_EQ(r.dispatches, 9u);  // 3 x (kick, work, done)
}

TEST(AbstractRunner, WrongAttrExpectationFails) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  TestCase t = pipeline_test(1);
  t.expect_attrs[2].value = Value(std::int64_t{99});
  RunReport r = runner.run(t);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.to_string().find("cns.total"), std::string::npos);
}

TEST(AbstractRunner, WrongStateExpectationFails) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  TestCase t = pipeline_test(1);
  t.expect_states = {{"prd", "Idle"}};
  EXPECT_FALSE(runner.run(t).passed);
}

TEST(AbstractRunner, UnknownNamesReported) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  TestCase t;
  t.population = {{"a", "Consumer", {{"nope", Value(std::int64_t{1})}}}};
  t.stimuli = {{"ghost", "kick", {}, 0}};
  t.expect_attrs = {{"ghost", "x", Value(std::int64_t{0})}};
  t.expect_states = {{"a", "NoSuchState"}};
  RunReport r = runner.run(t);
  EXPECT_FALSE(r.passed);
  EXPECT_GE(r.failures.size(), 4u);
}

TEST(AbstractRunner, DuplicatePopulationNameReported) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  TestCase t;
  t.population = {{"a", "Consumer", {}}, {"a", "Consumer", {}}};
  EXPECT_FALSE(runner.run(t).passed);
}

TEST(AbstractRunner, ForwardReferenceInPopulation) {
  // prd references cns which is declared AFTER it: two-pass creation.
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  TestCase t;
  t.population = {
      {"prd", "Producer", {{"sink", RefByName{"cns"}}}},
      {"cns", "Consumer", {}},
  };
  t.stimuli = {{"prd", "kick", {}, 0}};
  t.expect_attrs = {{"cns", "total", Value(std::int64_t{1})}};
  EXPECT_TRUE(runner.run(t).passed);
}

TEST(AbstractRunner, ExpectedLogsChecked) {
  xtuml::DomainBuilder b("LogD");
  b.cls("A")
      .event("go")
      .state("S0")
      .state("S1", "log \"hello\";")
      .transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto compiled = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(compiled, nullptr);
  AbstractRunner runner(*compiled);
  TestCase t;
  t.population = {{"a", "A", {}}};
  t.stimuli = {{"a", "go", {}, 0}};
  t.expect_logs = {"hello"};
  EXPECT_TRUE(runner.run(t).passed);
  t.expect_logs = {"goodbye"};
  EXPECT_FALSE(runner.run(t).passed);
}

// --- CosimRunner & conformance -----------------------------------------------------

TEST(CosimRunner, SameTestPassesPartitioned) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  CosimRunner runner(*fx.system);
  RunReport r = runner.run(pipeline_test(3));
  EXPECT_TRUE(r.passed) << r.to_string();
}

TEST(Conformance, AbstractAndPartitionedAgree) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  ConformanceReport cr =
      run_conformance(*fx.compiled, *fx.system, pipeline_test(4));
  EXPECT_TRUE(cr.abstract_run.passed) << cr.abstract_run.to_string();
  EXPECT_TRUE(cr.cosim_run.passed) << cr.cosim_run.to_string();
  EXPECT_TRUE(cr.equivalence.equivalent) << cr.equivalence.to_string();
  EXPECT_GE(cr.equivalence.instances_checked, 2u);
}

// Property sweep: conformance holds for every partition of the pipeline.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, EveryPartitionPreservesBehaviour) {
  int mask = GetParam();  // bit 0: Consumer hw, bit 1: Producer hw
  marks::MarkSet m;
  if (mask & 1) m.mark_hardware("Consumer");
  if (mask & 2) m.mark_hardware("Producer");
  MappedFixture fx(make_pipeline_domain(), std::move(m));
  ConformanceReport cr =
      run_conformance(*fx.compiled, *fx.system, pipeline_test(3));
  EXPECT_TRUE(cr.passed())
      << cr.abstract_run.to_string() << '\n'
      << cr.cosim_run.to_string() << '\n'
      << cr.equivalence.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, PartitionSweep,
                         ::testing::Values(0, 1, 2, 3));

// --- equivalence internals -----------------------------------------------------------

TEST(Equivalence, SignatureIgnoresTiming) {
  runtime::Trace a, b;
  runtime::InstanceHandle h{ClassId(0), 0, 0};
  runtime::TraceEvent e;
  e.kind = runtime::TraceKind::kDispatch;
  e.subject = h;
  e.event = EventId(1);
  e.tick = 5;
  a.record(e);
  e.tick = 500;  // same semantic event, different time
  b.record(e);
  EXPECT_EQ(projection_signature(a, h), projection_signature(b, h));
}

TEST(Equivalence, DetectsDivergence) {
  runtime::Trace a, b;
  runtime::InstanceHandle h{ClassId(0), 0, 0};
  runtime::TraceEvent e;
  e.kind = runtime::TraceKind::kDispatch;
  e.subject = h;
  e.event = EventId(1);
  a.record(e);
  e.event = EventId(2);
  b.record(e);
  auto report = compare_executions(a, {&b});
  EXPECT_FALSE(report.equivalent);
  EXPECT_EQ(report.mismatches.size(), 1u);
}

TEST(Equivalence, SendsExcludedFromSignature) {
  runtime::Trace a;
  runtime::InstanceHandle h{ClassId(0), 0, 0};
  runtime::TraceEvent e;
  e.kind = runtime::TraceKind::kSend;
  e.subject = h;
  e.event = EventId(1);
  a.record(e);
  EXPECT_TRUE(projection_signature(a, h).empty());
}

TEST(FinalStates, AgreesAfterConformingRun) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  TestCase t = pipeline_test(3);
  AbstractRunner abs(*fx.compiled);
  abs.run(t);
  CosimRunner part(*fx.system);
  part.run(t);
  auto finals = compare_final_states(
      abs.executor().database(), {&part.cosim().hw_executor().database(),
                                  &part.cosim().sw_executor().database()});
  EXPECT_TRUE(finals.equivalent) << finals.to_string();
  EXPECT_GE(finals.instances_checked, 2u);
}

TEST(FinalStates, DetectsAttrDivergence) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  TestCase t = pipeline_test(2);
  AbstractRunner a(*fx.compiled);
  a.run(t);
  AbstractRunner b(*fx.compiled);
  b.run(t);
  // Corrupt one attribute in run b.
  auto consumers =
      b.executor().database().all_of(fx.domain->find_class_id("Consumer"));
  ASSERT_FALSE(consumers.empty());
  b.executor().database().set_attr(consumers[0], AttributeId(0),
                                   Value(std::int64_t{999}));
  auto finals = compare_final_states(a.executor().database(),
                                     {&b.executor().database()});
  EXPECT_FALSE(finals.equivalent);
  EXPECT_FALSE(finals.mismatches.empty());
}

TEST(FinalStates, DetectsPopulationDivergence) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  TestCase t = pipeline_test(1);
  AbstractRunner a(*fx.compiled);
  a.run(t);
  AbstractRunner b(*fx.compiled);
  b.run(t);
  b.executor().create("Consumer");  // extra instance
  auto finals = compare_final_states(a.executor().database(),
                                     {&b.executor().database()});
  EXPECT_FALSE(finals.equivalent);
  EXPECT_NE(finals.to_string().find("populations differ"), std::string::npos);
}

TEST(FinalStates, DetectsStateDivergence) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner a(*fx.compiled);
  AbstractRunner b(*fx.compiled);
  TestCase setup;
  setup.population = {{"p", "Producer", {}}};
  a.run(setup);
  b.run(setup);
  auto producers =
      b.executor().database().all_of(fx.domain->find_class_id("Producer"));
  b.executor().database().set_state(producers[0], StateId(1));
  auto finals = compare_final_states(a.executor().database(),
                                     {&b.executor().database()});
  EXPECT_FALSE(finals.equivalent);
  EXPECT_NE(finals.to_string().find("final state differs"), std::string::npos);
}

TEST(Causality, SendBeforeDispatchOk) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  runner.run(pipeline_test(3));
  std::string err;
  EXPECT_TRUE(check_causality(runner.executor().trace(), &err)) << err;
}

TEST(Causality, DispatchWithoutSendDetected) {
  runtime::Trace t;
  runtime::InstanceHandle h{ClassId(0), 0, 0};
  runtime::TraceEvent e;
  e.kind = runtime::TraceKind::kDispatch;
  e.subject = h;
  e.event = EventId(0);
  t.record(e);
  std::string err;
  EXPECT_FALSE(check_causality(t, &err));
  EXPECT_FALSE(err.empty());
}

// --- perf ------------------------------------------------------------------------------

TEST(Perf, MeasureCountsPartitionActivity) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  CosimRunner runner(*fx.system);
  runner.run(pipeline_test(5));
  perf::PerfReport r = perf::measure(runner.cosim());
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.hw_dispatches, 5u);   // Consumer.work x5 in hardware
  EXPECT_EQ(r.sw_dispatches, 10u);  // kick + done x5 in software
  EXPECT_EQ(r.bus_frames, 10u);     // 5 work + 5 done crossed the bus
  EXPECT_GT(r.bus_bytes, 0u);
  ASSERT_EQ(r.classes.size(), 2u);
  std::string table = r.to_table();
  EXPECT_NE(table.find("Consumer"), std::string::npos);
  EXPECT_NE(table.find("hardware"), std::string::npos);
}

TEST(Perf, AdvisorSuggestsBusiestSoftwareClass) {
  MappedFixture fx(make_pipeline_domain(), marks::MarkSet{});
  CosimRunner runner(*fx.system);
  runner.run(pipeline_test(5));
  perf::PerfReport r = perf::measure(runner.cosim());
  perf::RepartitionAdvice advice = perf::suggest_repartition(r);
  ASSERT_TRUE(advice.has_suggestion);
  EXPECT_EQ(advice.move_to, marks::Target::kHardware);
  // Producer handles kick+done (10), Consumer handles work (5).
  EXPECT_EQ(advice.class_name, "Producer");
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(Perf, ChromeTraceExport) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  AbstractRunner runner(*fx.compiled);
  runner.run(pipeline_test(2));
  std::string json = perf::export_chrome_trace(runner.executor().trace(),
                                               *fx.domain, "abstract");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("Producer#"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"to_state\":\"Waiting\""), std::string::npos);
  // Balanced JSON punctuation (cheap structural sanity).
  auto count = [&](char c) {
    return std::count(json.begin(), json.end(), c);
  };
  EXPECT_EQ(count('{'), count('}'));
  EXPECT_EQ(count('['), count(']'));
}

TEST(Perf, ChromeTraceEscapesSpecials) {
  runtime::Trace t;
  runtime::TraceEvent e;
  e.kind = runtime::TraceKind::kLog;
  e.subject = runtime::InstanceHandle::null();
  e.text = "say \"hi\"\nback\\slash";
  t.record(e);
  xtuml::Domain d("D");
  std::string json = perf::export_chrome_trace(t, d, "p");
  EXPECT_NE(json.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
}

TEST(Perf, AdvisorSuggestsReclaimingIdleHardware) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  CosimRunner runner(*fx.system);
  TestCase t;  // no stimuli: nothing runs anywhere
  t.population = {{"cns", "Consumer", {}}};
  runner.run(t);
  perf::PerfReport r = perf::measure(runner.cosim());
  perf::RepartitionAdvice advice = perf::suggest_repartition(r);
  ASSERT_TRUE(advice.has_suggestion);
  EXPECT_EQ(advice.move_to, marks::Target::kSoftware);
  EXPECT_EQ(advice.class_name, "Consumer");
}

}  // namespace
}  // namespace xtsoc::verify
