#include <gtest/gtest.h>

#include "xtsoc/marks/marks.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::marks {
namespace {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::ScalarValue;

Domain make_domain() {
  DomainBuilder b("Soc");
  b.cls("Compressor", "CMP").attr("ratio", DataType::kInt);
  b.cls("Controller", "CTL").attr("mode", DataType::kInt);
  return std::move(*b.take());
}

TEST(MarkSet, UnmarkedClassIsSoftware) {
  MarkSet m;
  EXPECT_EQ(m.target_of("Compressor"), Target::kSoftware);
  EXPECT_FALSE(m.is_hardware("Compressor"));
}

TEST(MarkSet, IsHardwareMarkFlipsTarget) {
  MarkSet m;
  m.mark_hardware("Compressor");
  EXPECT_EQ(m.target_of("Compressor"), Target::kHardware);
  m.mark_hardware("Compressor", false);
  EXPECT_EQ(m.target_of("Compressor"), Target::kSoftware);
}

TEST(MarkSet, MarksDoNotPolluteTheModel) {
  // The model and the marks are separate artifacts: marking a class does
  // not modify the Domain in any way (the paper's "sticky notes" property).
  Domain d = make_domain();
  MarkSet m;
  m.mark_hardware("Compressor");
  EXPECT_EQ(d.find_class("Compressor")->attributes.size(), 1u);
  // Nothing in ClassDef knows about marks — this is a compile-time property
  // of the types, asserted here for documentation.
}

TEST(MarkSet, ClassAndDomainScopesSeparate) {
  MarkSet m;
  m.set_domain_mark(kBusLatency, ScalarValue(std::int64_t{7}));
  m.set_class_mark("A", kClockDomain, ScalarValue(std::int64_t{2}));
  EXPECT_EQ(m.domain_mark_int(kBusLatency, 0), 7);
  EXPECT_EQ(m.class_mark_int("A", kClockDomain, 0), 2);
  EXPECT_FALSE(m.class_mark("A", kBusLatency).has_value());
  EXPECT_FALSE(m.domain_mark(kClockDomain).has_value());
}

TEST(MarkSet, IntFallbacks) {
  MarkSet m;
  EXPECT_EQ(m.class_mark_int("A", kIntWidth, 32), 32);
  m.set_class_mark("A", kIntWidth, ScalarValue(std::int64_t{16}));
  EXPECT_EQ(m.class_mark_int("A", kIntWidth, 32), 16);
  // wrong type -> fallback
  m.set_class_mark("B", kIntWidth, ScalarValue(true));
  EXPECT_EQ(m.class_mark_int("B", kIntWidth, 32), 32);
}

TEST(MarkSet, ClearMark) {
  MarkSet m;
  m.mark_hardware("A");
  EXPECT_EQ(m.mark_count(), 1u);
  m.clear_class_mark("A", kIsHardware);
  EXPECT_EQ(m.mark_count(), 0u);
  EXPECT_FALSE(m.is_hardware("A"));
}

TEST(MarkDiff, RepartitionIsOneChange) {
  // The paper's headline: "Changing the partition is a matter of changing
  // the placement of the marks."
  MarkSet before;
  before.mark_hardware("Compressor");
  before.set_class_mark("Compressor", kClockDomain, ScalarValue(std::int64_t{1}));

  MarkSet after = before;
  after.mark_hardware("Compressor", false);  // move to software

  MarkDiff d = MarkSet::diff(before, after);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.changes[0].element, "Compressor");
  EXPECT_EQ(d.changes[0].key, kIsHardware);
  EXPECT_EQ(std::get<bool>(*d.changes[0].before), true);
  EXPECT_EQ(std::get<bool>(*d.changes[0].after), false);
}

TEST(MarkDiff, AddAndRemove) {
  MarkSet a, b;
  a.set_class_mark("X", kPriority, ScalarValue(std::int64_t{1}));
  b.set_class_mark("Y", kPriority, ScalarValue(std::int64_t{2}));
  MarkDiff d = MarkSet::diff(a, b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.changes[0].after.has_value());  // X removed
  EXPECT_FALSE(d.changes[1].before.has_value()); // Y added
}

TEST(MarkDiff, IdenticalSetsEmptyDiff) {
  MarkSet a;
  a.mark_hardware("A");
  EXPECT_TRUE(MarkSet::diff(a, a).empty());
}

TEST(MarkSet, TextRoundTrip) {
  MarkSet m;
  m.mark_hardware("Compressor");
  m.set_class_mark("Compressor", kClockDomain, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Controller", kPriority, ScalarValue(std::int64_t{3}));
  m.set_domain_mark(kBusLatency, ScalarValue(std::int64_t{8}));

  std::string text = m.to_text();
  DiagnosticSink sink;
  MarkSet back = MarkSet::from_text(text, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_EQ(back, m);
}

TEST(MarkSet, FromTextParsesKindsAndComments) {
  DiagnosticSink sink;
  MarkSet m = MarkSet::from_text(
      "# partition file\n"
      "Compressor.isHardware = true\n"
      "domain.busLatency = 12\n"
      "Compressor.label = \"fast path\"\n"
      "Compressor.gain = 1.5\n"
      "\n",
      sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_TRUE(m.is_hardware("Compressor"));
  EXPECT_EQ(m.domain_mark_int(kBusLatency, 0), 12);
  EXPECT_EQ(std::get<std::string>(*m.class_mark("Compressor", "label")),
            "fast path");
  EXPECT_DOUBLE_EQ(std::get<double>(*m.class_mark("Compressor", "gain")), 1.5);
}

TEST(MarkSet, FromTextReportsBadLines) {
  DiagnosticSink sink;
  MarkSet::from_text("no equals sign\n", sink);
  EXPECT_TRUE(sink.has_errors());
  sink.clear();
  MarkSet::from_text("noDot = 3\n", sink);
  EXPECT_TRUE(sink.has_errors());
  sink.clear();
  MarkSet::from_text("A.k = notavalue\n", sink);
  EXPECT_TRUE(sink.has_errors());
  sink.clear();
  MarkSet::from_text("A.k = \"unterminated\n", sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Validate, AcceptsGoodMarks) {
  Domain d = make_domain();
  MarkSet m;
  m.mark_hardware("Compressor");
  m.set_class_mark("Compressor", kClockDomain, ScalarValue(std::int64_t{0}));
  m.set_domain_mark(kBusLatency, ScalarValue(std::int64_t{4}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
}

TEST(Validate, UnknownClassRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.mark_hardware("Nope");
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
}

TEST(Validate, WrongTypeRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", kIsHardware, ScalarValue(std::int64_t{1}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
}

TEST(Validate, WrongScopeRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.set_domain_mark(kIsHardware, ScalarValue(true));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));

  sink.clear();
  MarkSet m2;
  m2.set_class_mark("Compressor", kBusLatency, ScalarValue(std::int64_t{1}));
  EXPECT_FALSE(m2.validate(d, sink));
}

TEST(Validate, IntWidthRange) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", kIntWidth, ScalarValue(std::int64_t{65}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  sink.clear();
  MarkSet m2;
  m2.set_class_mark("Compressor", kIntWidth, ScalarValue(std::int64_t{0}));
  EXPECT_FALSE(m2.validate(d, sink));
  sink.clear();
  MarkSet m3;
  m3.set_class_mark("Compressor", kIntWidth, ScalarValue(std::int64_t{16}));
  EXPECT_TRUE(m3.validate(d, sink)) << sink.to_string();
}

TEST(Validate, BusLatencyMustBeNonNegative) {
  Domain d = make_domain();
  // 0 is legal: it degrades the windowed co-simulation to per-cycle
  // lockstep. Negative would mean delivery into the past.
  MarkSet m;
  m.set_domain_mark(kBusLatency, ScalarValue(std::int64_t{0}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();

  MarkSet m2;
  m2.set_domain_mark(kBusLatency, ScalarValue(std::int64_t{-1}));
  sink.clear();
  EXPECT_FALSE(m2.validate(d, sink));
  EXPECT_NE(sink.to_string().find("bus_latency"), std::string::npos);
}

TEST(Validate, LinkLatencyMustBePositive) {
  Domain d = make_domain();
  MarkSet m;
  m.set_domain_mark(kLinkLatency, ScalarValue(std::int64_t{0}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("link_latency"), std::string::npos);

  MarkSet m2;
  m2.set_domain_mark(kLinkLatency, ScalarValue(std::int64_t{-3}));
  sink.clear();
  EXPECT_FALSE(m2.validate(d, sink));

  MarkSet m3;
  m3.set_domain_mark(kLinkLatency, ScalarValue(std::int64_t{2}));
  sink.clear();
  EXPECT_TRUE(m3.validate(d, sink)) << sink.to_string();
}

TEST(Validate, NearMissKeyWarns) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", "ishardware", ScalarValue(true));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink));  // warning, not error
  EXPECT_NE(sink.to_string().find("near_miss"), std::string::npos);
}

TEST(Validate, UnknownKeyAllowed) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", "customVendorHint", ScalarValue(std::int64_t{9}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
  EXPECT_TRUE(sink.all().empty());
}

// --- NoC placement marks --------------------------------------------------------

MarkSet placed(const char* cls, std::int64_t x, std::int64_t y) {
  MarkSet m;
  m.mark_hardware(cls);
  m.set_class_mark(cls, kTileX, ScalarValue(x));
  m.set_class_mark(cls, kTileY, ScalarValue(y));
  return m;
}

TEST(Validate, GoodMeshPlacementAccepted) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 1, 1);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{2}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
}

TEST(Validate, TileKeyTyposWarn) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", "tilex", ScalarValue(std::int64_t{1}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink));  // warning, not error
  EXPECT_NE(sink.to_string().find("near_miss"), std::string::npos);

  sink.clear();
  MarkSet m2;
  m2.set_domain_mark("meshwidth", ScalarValue(std::int64_t{2}));
  EXPECT_TRUE(m2.validate(d, sink));
  EXPECT_NE(sink.to_string().find("near_miss"), std::string::npos);
}

TEST(Validate, TileScopeAndTypeEnforced) {
  Domain d = make_domain();
  MarkSet m;
  m.set_domain_mark(kTileX, ScalarValue(std::int64_t{1}));  // class-scope key
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));

  sink.clear();
  MarkSet m2;
  m2.set_class_mark("Compressor", kMeshWidth,
                    ScalarValue(std::int64_t{2}));  // domain-scope key
  EXPECT_FALSE(m2.validate(d, sink));

  sink.clear();
  MarkSet m3 = placed("Compressor", 0, 0);
  m3.set_class_mark("Compressor", kTileX, ScalarValue(true));  // wrong type
  EXPECT_FALSE(m3.validate(d, sink));
}

TEST(Validate, TileXWithoutTileYRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.mark_hardware("Compressor");
  m.set_class_mark("Compressor", kTileX, ScalarValue(std::int64_t{1}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("tile_pair"), std::string::npos);
}

TEST(Validate, OutOfRangeTileRejected) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 5, 0);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{2}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("tile_range"), std::string::npos);

  sink.clear();
  MarkSet neg = placed("Compressor", -1, 0);
  EXPECT_FALSE(neg.validate(d, sink));
  EXPECT_NE(sink.to_string().find("tile_range"), std::string::npos);
}

TEST(Validate, MeshDimensionsBounded) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 0, 1);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{65}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("mesh_dims"), std::string::npos);
}

TEST(Validate, HardwareOnSoftwareTileRejected) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 0, 0);  // software tile defaults to (0,0)
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{2}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("tile_clash"), std::string::npos);
}

TEST(Validate, UnplacedHardwareClassRejectedOnceMeshInPlay) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 1, 0);
  m.mark_hardware("Controller");  // hardware but no tileX/tileY
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("tile_missing"), std::string::npos);
}

TEST(Validate, TileMarksOnSoftwareClassWarn) {
  Domain d = make_domain();
  MarkSet m;  // Compressor stays software but is "placed"
  m.set_class_mark("Compressor", kTileX, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Compressor", kTileY, ScalarValue(std::int64_t{0}));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink));  // warning, not error
  EXPECT_NE(sink.to_string().find("tile_sw"), std::string::npos);
}

// --- topology / routing marks -----------------------------------------------

TEST(Validate, TopologyAndRoutingAreDomainStrings) {
  Domain d = make_domain();
  MarkSet m;
  m.set_class_mark("Compressor", kTopology, ScalarValue(std::string("torus")));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("domain mark"), std::string::npos);

  sink.clear();
  MarkSet m2;
  m2.set_domain_mark(kRouting, ScalarValue(std::int64_t{1}));
  EXPECT_FALSE(m2.validate(d, sink));
  EXPECT_NE(sink.to_string().find("must be a string"), std::string::npos);
}

TEST(Validate, UnknownTopologyValueRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.set_domain_mark(kTopology, ScalarValue(std::string("hypercube")));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.topology"), std::string::npos);
  EXPECT_NE(sink.to_string().find("hypercube"), std::string::npos);
}

TEST(Validate, UnknownRoutingValueRejected) {
  Domain d = make_domain();
  MarkSet m;
  m.set_domain_mark(kRouting, ScalarValue(std::string("odd-even")));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.routing"), std::string::npos);
}

TEST(Validate, RingNeedsSingleRow) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 1, 1);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kTopology, ScalarValue(std::string("ring")));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("ring topology is one row"),
            std::string::npos);

  // The same check reads the placement bounding box when dimensions are
  // implicit: a class placed at y=1 forces two rows.
  sink.clear();
  MarkSet m2 = placed("Compressor", 0, 1);
  m2.set_domain_mark(kTopology, ScalarValue(std::string("ring")));
  EXPECT_FALSE(m2.validate(d, sink));
  EXPECT_NE(sink.to_string().find("ring topology is one row"),
            std::string::npos);
}

TEST(Validate, TorusNeedsBothDimensions) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 3, 0);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{4}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{1}));
  m.set_domain_mark(kTopology, ScalarValue(std::string("torus")));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("a single wrapped row is a ring"),
            std::string::npos);
}

TEST(Validate, AdaptiveRoutingExcludesNocFaultInjection) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 1, 1);
  m.set_domain_mark(kRouting, ScalarValue(std::string("adaptive")));
  m.set_domain_mark(kFaultRateFlitDrop, ScalarValue(0.01));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("adaptive"), std::string::npos);

  // Rate 0 is explicitly fine: the plan never fires on the fabric.
  sink.clear();
  MarkSet m2 = placed("Compressor", 1, 1);
  m2.set_domain_mark(kRouting, ScalarValue(std::string("adaptive")));
  m2.set_domain_mark(kFaultRateFlitDrop, ScalarValue(0.0));
  EXPECT_TRUE(m2.validate(d, sink)) << sink.to_string();
}

TEST(Validate, GoodTopologyRoutingCombosAccepted) {
  Domain d = make_domain();
  {
    MarkSet m = placed("Compressor", 1, 1);
    m.set_domain_mark(kTopology, ScalarValue(std::string("torus")));
    m.set_domain_mark(kRouting, ScalarValue(std::string("yx")));
    DiagnosticSink sink;
    EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
  }
  {
    MarkSet m = placed("Compressor", 3, 0);
    m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{4}));
    m.set_domain_mark(kTopology, ScalarValue(std::string("ring")));
    DiagnosticSink sink;
    EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
  }
  {
    // Bus-only model (no mesh described): the marks are legal, just inert
    // until a placement appears.
    MarkSet m;
    m.set_domain_mark(kTopology, ScalarValue(std::string("torus")));
    DiagnosticSink sink;
    EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
  }
}

// --- memory-hierarchy marks -------------------------------------------------

/// A placed hardware class plus a DRAM edge on the free tile of a 2x2 mesh
/// (software at (0,0), Compressor at (1,1), DRAM at tile 1) — the minimal
/// legal memory-marked platform the negative tests below perturb.
MarkSet mem_marked() {
  MarkSet m = placed("Compressor", 1, 1);
  m.set_domain_mark(kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMeshHeight, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kDramTile, ScalarValue(std::int64_t{1}));
  return m;
}

TEST(Validate, GoodMemoryMarksAccepted) {
  Domain d = make_domain();
  MarkSet m = mem_marked();
  m.set_domain_mark(kCacheSets, ScalarValue(std::int64_t{8}));
  m.set_domain_mark(kCacheWays, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kCacheLineBytes, ScalarValue(std::int64_t{64}));
  m.set_domain_mark(kCacheHitLatency, ScalarValue(std::int64_t{1}));
  m.set_domain_mark(kDramTRcd, ScalarValue(std::int64_t{3}));
  m.set_domain_mark(kDramTCas, ScalarValue(std::int64_t{3}));
  m.set_domain_mark(kDramTRp, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(kMemWriteFraction, ScalarValue(0.25));
  DiagnosticSink sink;
  EXPECT_TRUE(m.validate(d, sink)) << sink.to_string();
}

TEST(Validate, CacheGeometryMustBePowerOfTwo) {
  Domain d = make_domain();
  for (const char* key : {kCacheSets, kCacheWays, kCacheLineBytes}) {
    MarkSet m = mem_marked();
    m.set_domain_mark(key, ScalarValue(std::int64_t{48}));
    DiagnosticSink sink;
    EXPECT_FALSE(m.validate(d, sink)) << key;
    EXPECT_NE(sink.to_string().find("marks.cache.pow2"), std::string::npos)
        << key;
  }
  // Zero and negative are not powers of two either.
  MarkSet m = mem_marked();
  m.set_domain_mark(kCacheSets, ScalarValue(std::int64_t{0}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.cache.pow2"), std::string::npos);
}

TEST(Validate, HitLatencyAtLeastOneCycle) {
  Domain d = make_domain();
  MarkSet m = mem_marked();
  m.set_domain_mark(kCacheHitLatency, ScalarValue(std::int64_t{0}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.cache.range"), std::string::npos);
}

TEST(Validate, CacheMarksWithoutDramTileRejected) {
  Domain d = make_domain();
  MarkSet m = placed("Compressor", 1, 1);
  m.set_domain_mark(kCacheSets, ScalarValue(std::int64_t{8}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.dram.missing_tile"),
            std::string::npos);
}

TEST(Validate, DramTileNeedsMeshPlacement) {
  Domain d = make_domain();
  MarkSet m;  // no tileX/tileY anywhere: bus-only model
  m.set_domain_mark(kDramTile, ScalarValue(std::int64_t{1}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.dram.requires_mesh"),
            std::string::npos);
}

TEST(Validate, DramTimingMustBePositive) {
  Domain d = make_domain();
  for (const char* key : {kDramTRcd, kDramTCas, kDramTRp}) {
    MarkSet m = mem_marked();
    m.set_domain_mark(key, ScalarValue(std::int64_t{0}));
    DiagnosticSink sink;
    EXPECT_FALSE(m.validate(d, sink)) << key;
    EXPECT_NE(sink.to_string().find("marks.dram.range"), std::string::npos)
        << key;
  }
}

TEST(Validate, DramTileOutsideMeshRejected) {
  Domain d = make_domain();
  MarkSet m = mem_marked();
  m.set_domain_mark(kDramTile, ScalarValue(std::int64_t{4}));  // 2x2 has 0..3
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("[marks.dram.tile]"), std::string::npos)
      << sink.to_string();

  sink.clear();
  MarkSet neg = mem_marked();
  neg.set_domain_mark(kDramTile, ScalarValue(std::int64_t{-1}));
  EXPECT_FALSE(neg.validate(d, sink));
}

TEST(Validate, DramTileMustBeUnoccupied) {
  Domain d = make_domain();
  // Tile 3 is Compressor's tile in the 2x2 placement.
  MarkSet m = mem_marked();
  m.set_domain_mark(kDramTile, ScalarValue(std::int64_t{3}));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.dram.tile_clash"), std::string::npos);
  EXPECT_NE(sink.to_string().find("Compressor"), std::string::npos);

  // Tile 0 is the software tile by default.
  sink.clear();
  MarkSet sw = mem_marked();
  sw.set_domain_mark(kDramTile, ScalarValue(std::int64_t{0}));
  EXPECT_FALSE(sw.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.dram.tile_clash"), std::string::npos);
  EXPECT_NE(sink.to_string().find("software tile"), std::string::npos);
}

TEST(Validate, WriteFractionIsAProbability) {
  Domain d = make_domain();
  MarkSet m = mem_marked();
  m.set_domain_mark(kMemWriteFraction, ScalarValue(1.5));
  DiagnosticSink sink;
  EXPECT_FALSE(m.validate(d, sink));
  EXPECT_NE(sink.to_string().find("marks.mem.write_fraction"),
            std::string::npos);

  sink.clear();
  MarkSet neg = mem_marked();
  neg.set_domain_mark(kMemWriteFraction, ScalarValue(-0.1));
  EXPECT_FALSE(neg.validate(d, sink));

  // Integer 0 and 1 are legal probabilities (marks files write them bare).
  sink.clear();
  MarkSet ok = mem_marked();
  ok.set_domain_mark(kMemWriteFraction, ScalarValue(std::int64_t{1}));
  EXPECT_TRUE(ok.validate(d, sink)) << sink.to_string();
}

}  // namespace
}  // namespace xtsoc::marks
