// Multi-domain systems and bridges: the "integration problem" of the
// paper's reference [2] (MDA Distilled), executable.

#include <gtest/gtest.h>

#include "xtsoc/bridge/bridge.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::bridge {
namespace {

using runtime::ModelError;
using runtime::Value;
using xtuml::DataType;
using xtuml::DomainBuilder;

/// Application domain: a Thermostat that asks an (external) heater service
/// to heat, via the HeaterProxy. The proxy is a pure external entity: no
/// state machine, just events other classes may signal.
std::unique_ptr<xtuml::Domain> make_app_domain() {
  DomainBuilder b("App");
  b.cls("HeaterProxy").event("heat_request", {{"watts", DataType::kInt}});
  b.cls("Thermostat")
      .attr("setpoint", DataType::kInt, xtuml::ScalarValue(std::int64_t{21}))
      .attr("confirmed", DataType::kInt)
      .ref_attr("heater", "HeaterProxy")
      .event("too_cold", {{"delta", DataType::kInt}})
      .event("heating_started")
      .state("Watching")
      .state("Requesting",
             "generate heat_request(watts: 100 * param.delta) to self.heater;")
      .state("Heating", "self.confirmed = self.confirmed + 1;")
      .transition("Watching", "too_cold", "Requesting")
      .transition("Requesting", "heating_started", "Heating")
      .transition("Heating", "too_cold", "Requesting");
  return b.take();
}

/// Device domain: the heater driver. Its AppProxy stands in for whoever
/// asked (the application), to be notified when the element is on.
std::unique_ptr<xtuml::Domain> make_device_domain() {
  DomainBuilder b("Device");
  b.cls("AppProxy").event("started");
  b.cls("Heater")
      .attr("watts", DataType::kInt)
      .attr("activations", DataType::kInt)
      .ref_attr("client", "AppProxy")
      .event("on", {{"watts", DataType::kInt}})
      .state("Off")
      .state("On",
             "self.watts = param.watts;\n"
             "self.activations = self.activations + 1;\n"
             "generate started() to self.client;")
      .transition("Off", "on", "On")
      .transition("On", "on", "On");
  return b.take();
}

struct TwoDomains {
  std::unique_ptr<xtuml::Domain> app_d;
  std::unique_ptr<xtuml::Domain> dev_d;
  std::unique_ptr<oal::CompiledDomain> app;
  std::unique_ptr<oal::CompiledDomain> dev;
  SystemDef def;

  TwoDomains() {
    DiagnosticSink sink;
    app_d = make_app_domain();
    dev_d = make_device_domain();
    app = oal::compile_domain(*app_d, sink);
    dev = oal::compile_domain(*dev_d, sink);
    if (!app || !dev) throw std::runtime_error(sink.to_string());
    def.add_domain(*app);
    def.add_domain(*dev);
    def.add_wire({"App", "HeaterProxy", "heat_request",
                  "Device", "Heater", "on"});
    def.add_wire({"Device", "AppProxy", "started",
                  "App", "Thermostat", "heating_started"});
  }
};

TEST(SystemDef, ValidatesGoodWiring) {
  TwoDomains s;
  DiagnosticSink sink;
  EXPECT_TRUE(s.def.validate(sink)) << sink.to_string();
}

TEST(SystemDef, RejectsUnknownNames) {
  TwoDomains s;
  DiagnosticSink sink;
  SystemDef bad = s.def;
  bad.add_wire({"Nope", "X", "e", "Device", "Heater", "on"});
  EXPECT_FALSE(bad.validate(sink));

  sink.clear();
  SystemDef bad2 = s.def;
  bad2.add_wire({"App", "NoClass", "e", "Device", "Heater", "on"});
  EXPECT_FALSE(bad2.validate(sink));

  sink.clear();
  SystemDef bad3 = s.def;
  bad3.add_wire({"App", "HeaterProxy", "no_event", "Device", "Heater", "on"});
  EXPECT_FALSE(bad3.validate(sink));
}

TEST(SystemDef, RejectsSignatureMismatch) {
  DiagnosticSink sink;
  DomainBuilder a("A");
  a.cls("P").event("e", {{"x", DataType::kString}});
  DomainBuilder b("B");
  b.cls("T").event("f", {{"x", DataType::kInt}});
  auto ca = oal::compile_domain(a.domain(), sink);
  auto cb = oal::compile_domain(b.domain(), sink);
  SystemDef def;
  def.add_domain(*ca);
  def.add_domain(*cb);
  def.add_wire({"A", "P", "e", "B", "T", "f"});
  EXPECT_FALSE(def.validate(sink));
  EXPECT_NE(sink.to_string().find("bridge.wire.type"), std::string::npos);
}

TEST(SystemDef, RejectsDuplicateWireSource) {
  TwoDomains s;
  DiagnosticSink sink;
  SystemDef dup = s.def;
  dup.add_wire({"App", "HeaterProxy", "heat_request",
                "Device", "Heater", "on"});
  EXPECT_FALSE(dup.validate(sink));
}

TEST(SystemDef, IntToRealWideningAllowed) {
  DiagnosticSink sink;
  DomainBuilder a("A");
  a.cls("P").event("e", {{"x", DataType::kInt}});
  DomainBuilder b("B");
  b.cls("T").event("f", {{"x", DataType::kReal}});
  auto ca = oal::compile_domain(a.domain(), sink);
  auto cb = oal::compile_domain(b.domain(), sink);
  SystemDef def;
  def.add_domain(*ca);
  def.add_domain(*cb);
  def.add_wire({"A", "P", "e", "B", "T", "f"});
  EXPECT_TRUE(def.validate(sink)) << sink.to_string();
}

TEST(SystemExecutor, RoundTripAcrossDomains) {
  TwoDomains s;
  SystemExecutor sys(s.def);

  // Populate both domains and bind the proxies.
  auto& app = sys.domain("App");
  auto& dev = sys.domain("Device");
  auto proxy = app.create("HeaterProxy");
  auto thermo = app.create_with("Thermostat", {{"heater", Value(proxy)}});
  auto app_proxy = dev.create("AppProxy");
  auto heater = dev.create_with("Heater", {{"client", Value(app_proxy)}});
  sys.bind(proxy, "App", heater, "Device");
  sys.bind(app_proxy, "Device", thermo, "App");

  app.inject(thermo, "too_cold", {Value(std::int64_t{3})});
  std::size_t dispatched = sys.run_all();
  EXPECT_TRUE(sys.drained());
  EXPECT_GE(dispatched, 3u);
  EXPECT_EQ(sys.forwarded_count(), 2u);  // request out, confirmation back

  // Device side saw the request with the mapped payload.
  const auto& dev_cls = *s.dev_d->find_class("Heater");
  EXPECT_EQ(std::get<std::int64_t>(dev.database().get_attr(
                heater, dev_cls.find_attribute("watts")->id)),
            300);
  // App side got the confirmation.
  const auto& app_cls = *s.app_d->find_class("Thermostat");
  EXPECT_EQ(std::get<std::int64_t>(app.database().get_attr(
                thermo, app_cls.find_attribute("confirmed")->id)),
            1);
  EXPECT_EQ(app.database().current_state(thermo),
            app_cls.find_state("Heating")->id);
}

TEST(SystemExecutor, RepeatedRequests) {
  TwoDomains s;
  SystemExecutor sys(s.def);
  auto& app = sys.domain("App");
  auto& dev = sys.domain("Device");
  auto proxy = app.create("HeaterProxy");
  auto thermo = app.create_with("Thermostat", {{"heater", Value(proxy)}});
  auto app_proxy = dev.create("AppProxy");
  auto heater = dev.create_with("Heater", {{"client", Value(app_proxy)}});
  sys.bind(proxy, "App", heater, "Device");
  sys.bind(app_proxy, "Device", thermo, "App");

  for (int i = 0; i < 4; ++i) {
    app.inject(thermo, "too_cold", {Value(std::int64_t{1})});
    sys.run_all();
  }
  const auto& dev_cls = *s.dev_d->find_class("Heater");
  EXPECT_EQ(std::get<std::int64_t>(dev.database().get_attr(
                heater, dev_cls.find_attribute("activations")->id)),
            4);
  EXPECT_EQ(sys.forwarded_count(), 8u);
}

TEST(SystemExecutor, UnboundProxyFaults) {
  TwoDomains s;
  SystemExecutor sys(s.def);
  auto& app = sys.domain("App");
  auto proxy = app.create("HeaterProxy");
  auto thermo = app.create_with("Thermostat", {{"heater", Value(proxy)}});
  app.inject(thermo, "too_cold", {Value(std::int64_t{1})});
  EXPECT_THROW(sys.run_all(), ModelError);
}

TEST(SystemExecutor, InvalidSystemRejectedAtConstruction) {
  TwoDomains s;
  SystemDef bad = s.def;
  bad.add_wire({"App", "HeaterProxy", "heat_request",
                "Device", "Heater", "on"});  // duplicate source
  EXPECT_THROW(SystemExecutor{bad}, std::invalid_argument);
}

TEST(SystemExecutor, UnknownDomainLookupThrows) {
  TwoDomains s;
  SystemExecutor sys(s.def);
  EXPECT_THROW(sys.domain("Nope"), std::invalid_argument);
}

}  // namespace
}  // namespace xtsoc::bridge
