#include <gtest/gtest.h>

#include "xtsoc/xtuml/builder.hpp"
#include "xtsoc/xtuml/model.hpp"
#include "xtsoc/xtuml/validate.hpp"

namespace xtsoc::xtuml {
namespace {

Domain make_two_state_domain() {
  Domain d("Demo");
  ClassId c = d.add_class("Light", "LGT");
  d.add_attribute(c, "brightness", DataType::kInt, ScalarValue(std::int64_t{0}));
  EventId on = d.add_event(c, "turn_on");
  EventId off = d.add_event(c, "turn_off");
  StateId idle = d.add_state(c, "Off", "");
  StateId lit = d.add_state(c, "On", "");
  d.add_transition(c, idle, on, lit);
  d.add_transition(c, lit, off, idle);
  return d;
}

TEST(Model, AddAndLookupClass) {
  Domain d = make_two_state_domain();
  EXPECT_EQ(d.class_count(), 1u);
  const ClassDef* c = d.find_class("Light");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name, "Light");
  EXPECT_EQ(c->key_letters, "LGT");
  // lookup by key letters also works
  EXPECT_EQ(d.find_class("LGT"), c);
  EXPECT_EQ(d.find_class("Nope"), nullptr);
}

TEST(Model, AttributeDefaults) {
  Domain d = make_two_state_domain();
  const ClassDef& c = *d.find_class("Light");
  const AttributeDef* a = c.find_attribute("brightness");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->default_value.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*a->default_value), 0);
}

TEST(Model, InitialStateDefaultsToFirst) {
  Domain d = make_two_state_domain();
  const ClassDef& c = *d.find_class("Light");
  EXPECT_EQ(c.initial_state, c.find_state("Off")->id);
}

TEST(Model, TransitionLookup) {
  Domain d = make_two_state_domain();
  const ClassDef& c = *d.find_class("Light");
  StateId off = c.find_state("Off")->id;
  StateId on = c.find_state("On")->id;
  EventId turn_on = c.find_event("turn_on")->id;
  const TransitionDef* t = c.transition_on(off, turn_on);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->to, on);
  EXPECT_EQ(c.transition_on(on, turn_on), nullptr);
}

TEST(Model, SizeMetrics) {
  Domain d = make_two_state_domain();
  EXPECT_EQ(d.state_count(), 2u);
  EXPECT_EQ(d.transition_count(), 2u);
  EXPECT_EQ(d.event_count(), 2u);
}

TEST(Model, AssociationEnds) {
  Domain d("D");
  ClassId a = d.add_class("A");
  ClassId b = d.add_class("B");
  AssociationId r1 = d.add_association(
      "R1", {a, "owns", Multiplicity::kOne}, {b, "owned_by", Multiplicity::kZeroMany});
  const AssociationDef& def = d.association(r1);
  EXPECT_EQ(def.end_for(a).role, "owns");
  EXPECT_EQ(def.other_end(a).cls, b);
  EXPECT_TRUE(def.touches(a));
  EXPECT_TRUE(def.touches(b));
  ASSERT_EQ(d.associations_of(a).size(), 1u);
}

TEST(Model, InvalidIdThrows) {
  Domain d("D");
  EXPECT_THROW(d.cls(ClassId(3)), std::out_of_range);
  EXPECT_THROW(d.cls(ClassId::invalid()), std::out_of_range);
  EXPECT_THROW(d.association(AssociationId(0)), std::out_of_range);
}

TEST(Multiplicity, Predicates) {
  EXPECT_TRUE(is_many(Multiplicity::kMany));
  EXPECT_TRUE(is_many(Multiplicity::kZeroMany));
  EXPECT_FALSE(is_many(Multiplicity::kOne));
  EXPECT_TRUE(is_conditional(Multiplicity::kZeroOne));
  EXPECT_TRUE(is_conditional(Multiplicity::kZeroMany));
  EXPECT_FALSE(is_conditional(Multiplicity::kOne));
}

TEST(Types, ScalarTypeAndPrinting) {
  EXPECT_EQ(scalar_type(ScalarValue(true)), DataType::kBool);
  EXPECT_EQ(scalar_type(ScalarValue(std::int64_t{3})), DataType::kInt);
  EXPECT_EQ(scalar_type(ScalarValue(2.5)), DataType::kReal);
  EXPECT_EQ(scalar_type(ScalarValue(std::string("x"))), DataType::kString);
  EXPECT_EQ(scalar_to_string(ScalarValue(true)), "true");
  EXPECT_EQ(scalar_to_string(ScalarValue(std::int64_t{42})), "42");
  EXPECT_EQ(scalar_to_string(ScalarValue(std::string("hi"))), "\"hi\"");
}

// --- validation -------------------------------------------------------------

TEST(Validate, AcceptsWellFormed) {
  Domain d = make_two_state_domain();
  DiagnosticSink sink;
  EXPECT_TRUE(validate(d, sink)) << sink.to_string();
}

TEST(Validate, DuplicateClassName) {
  Domain d("D");
  d.add_class("A", "A1");
  d.add_class("A", "A2");
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
  EXPECT_NE(sink.to_string().find("duplicate class"), std::string::npos);
}

TEST(Validate, DuplicateKeyLetters) {
  Domain d("D");
  d.add_class("A", "KL");
  d.add_class("B", "KL");
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, DuplicateAttribute) {
  Domain d("D");
  ClassId c = d.add_class("A");
  d.add_attribute(c, "x", DataType::kInt);
  d.add_attribute(c, "x", DataType::kBool);
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, DefaultTypeMismatch) {
  Domain d("D");
  ClassId c = d.add_class("A");
  d.add_attribute(c, "x", DataType::kInt, ScalarValue(true));
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, InstRefAttributeNeedsClass) {
  Domain d("D");
  ClassId c = d.add_class("A");
  d.add_attribute(c, "peer", DataType::kInstRef);  // no ref_class
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, NondeterministicTransitions) {
  Domain d("D");
  ClassId c = d.add_class("A");
  EventId e = d.add_event(c, "go");
  StateId s1 = d.add_state(c, "S1", "");
  StateId s2 = d.add_state(c, "S2", "");
  d.add_transition(c, s1, e, s2);
  d.add_transition(c, s1, e, s1);
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
  EXPECT_NE(sink.to_string().find("nondeterministic"), std::string::npos);
}

TEST(Validate, TransitionOutOfFinalState) {
  Domain d("D");
  ClassId c = d.add_class("A");
  EventId e = d.add_event(c, "go");
  StateId s1 = d.add_state(c, "S1", "");
  StateId fin = d.add_state(c, "Done", "", /*is_final=*/true);
  d.add_transition(c, fin, e, s1);
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, UnreachableStateWarns) {
  Domain d("D");
  ClassId c = d.add_class("A");
  d.add_event(c, "go");
  d.add_state(c, "S1", "");
  d.add_state(c, "Island", "");
  DiagnosticSink sink;
  EXPECT_TRUE(validate(d, sink));  // warnings only
  EXPECT_NE(sink.to_string().find("unreachable"), std::string::npos);
}

TEST(Validate, DuplicateEventParams) {
  Domain d("D");
  ClassId c = d.add_class("A");
  d.add_event(c, "go", {{"x", DataType::kInt}, {"x", DataType::kBool}});
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, ReflexiveAssociationNeedsDistinctRoles) {
  Domain d("D");
  ClassId a = d.add_class("A");
  d.add_association("R1", {a, "next", Multiplicity::kZeroOne},
                    {a, "next", Multiplicity::kZeroOne});
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

TEST(Validate, BadDomainName) {
  Domain d("bad name");
  DiagnosticSink sink;
  EXPECT_FALSE(validate(d, sink));
}

// --- builder ----------------------------------------------------------------

TEST(Builder, FluentConstruction) {
  DomainBuilder b("Microwave");
  b.cls("Oven", "OVN")
      .attr("power_w", DataType::kInt, ScalarValue(std::int64_t{600}))
      .event("open_door")
      .event("start", {{"seconds", DataType::kInt}})
      .state("Idle")
      .state("Cooking")
      .transition("Idle", "start", "Cooking")
      .transition("Cooking", "open_door", "Idle");
  Domain& d = b.domain();
  DiagnosticSink sink;
  EXPECT_TRUE(validate(d, sink)) << sink.to_string();
  const ClassDef& c = *d.find_class("Oven");
  EXPECT_EQ(c.transitions.size(), 2u);
}

TEST(Builder, UnknownStateThrows) {
  DomainBuilder b("D");
  auto c = b.cls("A").event("e").state("S");
  EXPECT_THROW(c.transition("S", "e", "Nope"), std::invalid_argument);
  EXPECT_THROW(c.transition("Nope", "e", "S"), std::invalid_argument);
  EXPECT_THROW(c.transition("S", "nope", "S"), std::invalid_argument);
}

TEST(Builder, AssocUnknownClassThrows) {
  DomainBuilder b("D");
  b.cls("A");
  EXPECT_THROW(b.assoc("R1", "A", "x", Multiplicity::kOne, "Nope", "y",
                       Multiplicity::kOne),
               std::invalid_argument);
}

TEST(Builder, RefAttr) {
  DomainBuilder b("D");
  b.cls("Target");
  b.cls("Source").ref_attr("peer", "Target");
  DiagnosticSink sink;
  EXPECT_TRUE(validate(b.domain(), sink)) << sink.to_string();
  const AttributeDef* a = b.domain().find_class("Source")->find_attribute("peer");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type, DataType::kInstRef);
  EXPECT_EQ(a->ref_class, b.domain().find_class_id("Target"));
}

TEST(Builder, InitialOverride) {
  DomainBuilder b("D");
  b.cls("A").state("S1").state("S2").initial("S2");
  EXPECT_EQ(b.domain().find_class("A")->initial_state,
            b.domain().find_class("A")->find_state("S2")->id);
}

}  // namespace
}  // namespace xtsoc::xtuml
