#include <gtest/gtest.h>

#include <string>

#include "xtsoc/swrt/mailbox.hpp"
#include "xtsoc/swrt/scheduler.hpp"

namespace xtsoc::swrt {
namespace {

TEST(Mailbox, FifoOrder) {
  Mailbox<int> mb;
  mb.push(1);
  mb.push(2);
  mb.push(3);
  EXPECT_EQ(mb.size(), 3u);
  EXPECT_EQ(*mb.pop(), 1);
  EXPECT_EQ(*mb.pop(), 2);
  EXPECT_EQ(*mb.pop(), 3);
  EXPECT_FALSE(mb.pop().has_value());
}

TEST(Mailbox, CapacityAndDropAccounting) {
  Mailbox<int> mb(2);
  EXPECT_TRUE(mb.push(1));
  EXPECT_TRUE(mb.push(2));
  EXPECT_FALSE(mb.push(3));  // full: rejected, counted
  EXPECT_EQ(mb.size(), 2u);
  EXPECT_EQ(mb.pushed(), 2u);
  EXPECT_EQ(mb.dropped(), 1u);
}

TEST(Mailbox, OnPushHookFires) {
  Mailbox<int> mb;
  int wakeups = 0;
  mb.set_on_push([&wakeups] { ++wakeups; });
  mb.push(1);
  mb.push(2);
  EXPECT_EQ(wakeups, 2);
}

TEST(Scheduler, RunsUntilTaskReportsNoWork) {
  Scheduler sched;
  int budget = 3;
  sched.spawn("worker", 0, [&budget] { return budget-- > 0; });
  std::size_t steps = sched.run_until_idle();
  // 3 productive steps + 1 step observing "no work".
  EXPECT_EQ(steps, 4u);
  EXPECT_TRUE(sched.idle());
}

TEST(Scheduler, PriorityWins) {
  Scheduler sched;
  std::string order;
  int lo_work = 2, hi_work = 2;
  sched.spawn("lo", 1, [&] {
    if (lo_work == 0) return false;
    --lo_work;
    order += 'l';
    return true;
  });
  sched.spawn("hi", 9, [&] {
    if (hi_work == 0) return false;
    --hi_work;
    order += 'h';
    return true;
  });
  sched.run_until_idle();
  EXPECT_EQ(order, "hhll");
}

TEST(Scheduler, TieBreaksByCreationOrder) {
  Scheduler sched;
  std::string order;
  bool a_done = false, b_done = false;
  sched.spawn("a", 5, [&] {
    if (a_done) return false;
    a_done = true;
    order += 'a';
    return true;
  });
  sched.spawn("b", 5, [&] {
    if (b_done) return false;
    b_done = true;
    order += 'b';
    return true;
  });
  sched.run_until_idle();
  EXPECT_EQ(order.substr(0, 2), "ab");
}

TEST(Scheduler, NotifyWakesParkedTask) {
  Scheduler sched;
  Mailbox<int> mb;
  int consumed = 0;
  TaskId worker = sched.spawn("consumer", 0, [&] {
    auto item = mb.pop();
    if (!item) return false;
    ++consumed;
    return true;
  });
  mb.set_on_push([&sched, worker] { sched.notify(worker); });

  sched.run_until_idle();
  EXPECT_EQ(consumed, 0);
  EXPECT_TRUE(sched.idle());

  mb.push(42);
  EXPECT_FALSE(sched.idle());
  sched.run_until_idle();
  EXPECT_EQ(consumed, 1);
}

TEST(Scheduler, StepAccounting) {
  Scheduler sched;
  int n = 5;
  TaskId t = sched.spawn("w", 0, [&n] { return n-- > 0; });
  sched.run_until_idle();
  EXPECT_EQ(sched.steps_of(t), 6u);
  EXPECT_EQ(sched.total_steps(), 6u);
  EXPECT_EQ(sched.name_of(t), "w");
}

TEST(Scheduler, MaxStepsBoundRespected) {
  Scheduler sched;
  sched.spawn("infinite", 0, [] { return true; });
  EXPECT_EQ(sched.run_until_idle(10), 10u);
  EXPECT_FALSE(sched.idle());
}

TEST(Scheduler, InvalidTaskIdThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.notify(TaskId(3)), std::out_of_range);
  EXPECT_THROW(sched.steps_of(TaskId::invalid()), std::out_of_range);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.run_one());
  EXPECT_TRUE(sched.idle());
}

}  // namespace
}  // namespace xtsoc::swrt
