#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <regex>

#include "test_models.hpp"
#include "xtsoc/xtuml/builder.hpp"
#include "xtsoc/codegen/cgen.hpp"
#include "xtsoc/codegen/vhdlgen.hpp"

namespace xtsoc::codegen {
namespace {

using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

marks::MarkSet hw_consumer_marks() {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kMaxInstances,
                   ScalarValue(std::int64_t{8}));
  return m;
}

struct GenFixture {
  MappedFixture fx;
  Output c_out;
  Output vhdl_out;

  GenFixture() : fx(make_pipeline_domain(), hw_consumer_marks()) {
    DiagnosticSink sink;
    c_out = generate_c(*fx.system, sink);
    EXPECT_FALSE(sink.has_errors()) << sink.to_string();
    vhdl_out = generate_vhdl(*fx.system, sink);
    EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  }
};

TEST(CGen, EmitsExpectedFiles) {
  GenFixture g;
  EXPECT_NE(g.c_out.find("sw/pipe_iface.h"), nullptr);
  EXPECT_NE(g.c_out.find("sw/pipe_model.h"), nullptr);
  EXPECT_NE(g.c_out.find("sw/pipe_model.c"), nullptr);
  EXPECT_NE(g.c_out.find("sw/pipe_main.c"), nullptr);
  EXPECT_GT(g.c_out.total_lines(), 100u);
}

TEST(CGen, SoftwareClassesOnly) {
  GenFixture g;
  const GeneratedFile* model = g.c_out.find("sw/pipe_model.h");
  ASSERT_NE(model, nullptr);
  // Producer (software) gets a pool; Consumer (hardware) must not.
  EXPECT_NE(model->content.find("producer_t"), std::string::npos);
  EXPECT_EQ(model->content.find("consumer_t g_consumer_pool"),
            std::string::npos);
  // But Consumer's class id exists (handles may reference it).
  EXPECT_NE(model->content.find("#define XT_CLS_CONSUMER"), std::string::npos);
}

TEST(CGen, ActionTranslated) {
  GenFixture g;
  const GeneratedFile* model = g.c_out.find("sw/pipe_model.c");
  ASSERT_NE(model, nullptr);
  // Producer.Sending action: self.sent = self.sent + 1;
  EXPECT_NE(model->content.find(
                "producer_get(self)->sent = (producer_get(self)->sent + 1);"),
            std::string::npos)
      << model->content;
  // Cross-boundary generate became a bus send helper call.
  EXPECT_NE(model->content.find("xt_bus_send_consumer_work("),
            std::string::npos);
  // Original OAL is embedded as a comment.
  EXPECT_NE(model->content.find("self.sent = self.sent + 1;"),
            std::string::npos);
}

TEST(CGen, BusRxDecodesToSoftwareEvents) {
  GenFixture g;
  const GeneratedFile* model = g.c_out.find("sw/pipe_model.c");
  ASSERT_NE(model, nullptr);
  EXPECT_NE(model->content.find("case MSG_PRODUCER_DONE_OPCODE:"),
            std::string::npos);
  EXPECT_NE(model->content.find("PRODUCER_EV_DONE"), std::string::npos);
}

TEST(VhdlGen, EmitsPackageAndEntities) {
  GenFixture g;
  EXPECT_NE(g.vhdl_out.find("hw/pipe_pkg.vhd"), nullptr);
  EXPECT_NE(g.vhdl_out.find("hw/consumer.vhd"), nullptr);
  EXPECT_EQ(g.vhdl_out.find("hw/producer.vhd"), nullptr);  // software class
}

TEST(VhdlGen, EntityStructure) {
  GenFixture g;
  const GeneratedFile* e = g.vhdl_out.find("hw/consumer.vhd");
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->content.find("entity consumer is"), std::string::npos);
  EXPECT_NE(e->content.find("architecture rtl of consumer is"),
            std::string::npos);
  EXPECT_NE(e->content.find("rising_edge(clk)"), std::string::npos);
  // Pool size from the maxInstances mark.
  EXPECT_NE(e->content.find("CONSUMER_POOL : natural := 8"),
            std::string::npos);
  // Attribute storage and action translation.
  EXPECT_NE(e->content.find("v_total"), std::string::npos);
  EXPECT_NE(e->content.find("tx_opcode <= to_unsigned(MSG_PRODUCER_DONE_OPCODE"),
            std::string::npos);
}

TEST(VhdlGen, BalancedConstructs) {
  GenFixture g;
  for (const auto& f : g.vhdl_out.files) {
    auto count = [&](const std::string& needle) {
      std::size_t n = 0, pos = 0;
      while ((pos = f.content.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
      }
      return n;
    };
    EXPECT_EQ(count("case "), count("end case;")) << f.path;
    EXPECT_EQ(count("process("), count("end process;")) << f.path;
    EXPECT_EQ(count(" loop"), count("end loop;") * 2) << f.path;  // "x loop"+"end loop"
  }
}

// --- the paper's consistency guarantee, checked across backends -------------------

std::map<std::string, std::string> extract_c_constants(const std::string& h) {
  std::map<std::string, std::string> out;
  std::regex re(R"(#define (MSG_\w+) (\d+)u?)");
  for (std::sregex_iterator it(h.begin(), h.end(), re), end; it != end; ++it) {
    out[(*it)[1]] = (*it)[2];
  }
  return out;
}

std::map<std::string, std::string> extract_vhdl_constants(const std::string& v) {
  std::map<std::string, std::string> out;
  std::regex re(R"(constant (MSG_\w+) : natural := (\d+);)");
  for (std::sregex_iterator it(v.begin(), v.end(), re), end; it != end; ++it) {
    out[(*it)[1]] = (*it)[2];
  }
  return out;
}

TEST(CrossBackend, InterfaceConstantsIdentical) {
  GenFixture g;
  const GeneratedFile* ch = g.c_out.find("sw/pipe_iface.h");
  const GeneratedFile* vp = g.vhdl_out.find("hw/pipe_pkg.vhd");
  ASSERT_NE(ch, nullptr);
  ASSERT_NE(vp, nullptr);

  auto c_consts = extract_c_constants(ch->content);
  auto v_consts = extract_vhdl_constants(vp->content);
  ASSERT_FALSE(c_consts.empty());

  // Every opcode / offset / width constant in the C header must appear in
  // the VHDL package with the same value (VHDL also has MSG_MAX_BITS and
  // the C side has _BYTES, so compare the intersection by name).
  std::size_t compared = 0;
  for (const auto& [name, value] : c_consts) {
    auto it = v_consts.find(name);
    if (it == v_consts.end()) continue;
    EXPECT_EQ(it->second, value) << "constant " << name << " differs";
    ++compared;
  }
  EXPECT_GE(compared, 10u);  // opcodes + field offsets/widths of 2 messages
}

TEST(CrossBackend, DigestIdentical) {
  GenFixture g;
  const GeneratedFile* ch = g.c_out.find("sw/pipe_iface.h");
  const GeneratedFile* vp = g.vhdl_out.find("hw/pipe_pkg.vhd");
  std::regex re("XT_IFACE_DIGEST[^\"]*\"([0-9a-f]+)\"");
  std::smatch mc, mv;
  ASSERT_TRUE(std::regex_search(ch->content, mc, re));
  ASSERT_TRUE(std::regex_search(vp->content, mv, re));
  EXPECT_EQ(mc[1], mv[1]);
  EXPECT_EQ(mc[1], g.fx.system->interface().digest(*g.fx.domain));
}

TEST(CrossBackend, RepartitionSwapsFilesNotInterfaces) {
  // Flip the mark: Producer to hardware instead of Consumer. The generated
  // file SET changes, but each backend still agrees with the other.
  marks::MarkSet m;
  m.mark_hardware("Producer");
  MappedFixture fx(make_pipeline_domain(), std::move(m));
  DiagnosticSink sink;
  Output c = generate_c(*fx.system, sink);
  Output v = generate_vhdl(*fx.system, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_NE(v.find("hw/producer.vhd"), nullptr);
  EXPECT_EQ(v.find("hw/consumer.vhd"), nullptr);
  auto cc = extract_c_constants(c.find("sw/pipe_iface.h")->content);
  auto vv = extract_vhdl_constants(v.find("hw/pipe_pkg.vhd")->content);
  for (const auto& [name, value] : cc) {
    auto it = vv.find(name);
    if (it != vv.end()) {
      EXPECT_EQ(it->second, value);
    }
  }
}

// --- the paper's "compilable text" claim, checked with a real C compiler -----------

TEST(CGen, GeneratedCCompiles) {
  GenFixture g;
  std::string dir = ::testing::TempDir() + "xtsoc_cgen";
  std::system(("mkdir -p " + dir).c_str());
  for (const auto& f : g.c_out.files) {
    std::string base = f.path.substr(f.path.find_last_of('/') + 1);
    std::ofstream(dir + "/" + base) << f.content;
  }
  std::string cmd = "cc -std=c99 -Wall -Werror -c " + dir + "/pipe_model.c " +
                    dir + "/pipe_main.c -o /dev/null 2>" + dir + "/cc.log";
  // -o with multiple inputs is invalid; compile separately.
  cmd = "cd " + dir + " && cc -std=c99 -Wall -Werror -c pipe_model.c 2>cc1.log"
        " && cc -std=c99 -Wall -Werror -c pipe_main.c 2>cc2.log";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream log1(dir + "/cc1.log"), log2(dir + "/cc2.log");
    std::stringstream ss;
    ss << log1.rdbuf() << log2.rdbuf();
    FAIL() << "generated C failed to compile:\n" << ss.str();
  }
}

TEST(CGen, GeneratedCLinksWithMain) {
  GenFixture g;
  std::string dir = ::testing::TempDir() + "xtsoc_clink";
  std::system(("mkdir -p " + dir).c_str());
  for (const auto& f : g.c_out.files) {
    std::string base = f.path.substr(f.path.find_last_of('/') + 1);
    std::ofstream(dir + "/" + base) << f.content;
  }
  std::string cmd = "cd " + dir +
                    " && cc -std=c99 pipe_model.c pipe_main.c -o demo "
                    "2>link.log && ./demo";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream log(dir + "/link.log");
    std::stringstream ss;
    ss << log.rdbuf();
    FAIL() << "generated C failed to link/run:\n" << ss.str();
  }
}

TEST(CGen, PureSoftwareSystemHasEmptyBusSection) {
  MappedFixture fx(make_pipeline_domain(), marks::MarkSet{});
  DiagnosticSink sink;
  Output c = generate_c(*fx.system, sink);
  const GeneratedFile* model = c.find("sw/pipe_model.c");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->content.find("xt_bus_send_"), std::string::npos);
  // Everything is software: both classes have pools.
  EXPECT_NE(model->content.find("g_consumer_pool"), std::string::npos);
  EXPECT_NE(model->content.find("g_producer_pool"), std::string::npos);
}

TEST(CrossBackend, RegenerationIsDeterministic) {
  // "Repeatable mappings": the same marked model generates byte-identical
  // text every time.
  GenFixture g;
  DiagnosticSink sink;
  Output c2 = generate_c(*g.fx.system, sink);
  Output v2 = generate_vhdl(*g.fx.system, sink);
  ASSERT_EQ(c2.files.size(), g.c_out.files.size());
  for (std::size_t i = 0; i < c2.files.size(); ++i) {
    EXPECT_EQ(c2.files[i].path, g.c_out.files[i].path);
    EXPECT_EQ(c2.files[i].content, g.c_out.files[i].content);
  }
  ASSERT_EQ(v2.files.size(), g.vhdl_out.files.size());
  for (std::size_t i = 0; i < v2.files.size(); ++i) {
    EXPECT_EQ(v2.files[i].content, g.vhdl_out.files[i].content);
  }
}

TEST(VhdlGen, TranslatesControlFlowAndSelects) {
  // A hardware class exercising while/if/select/log/create: the VHDL
  // translation must render each construct.
  xtuml::DomainBuilder b("Hw");
  b.cls("Unit")
      .attr("acc", xtuml::DataType::kInt)
      .event("crunch", {{"n", xtuml::DataType::kInt}})
      .state("Idle")
      .state("Busy",
             "k = 0;\n"
             "while (k < param.n)\n"
             "  k = k + 1;\n"
             "  if (k % 2 == 0)\n"
             "    self.acc = self.acc + k;\n"
             "  end if;\n"
             "end while;\n"
             "select many peers from instances of Unit where (selected.acc "
             "> 0);\n"
             "for each p in peers\n"
             "  p.acc = p.acc - 1;\n"
             "end for;\n"
             "log \"done\", self.acc;")
      .transition("Idle", "crunch", "Busy")
      .transition("Busy", "crunch", "Busy");
  // The classifier needs a software peer to force boundary synthesis paths.
  b.cls("Driver")
      .ref_attr("unit", "Unit")
      .event("go")
      .state("S0")
      .state("S1", "generate crunch(n: 4) to self.unit;")
      .transition("S0", "go", "S1");
  marks::MarkSet m;
  m.mark_hardware("Unit");
  MappedFixture fx(b.take(), std::move(m));
  DiagnosticSink sink;
  Output v = generate_vhdl(*fx.system, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  const GeneratedFile* unit = v.find("hw/unit.vhd");
  ASSERT_NE(unit, nullptr);
  EXPECT_NE(unit->content.find("while "), std::string::npos);
  EXPECT_NE(unit->content.find("end loop;"), std::string::npos);
  EXPECT_NE(unit->content.find("end if;"), std::string::npos);
  EXPECT_NE(unit->content.find("for i in 0 to UNIT_POOL - 1 loop"),
            std::string::npos);
  EXPECT_NE(unit->content.find("report"), std::string::npos);
  EXPECT_NE(unit->content.find("to_integer(signed("), std::string::npos);
}

TEST(Output, LineAndByteCounts) {
  Output o;
  o.files.push_back({"a", "one\ntwo\n"});
  o.files.push_back({"b", "three"});
  EXPECT_EQ(o.total_lines(), 3u);
  EXPECT_EQ(o.total_bytes(), 13u);
  EXPECT_NE(o.find("a"), nullptr);
  EXPECT_EQ(o.find("zzz"), nullptr);
}

}  // namespace
}  // namespace xtsoc::codegen
