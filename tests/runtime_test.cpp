#include <gtest/gtest.h>

#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/runtime/database.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/runtime/value.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::runtime {
namespace {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;
using xtuml::ScalarValue;

// --- values -------------------------------------------------------------------

TEST(Value, Defaults) {
  EXPECT_EQ(std::get<std::int64_t>(default_value(DataType::kInt)), 0);
  EXPECT_EQ(std::get<bool>(default_value(DataType::kBool)), false);
  EXPECT_TRUE(std::get<InstanceHandle>(default_value(DataType::kInstRef)).is_null());
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(value_equals(Value(std::int64_t{2}), Value(2.0)));
  EXPECT_FALSE(value_equals(Value(std::int64_t{2}), Value(2.5)));
  EXPECT_FALSE(value_equals(Value(std::int64_t{1}), Value(std::string("1"))));
}

TEST(Value, AccessorsThrowOnWrongType) {
  EXPECT_THROW(as_bool(Value(std::int64_t{1})), std::runtime_error);
  EXPECT_THROW(as_int(Value(2.0)), std::runtime_error);
  EXPECT_THROW(as_handle(Value(true)), std::runtime_error);
  EXPECT_DOUBLE_EQ(as_real(Value(std::int64_t{3})), 3.0);
}

TEST(Value, ToString) {
  EXPECT_EQ(to_string(Value(true)), "true");
  EXPECT_EQ(to_string(Value(std::int64_t{-7})), "-7");
  EXPECT_EQ(to_string(Value(std::string("hi"))), "hi");
  InstanceSet set{InstanceHandle::null()};
  EXPECT_EQ(to_string(Value(set)), "{<null>}");
}

// --- database -----------------------------------------------------------------

Domain make_db_domain() {
  DomainBuilder b("D");
  b.cls("Dog", "DOG")
      .attr("age", DataType::kInt, ScalarValue(std::int64_t{1}))
      .attr("name", DataType::kString);
  b.cls("Owner", "OWN").attr("budget", DataType::kInt);
  b.assoc("R1", "Owner", "keeps", Multiplicity::kZeroOne, "Dog", "kept_by",
          Multiplicity::kZeroMany);
  b.assoc("R2", "Dog", "likes", Multiplicity::kZeroMany, "Dog", "liked_by",
          Multiplicity::kZeroMany);
  return std::move(*b.take());
}

TEST(Database, CreateSetsDefaults) {
  Domain d = make_db_domain();
  Database db(d);
  InstanceHandle h = db.create(d.find_class_id("Dog"));
  EXPECT_TRUE(db.is_alive(h));
  EXPECT_EQ(std::get<std::int64_t>(db.get_attr(h, AttributeId(0))), 1);
  EXPECT_EQ(std::get<std::string>(db.get_attr(h, AttributeId(1))), "");
}

TEST(Database, StaleHandleDetected) {
  Domain d = make_db_domain();
  Database db(d);
  InstanceHandle h = db.create(d.find_class_id("Dog"));
  db.destroy(h);
  EXPECT_FALSE(db.is_alive(h));
  EXPECT_THROW(db.get_attr(h, AttributeId(0)), ModelError);
  // Slot reuse bumps the generation, so the old handle stays dead.
  InstanceHandle h2 = db.create(d.find_class_id("Dog"));
  EXPECT_EQ(h2.index, h.index);
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_FALSE(db.is_alive(h));
  EXPECT_TRUE(db.is_alive(h2));
}

TEST(Database, NullHandleThrows) {
  Domain d = make_db_domain();
  Database db(d);
  EXPECT_THROW(db.deref(InstanceHandle::null()), ModelError);
}

TEST(Database, AllOfInCreationOrder) {
  Domain d = make_db_domain();
  Database db(d);
  ClassId dog = d.find_class_id("Dog");
  auto h1 = db.create(dog);
  auto h2 = db.create(dog);
  auto h3 = db.create(dog);
  db.destroy(h2);
  InstanceSet all = db.all_of(dog);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], h1);
  EXPECT_EQ(all[1], h3);
  EXPECT_EQ(db.live_count(dog), 2u);
}

TEST(Database, RelateAndSelect) {
  Domain d = make_db_domain();
  Database db(d);
  auto owner = db.create(d.find_class_id("Owner"));
  auto dog1 = db.create(d.find_class_id("Dog"));
  auto dog2 = db.create(d.find_class_id("Dog"));
  AssociationId r1 = d.find_association("R1")->id;

  db.relate(owner, dog1, r1);
  db.relate(dog2, owner, r1);  // reversed argument order is canonicalized

  InstanceSet dogs = db.related(owner, r1);
  ASSERT_EQ(dogs.size(), 2u);
  EXPECT_EQ(dogs[0], dog1);
  InstanceSet owners = db.related(dog1, r1);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0], owner);
  EXPECT_EQ(db.link_count(r1), 2u);
}

TEST(Database, MultiplicityEnforced) {
  Domain d = make_db_domain();
  Database db(d);
  auto o1 = db.create(d.find_class_id("Owner"));
  auto o2 = db.create(d.find_class_id("Owner"));
  auto dog = db.create(d.find_class_id("Dog"));
  AssociationId r1 = d.find_association("R1")->id;
  db.relate(o1, dog, r1);
  // A dog has at most one owner (owner end is 0..1).
  EXPECT_THROW(db.relate(o2, dog, r1), ModelError);
}

TEST(Database, DuplicateLinkRejected) {
  Domain d = make_db_domain();
  Database db(d);
  auto o = db.create(d.find_class_id("Owner"));
  auto dog = db.create(d.find_class_id("Dog"));
  AssociationId r1 = d.find_association("R1")->id;
  db.relate(o, dog, r1);
  EXPECT_THROW(db.relate(o, dog, r1), ModelError);
}

TEST(Database, UnrelateMissingLinkThrows) {
  Domain d = make_db_domain();
  Database db(d);
  auto o = db.create(d.find_class_id("Owner"));
  auto dog = db.create(d.find_class_id("Dog"));
  AssociationId r1 = d.find_association("R1")->id;
  EXPECT_THROW(db.unrelate(o, dog, r1), ModelError);
  db.relate(o, dog, r1);
  db.unrelate(dog, o, r1);  // either order
  EXPECT_EQ(db.link_count(r1), 0u);
}

TEST(Database, DestroyDropsLinks) {
  Domain d = make_db_domain();
  Database db(d);
  auto o = db.create(d.find_class_id("Owner"));
  auto dog = db.create(d.find_class_id("Dog"));
  AssociationId r1 = d.find_association("R1")->id;
  db.relate(o, dog, r1);
  db.destroy(dog);
  EXPECT_EQ(db.link_count(r1), 0u);
  EXPECT_TRUE(db.related(o, r1).empty());
}

TEST(Database, ReflexiveAssociation) {
  Domain d = make_db_domain();
  Database db(d);
  ClassId dog = d.find_class_id("Dog");
  auto d1 = db.create(dog);
  auto d2 = db.create(dog);
  AssociationId r2 = d.find_association("R2")->id;
  db.relate(d1, d2, r2);
  InstanceSet likes = db.related(d1, r2);
  ASSERT_EQ(likes.size(), 1u);
  EXPECT_EQ(likes[0], d2);
}

TEST(Database, RealAttrWidensIntWrite) {
  DomainBuilder b("D");
  b.cls("A").attr("w", DataType::kReal);
  Domain d = std::move(*b.take());
  Database db(d);
  auto h = db.create(d.find_class_id("A"));
  db.set_attr(h, AttributeId(0), Value(std::int64_t{3}));
  EXPECT_DOUBLE_EQ(std::get<double>(db.get_attr(h, AttributeId(0))), 3.0);
}

// --- executor -----------------------------------------------------------------

/// Counter: a single self-looping state machine.
std::unique_ptr<Domain> make_counter_domain() {
  DomainBuilder b("CounterD");
  b.cls("Counter", "CNT")
      .attr("n", DataType::kInt)
      .event("bump")
      .event("reset")
      .state("Counting", "self.n = self.n + 1;")
      .state("Zeroed", "self.n = 0;")
      .transition("Counting", "bump", "Counting")
      .transition("Counting", "reset", "Zeroed")
      .transition("Zeroed", "bump", "Counting");
  return b.take();
}

struct Fixture {
  std::unique_ptr<Domain> domain;
  std::unique_ptr<oal::CompiledDomain> compiled;
  std::unique_ptr<Executor> exec;

  explicit Fixture(std::unique_ptr<Domain> d, ExecutorConfig cfg = {}) {
    domain = std::move(d);
    DiagnosticSink sink;
    compiled = oal::compile_domain(*domain, sink);
    if (!compiled) throw std::runtime_error(sink.to_string());
    exec = std::make_unique<Executor>(*compiled, cfg);
  }
};

TEST(Executor, DispatchRunsDestinationAction) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "bump");
  f.exec->inject(h, "bump");
  EXPECT_EQ(f.exec->run_all(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(
                f.exec->database().get_attr(h, AttributeId(0))),
            2);
}

TEST(Executor, CreationDoesNotRunInitialAction) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  EXPECT_EQ(std::get<std::int64_t>(
                f.exec->database().get_attr(h, AttributeId(0))),
            0);
  EXPECT_EQ(f.exec->dispatch_count(), 0u);
}

TEST(Executor, UnhandledEventIgnoredByDefault) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "reset");  // Counting -> Zeroed
  f.exec->inject(h, "reset");  // no transition from Zeroed on reset
  f.exec->run_all();
  std::size_t ignored = 0;
  for (const auto& e : f.exec->trace().events()) {
    if (e.kind == TraceKind::kIgnored) ++ignored;
  }
  EXPECT_EQ(ignored, 1u);
}

TEST(Executor, CantHappenThrows) {
  auto d = make_counter_domain();
  d->cls(d->find_class_id("Counter")).fallback =
      xtuml::EventFallback::kCantHappen;
  Fixture f(std::move(d));
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "reset");
  f.exec->inject(h, "reset");
  EXPECT_THROW(f.exec->run_all(), ModelError);
}

TEST(Executor, EventToDeletedInstanceDropped) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "bump");
  f.exec->destroy(h);
  EXPECT_NO_THROW(f.exec->run_all());
  EXPECT_EQ(f.exec->dispatch_count(), 0u);
}

TEST(Executor, DelayedEventsFireInTimeOrder) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "reset", {}, 10);
  f.exec->inject(h, "bump", {}, 5);
  EXPECT_TRUE(f.exec->idle());
  ASSERT_TRUE(f.exec->next_deadline().has_value());
  EXPECT_EQ(*f.exec->next_deadline(), 5u);
  f.exec->run_all();
  EXPECT_EQ(f.exec->now(), 10u);
  // bump at t=5 (n: 0->1), reset at t=10 (n->0)
  EXPECT_EQ(std::get<std::int64_t>(
                f.exec->database().get_attr(h, AttributeId(0))),
            0);
  EXPECT_EQ(f.exec->dispatch_count(), 2u);
}

TEST(Executor, AdvanceTimeReleasesTimers) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "bump", {}, 7);
  f.exec->advance_time(6);
  EXPECT_FALSE(f.exec->step());
  f.exec->advance_time(1);
  EXPECT_TRUE(f.exec->step());
}

/// Ping-pong: two instances of Relay bouncing a token, decrementing ttl.
std::unique_ptr<Domain> make_pingpong_domain() {
  DomainBuilder b("PingPong");
  b.cls("Relay", "RLY")
      .attr("hits", DataType::kInt)
      .ref_attr("peer", "Relay")
      .event("token", {{"ttl", DataType::kInt}})
      .state("Waiting",
             "self.hits = self.hits + 1;\n"
             "if (param.ttl > 0)\n"
             "  generate token(ttl: param.ttl - 1) to self.peer;\n"
             "end if;")
      .transition("Waiting", "token", "Waiting");
  return b.take();
}

TEST(Executor, PingPongCauseAndEffect) {
  Fixture f(make_pingpong_domain());
  auto a = f.exec->create("Relay");
  auto p = f.exec->create("Relay");
  f.exec->database().set_attr(a, AttributeId(1), Value(p));
  f.exec->database().set_attr(p, AttributeId(1), Value(a));
  f.exec->inject(a, "token", {Value(std::int64_t{9})});
  EXPECT_EQ(f.exec->run_all(), 10u);
  EXPECT_EQ(std::get<std::int64_t>(f.exec->database().get_attr(a, AttributeId(0))), 5);
  EXPECT_EQ(std::get<std::int64_t>(f.exec->database().get_attr(p, AttributeId(0))), 5);
}

TEST(Executor, RunToCompletionNoInterleaving) {
  // An action that writes two attributes must complete before the next
  // event is processed: between two dispatches there is never a partial
  // write visible. We check via trace ordering: every dispatch's attr
  // writes appear before the next dispatch record.
  DomainBuilder b("RTC");
  b.cls("Pair")
      .attr("x", DataType::kInt)
      .attr("y", DataType::kInt)
      .event("set", {{"v", DataType::kInt}})
      .state("S", "self.x = param.v;\nself.y = param.v;")
      .transition("S", "set", "S");
  Fixture f(b.take());
  auto h = f.exec->create("Pair");
  f.exec->inject(h, "set", {Value(std::int64_t{1})});
  f.exec->inject(h, "set", {Value(std::int64_t{2})});
  f.exec->run_all();

  int dispatches_seen = 0;
  int writes_since_dispatch = 0;
  for (const auto& e : f.exec->trace().events()) {
    if (e.kind == TraceKind::kDispatch) {
      if (dispatches_seen > 0) {
        EXPECT_EQ(writes_since_dispatch, 2);
      }
      ++dispatches_seen;
      writes_since_dispatch = 0;
    } else if (e.kind == TraceKind::kAttrWrite) {
      ++writes_since_dispatch;
    }
  }
  EXPECT_EQ(dispatches_seen, 2);
  EXPECT_EQ(writes_since_dispatch, 2);
}

/// Model used by both queue-policy tests. On "go", the instance sends
/// itself "selfie". An external "other" is ALREADY queued behind "go". The
/// xtUML discipline dispatches the self-directed "selfie" before the older
/// external "other"; plain FIFO dispatches "other" first. The first event
/// to arrive in Running decides the next state.
std::unique_ptr<Domain> make_selfq_domain() {
  DomainBuilder b("SelfQ");
  b.cls("A")
      .attr("order", DataType::kString)
      .event("go")
      .event("selfie")
      .event("other")
      .state("S0")
      .state("Running", "generate selfie() to self;\n")
      .state("GotSelfie", "self.order = self.order + \"s\";")
      .state("GotOther", "self.order = self.order + \"o\";")
      .state("SinkS")
      .state("SinkO")
      .transition("S0", "go", "Running")
      .transition("Running", "selfie", "GotSelfie")
      .transition("Running", "other", "GotOther")
      .transition("GotSelfie", "other", "SinkS")
      .transition("GotOther", "selfie", "SinkO");
  return b.take();
}

TEST(Executor, SelfDirectedEventsOutrankExternal) {
  Fixture f(make_selfq_domain());
  auto h = f.exec->create("A");
  f.exec->inject(h, "go");
  f.exec->inject(h, "other");
  f.exec->run_all();
  EXPECT_EQ(std::get<std::string>(f.exec->database().get_attr(h, AttributeId(0))),
            "s");
  EXPECT_EQ(f.exec->database().current_state(h),
            f.domain->find_class("A")->find_state("SinkS")->id);
}

TEST(Executor, FifoPolicyAblationChangesOrder) {
  ExecutorConfig cfg;
  cfg.policy = QueuePolicy::kFifoOnly;
  Fixture f(make_selfq_domain(), cfg);
  auto h = f.exec->create("A");
  f.exec->inject(h, "go");
  f.exec->inject(h, "other");
  f.exec->run_all();
  // FIFO: "other" was enqueued before "selfie" was generated, so it wins.
  EXPECT_EQ(std::get<std::string>(f.exec->database().get_attr(h, AttributeId(0))),
            "o");
  EXPECT_EQ(f.exec->database().current_state(h),
            f.domain->find_class("A")->find_state("SinkO")->id);
}

TEST(Executor, FinalStateDeletesInstance) {
  DomainBuilder b("Fin");
  b.cls("Job")
      .event("finish")
      .state("Running")
      .final_state("Done")
      .transition("Running", "finish", "Done");
  Fixture f(b.take());
  auto h = f.exec->create("Job");
  f.exec->inject(h, "finish");
  f.exec->run_all();
  EXPECT_FALSE(f.exec->database().is_alive(h));
}

TEST(Executor, ActionCanDeleteSelf) {
  DomainBuilder b("Del");
  b.cls("Ephemeral")
      .event("die")
      .state("Alive")
      .state("Dying", "delete object instance self;")
      .transition("Alive", "die", "Dying");
  Fixture f(b.take());
  auto h = f.exec->create("Ephemeral");
  f.exec->inject(h, "die");
  EXPECT_NO_THROW(f.exec->run_all());
  EXPECT_FALSE(f.exec->database().is_alive(h));
}

TEST(Executor, CreateWithOverridesAttributes) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create_with("Counter", {{"n", Value(std::int64_t{41})}});
  f.exec->inject(h, "bump");
  f.exec->run_all();
  EXPECT_EQ(std::get<std::int64_t>(f.exec->database().get_attr(h, AttributeId(0))),
            42);
}

TEST(Executor, CreateWithUnknownAttributeThrows) {
  Fixture f(make_counter_domain());
  EXPECT_THROW(f.exec->create_with("Counter", {{"zz", Value(std::int64_t{1})}}),
               ModelError);
  EXPECT_THROW(f.exec->create("Nope"), ModelError);
}

TEST(Executor, InjectUnknownEventThrows) {
  Fixture f(make_counter_domain());
  auto h = f.exec->create("Counter");
  EXPECT_THROW(f.exec->inject(h, "nope"), ModelError);
}

TEST(Executor, OpLimitGuardsRunawayLoops) {
  DomainBuilder b("Loop");
  b.cls("Spinner")
      .attr("x", DataType::kInt)
      .event("go")
      .state("S0")
      .state("Spin", "while (true)\n  self.x = self.x + 1;\nend while;")
      .transition("S0", "go", "Spin");
  ExecutorConfig cfg;
  cfg.max_ops_per_action = 10'000;
  Fixture f(b.take(), cfg);
  auto h = f.exec->create("Spinner");
  f.exec->inject(h, "go");
  EXPECT_THROW(f.exec->run_all(), ModelError);
}

TEST(Executor, TraceDisabledForThroughput) {
  ExecutorConfig cfg;
  cfg.trace_enabled = false;
  Fixture f(make_counter_domain(), cfg);
  auto h = f.exec->create("Counter");
  f.exec->inject(h, "bump");
  f.exec->run_all();
  EXPECT_EQ(f.exec->trace().size(), 0u);
}

TEST(Executor, DeterministicAcrossRuns) {
  auto run_once = [] {
    Fixture f(make_pingpong_domain());
    auto a = f.exec->create("Relay");
    auto p = f.exec->create("Relay");
    f.exec->database().set_attr(a, AttributeId(1), Value(p));
    f.exec->database().set_attr(p, AttributeId(1), Value(a));
    f.exec->inject(a, "token", {Value(std::int64_t{20})});
    f.exec->run_all();
    return f.exec->trace().to_string();
  };
  EXPECT_EQ(run_once(), run_once());
}

// Property sweep: ping-pong with varying ttl always does ttl+1 dispatches
// and splits hits evenly (odd ttl) per instance.
class PingPongSweep : public ::testing::TestWithParam<int> {};

TEST_P(PingPongSweep, DispatchCountMatchesTtl) {
  int ttl = GetParam();
  Fixture f(make_pingpong_domain());
  auto a = f.exec->create("Relay");
  auto p = f.exec->create("Relay");
  f.exec->database().set_attr(a, AttributeId(1), Value(p));
  f.exec->database().set_attr(p, AttributeId(1), Value(a));
  f.exec->inject(a, "token", {Value(std::int64_t{ttl})});
  EXPECT_EQ(f.exec->run_all(), static_cast<std::size_t>(ttl + 1));
  auto hits_a = std::get<std::int64_t>(f.exec->database().get_attr(a, AttributeId(0)));
  auto hits_p = std::get<std::int64_t>(f.exec->database().get_attr(p, AttributeId(0)));
  EXPECT_EQ(hits_a + hits_p, ttl + 1);
}

INSTANTIATE_TEST_SUITE_P(Ttl, PingPongSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 10, 33, 100));

// --- trace --------------------------------------------------------------------

TEST(Trace, ProjectionFiltersBySubject) {
  Fixture f(make_counter_domain());
  auto h1 = f.exec->create("Counter");
  auto h2 = f.exec->create("Counter");
  f.exec->inject(h1, "bump");
  f.exec->inject(h2, "bump");
  f.exec->inject(h1, "bump");
  f.exec->run_all();
  auto p1 = f.exec->trace().projection(h1);
  auto p2 = f.exec->trace().projection(h2);
  auto count_kind = [](const std::vector<TraceEvent>& v, TraceKind k) {
    return std::count_if(v.begin(), v.end(),
                         [k](const TraceEvent& e) { return e.kind == k; });
  };
  EXPECT_EQ(count_kind(p1, TraceKind::kDispatch), 2);
  EXPECT_EQ(count_kind(p2, TraceKind::kDispatch), 1);
  auto subjects = f.exec->trace().subjects();
  EXPECT_EQ(subjects.size(), 2u);
}

TEST(Trace, LogStatementsRecorded) {
  DomainBuilder b("LogD");
  b.cls("A")
      .attr("x", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1", "log \"x =\", self.x + 1;")
      .transition("S0", "go", "S1");
  Fixture f(b.take());
  auto h = f.exec->create("A");
  f.exec->inject(h, "go");
  f.exec->run_all();
  bool found = false;
  for (const auto& e : f.exec->trace().events()) {
    if (e.kind == TraceKind::kLog && e.text == "x = 1") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace xtsoc::runtime
