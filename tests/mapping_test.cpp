#include <gtest/gtest.h>

#include "xtsoc/mapping/archetype.hpp"
#include "xtsoc/mapping/classrefs.hpp"
#include "xtsoc/mapping/interface.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/mapping/partition.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::mapping {
namespace {

using marks::MarkSet;
using marks::Target;
using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;
using xtuml::ScalarValue;

/// Producer (software candidate) signals Consumer (hardware candidate) with
/// a typed payload including an instance reference; Consumer replies "done".
/// Classes are declared up front, then fleshed out via edit(), because they
/// refer to each other.
std::unique_ptr<Domain> make_domain() {
  DomainBuilder b("Pipe");
  b.cls("Consumer", "CNS");
  b.cls("Producer", "PRD");
  b.edit("Consumer")
      .attr("total", DataType::kInt)
      .event("work", {{"units", DataType::kInt},
                      {"scale", DataType::kReal},
                      b.ref_param("who", "Producer")})
      .state("Ready",
             "self.total = self.total + param.units;\n"
             "generate done(ok: true) to param.who;")
      .transition("Ready", "work", "Ready");
  b.edit("Producer")
      .attr("sent", DataType::kInt)
      .ref_attr("sink", "Consumer")
      .event("kick")
      .event("done", {{"ok", DataType::kBool}})
      .state("Idle")
      .state("Sending",
             "self.sent = self.sent + 1;\n"
             "generate work(units: self.sent, scale: 1.5, who: self) to "
             "self.sink;")
      .state("Waiting")
      .transition("Idle", "kick", "Sending")
      .transition("Sending", "done", "Waiting")
      .transition("Waiting", "kick", "Sending");
  return b.take();
}

struct Compiled {
  std::unique_ptr<Domain> domain;
  std::unique_ptr<oal::CompiledDomain> compiled;

  Compiled() : Compiled(make_domain()) {}
  explicit Compiled(std::unique_ptr<Domain> d) : domain(std::move(d)) {
    DiagnosticSink sink;
    compiled = oal::compile_domain(*domain, sink);
    if (!compiled) throw std::runtime_error(sink.to_string());
  }
};

// --- classrefs ---------------------------------------------------------------

TEST(ClassRefs, DistinguishesTouchFromSignal) {
  Compiled c;
  ClassId producer = c.domain->find_class_id("Producer");
  ClassId consumer = c.domain->find_class_id("Consumer");
  ClassRefs refs = collect_class_refs(*c.compiled, producer);
  // Producer touches only its own data but signals Consumer.
  EXPECT_TRUE(refs.touched.contains(producer));
  EXPECT_FALSE(refs.touched.contains(consumer));
  EXPECT_TRUE(refs.signaled.contains(consumer));
  ASSERT_EQ(refs.generates.size(), 1u);
  EXPECT_EQ(refs.generates.begin()->first, consumer);
}

TEST(ClassRefs, SelectAndRelateAreTouches) {
  DomainBuilder b("D");
  b.cls("A").attr("x", DataType::kInt);
  b.cls("B")
      .event("go")
      .state("S0")
      .state("S1",
             "select any a from instances of A;\n"
             "relate self to a across R1;\n"
             "select one back related by self->A[R1];")
      .transition("S0", "go", "S1");
  b.assoc("R1", "B", "uses", Multiplicity::kZeroOne, "A", "used_by",
          Multiplicity::kZeroOne);
  Compiled c(b.take());
  ClassRefs refs = collect_class_refs(*c.compiled, c.domain->find_class_id("B"));
  EXPECT_TRUE(refs.touched.contains(c.domain->find_class_id("A")));
  EXPECT_EQ(refs.associations.size(), 1u);
}

// --- partition ----------------------------------------------------------------

TEST(Partition, FromMarks) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  EXPECT_TRUE(p.is_hardware(c.domain->find_class_id("Consumer")));
  EXPECT_FALSE(p.is_hardware(c.domain->find_class_id("Producer")));
  EXPECT_EQ(p.hardware().size(), 1u);
  EXPECT_EQ(p.software().size(), 1u);
  EXPECT_FALSE(p.is_pure_software());
  EXPECT_TRUE(p.crosses_boundary(c.domain->find_class_id("Consumer"),
                                 c.domain->find_class_id("Producer")));
}

TEST(Partition, EmptyMarksIsPureSoftware) {
  Compiled c;
  Partition p = Partition::from_marks(*c.domain, MarkSet{});
  EXPECT_TRUE(p.is_pure_software());
}

TEST(ValidatePartition, SignalsMayCross) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  EXPECT_TRUE(validate_partition(*c.compiled, p, sink)) << sink.to_string();
}

TEST(ValidatePartition, DataAccessMayNotCross) {
  DomainBuilder b("D");
  b.cls("Hw").attr("reg", DataType::kInt);
  b.cls("Sw")
      .event("go")
      .state("S0")
      .state("S1", "select any h from instances of Hw;\nh.reg = 1;")
      .transition("S0", "go", "S1");
  Compiled c(b.take());
  MarkSet m;
  m.mark_hardware("Hw");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  EXPECT_FALSE(validate_partition(*c.compiled, p, sink));
  EXPECT_NE(sink.to_string().find("data_cross"), std::string::npos);
}

TEST(ValidatePartition, AssociationsMayNotCross) {
  DomainBuilder b("D");
  b.cls("Hw");
  b.cls("Sw");
  b.assoc("R1", "Hw", "x", Multiplicity::kZeroOne, "Sw", "y",
          Multiplicity::kZeroOne);
  Compiled c(b.take());
  MarkSet m;
  m.mark_hardware("Hw");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  EXPECT_FALSE(validate_partition(*c.compiled, p, sink));
  EXPECT_NE(sink.to_string().find("assoc_cross"), std::string::npos);
}

TEST(ValidatePartition, HardwareStringsRejected) {
  DomainBuilder b("D");
  b.cls("Hw").attr("label", DataType::kString);
  Compiled c(b.take());
  MarkSet m;
  m.mark_hardware("Hw");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  EXPECT_FALSE(validate_partition(*c.compiled, p, sink));
  EXPECT_NE(sink.to_string().find("hw_string"), std::string::npos);
}

TEST(ValidatePartition, HardwareStringLocalsRejected) {
  DomainBuilder b("D");
  b.cls("Hw")
      .event("go")
      .state("S0")
      .state("S1", "s = \"text\";")
      .transition("S0", "go", "S1");
  Compiled c(b.take());
  MarkSet m;
  m.mark_hardware("Hw");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  EXPECT_FALSE(validate_partition(*c.compiled, p, sink));
}

// --- interface synthesis --------------------------------------------------------

TEST(Interface, BoundaryMessagesOnly) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();

  // Two boundary messages: Consumer.work (sw->hw) and Producer.done (hw->sw).
  ASSERT_EQ(spec.message_count(), 2u);
  EXPECT_EQ(spec.count(Direction::kToHardware), 1u);
  EXPECT_EQ(spec.count(Direction::kToSoftware), 1u);

  const MessageLayout* work = spec.find(
      c.domain->find_class_id("Consumer"),
      c.domain->find_class("Consumer")->find_event("work")->id);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->direction, Direction::kToHardware);
  // _target(48) + units(32) + scale(64) + who(48)
  ASSERT_EQ(work->fields.size(), 4u);
  EXPECT_EQ(work->payload_bits, 48 + 32 + 64 + 48);
  EXPECT_EQ(work->fields[1].offset_bits, 48);
  EXPECT_EQ(work->fields[2].offset_bits, 80);
}

TEST(Interface, PureSoftwareHasNoMessages) {
  Compiled c;
  Partition p = Partition::from_marks(*c.domain, MarkSet{});
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, MarkSet{}, sink);
  EXPECT_EQ(spec.message_count(), 0u);
}

TEST(Interface, IntWidthMarkNarrowsFields) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kIntWidth, ScalarValue(std::int64_t{16}));
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  const MessageLayout* work = spec.find(
      c.domain->find_class_id("Consumer"),
      c.domain->find_class("Consumer")->find_event("work")->id);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->fields[1].width_bits, 16);
}

TEST(Interface, DigestStableAndSensitive) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec a = synthesize_interface(*c.compiled, p, m, sink);
  InterfaceSpec b = synthesize_interface(*c.compiled, p, m, sink);
  EXPECT_EQ(a.digest(*c.domain), b.digest(*c.domain));

  // Changing a width mark changes the interface digest.
  MarkSet m2 = m;
  m2.set_class_mark("Consumer", marks::kIntWidth, ScalarValue(std::int64_t{16}));
  InterfaceSpec n = synthesize_interface(*c.compiled, p, m2, sink);
  EXPECT_NE(a.digest(*c.domain), n.digest(*c.domain));
}

TEST(Interface, PayloadRoundTrip) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  const MessageLayout* work = spec.find(
      c.domain->find_class_id("Consumer"),
      c.domain->find_class("Consumer")->find_event("work")->id);
  ASSERT_NE(work, nullptr);

  runtime::InstanceHandle target{c.domain->find_class_id("Consumer"), 3, 1};
  runtime::InstanceHandle who{c.domain->find_class_id("Producer"), 9, 2};
  std::vector<runtime::Value> args = {
      runtime::Value(std::int64_t{-12345}), runtime::Value(2.75),
      runtime::Value(who)};
  auto bytes = encode_payload(*work, target, args);
  EXPECT_EQ(bytes.size(), static_cast<std::size_t>(work->payload_bytes()));

  DecodedPayload d = decode_payload(*work, bytes);
  EXPECT_EQ(d.target, target);
  ASSERT_EQ(d.args.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(d.args[0]), -12345);
  EXPECT_DOUBLE_EQ(std::get<double>(d.args[1]), 2.75);
  EXPECT_EQ(std::get<runtime::InstanceHandle>(d.args[2]), who);
}

TEST(Interface, NullHandleRoundTrip) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  const MessageLayout* work = &spec.messages()[0];
  std::vector<runtime::Value> args = {
      runtime::Value(std::int64_t{1}), runtime::Value(0.0),
      runtime::Value(runtime::InstanceHandle::null())};
  auto bytes = encode_payload(*work, runtime::InstanceHandle::null(), args);
  DecodedPayload d = decode_payload(*work, bytes);
  EXPECT_TRUE(d.target.is_null());
  EXPECT_TRUE(std::get<runtime::InstanceHandle>(d.args[2]).is_null());
}

TEST(Interface, NarrowIntSignExtends) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kIntWidth, ScalarValue(std::int64_t{8}));
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  const MessageLayout* work = &spec.messages()[0];
  std::vector<runtime::Value> args = {
      runtime::Value(std::int64_t{-5}), runtime::Value(0.0),
      runtime::Value(runtime::InstanceHandle::null())};
  auto bytes = encode_payload(*work, runtime::InstanceHandle::null(), args);
  DecodedPayload d = decode_payload(*work, bytes);
  EXPECT_EQ(std::get<std::int64_t>(d.args[0]), -5);
}

TEST(Interface, EncodeArgCountMismatchThrows) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  Partition p = Partition::from_marks(*c.domain, m);
  DiagnosticSink sink;
  InterfaceSpec spec = synthesize_interface(*c.compiled, p, m, sink);
  EXPECT_THROW(
      encode_payload(spec.messages()[0], runtime::InstanceHandle::null(), {}),
      std::runtime_error);
}

// --- archetype engine -------------------------------------------------------------

TEST(Archetype, ScalarSubstitution) {
  DiagnosticSink sink;
  Bindings b;
  b.set("name", "Oven");
  EXPECT_EQ(render_archetype("class ${name} {};", b, sink), "class Oven {};");
  EXPECT_FALSE(sink.has_errors());
}

TEST(Archetype, UnknownVarLeftVisible) {
  DiagnosticSink sink;
  Bindings b;
  EXPECT_EQ(render_archetype("${missing}", b, sink), "${missing}");
}

TEST(Archetype, ForOverStrings) {
  DiagnosticSink sink;
  Bindings b;
  b.set_list("states", {std::string("Idle"), std::string("Busy")});
  EXPECT_EQ(render_archetype("%for s in states%[${s}]%end%", b, sink),
            "[Idle][Busy]");
}

TEST(Archetype, ForOverRecords) {
  DiagnosticSink sink;
  Bindings b;
  b.set_list("fields", {Record{{"name", "x"}, {"type", "int"}},
                        Record{{"name", "y"}, {"type", "bool"}}});
  EXPECT_EQ(
      render_archetype("%for f in fields%${f.type} ${f.name};\n%end%", b, sink),
      "int x;\nbool y;\n");
}

TEST(Archetype, NestedFor) {
  DiagnosticSink sink;
  Bindings b;
  b.set_list("outer", {std::string("a"), std::string("b")});
  b.set_list("inner", {std::string("1"), std::string("2")});
  EXPECT_EQ(
      render_archetype("%for o in outer%%for i in inner%${o}${i} %end%%end%",
                       b, sink),
      "a1 a2 b1 b2 ");
}

TEST(Archetype, IfConditional) {
  DiagnosticSink sink;
  Bindings b;
  b.set("hw", "yes");
  b.set("sw", "");
  EXPECT_EQ(render_archetype("%if hw%H%end%%if sw%S%end%", b, sink), "H");
}

TEST(Archetype, UnknownListReported) {
  DiagnosticSink sink;
  Bindings b;
  render_archetype("%for x in nope%${x}%end%", b, sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Archetype, UnclosedForReported) {
  DiagnosticSink sink;
  Bindings b;
  b.set_list("xs", {std::string("1")});
  render_archetype("%for x in xs%${x}", b, sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Archetype, LiteralPercentSurvives) {
  DiagnosticSink sink;
  Bindings b;
  EXPECT_EQ(render_archetype("duty is 100% done", b, sink), "duty is 100% done");
}

// --- map_system -------------------------------------------------------------------

TEST(MapSystem, EndToEnd) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kClockDomain, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Consumer", marks::kMaxInstances, ScalarValue(std::int64_t{8}));
  m.set_domain_mark(marks::kBusLatency, ScalarValue(std::int64_t{6}));
  DiagnosticSink sink;
  auto sys = map_system(*c.compiled, m, sink);
  ASSERT_NE(sys, nullptr) << sink.to_string();
  EXPECT_EQ(sys->bus_latency(), 6);
  const ClassMapping& cm = sys->mapping_of(c.domain->find_class_id("Consumer"));
  EXPECT_EQ(cm.target, Target::kHardware);
  EXPECT_EQ(cm.clock_domain, 1);
  EXPECT_EQ(cm.max_instances, 8);
  EXPECT_EQ(sys->interface().message_count(), 2u);
}

TEST(MapSystem, RejectsBadMarks) {
  Compiled c;
  MarkSet m;
  m.mark_hardware("Nope");
  DiagnosticSink sink;
  EXPECT_EQ(map_system(*c.compiled, m, sink), nullptr);
}

TEST(MapSystem, RejectsInvalidPartition) {
  DomainBuilder b("D");
  b.cls("Hw").attr("label", DataType::kString);
  Compiled c(b.take());
  MarkSet m;
  m.mark_hardware("Hw");
  DiagnosticSink sink;
  EXPECT_EQ(map_system(*c.compiled, m, sink), nullptr);
}

TEST(MapSystem, RepartitionOnlyMovesMarks) {
  // The repartitioning workflow: same compiled model, two mark sets, two
  // mapped systems. The model is untouched; only marks moved.
  Compiled c;
  MarkSet hw_consumer;
  hw_consumer.mark_hardware("Consumer");
  MarkSet hw_producer;
  hw_producer.mark_hardware("Producer");

  DiagnosticSink sink;
  auto sys1 = map_system(*c.compiled, hw_consumer, sink);
  auto sys2 = map_system(*c.compiled, hw_producer, sink);
  ASSERT_NE(sys1, nullptr) << sink.to_string();
  ASSERT_NE(sys2, nullptr) << sink.to_string();

  EXPECT_TRUE(sys1->partition().is_hardware(c.domain->find_class_id("Consumer")));
  EXPECT_TRUE(sys2->partition().is_hardware(c.domain->find_class_id("Producer")));

  auto diff = MarkSet::diff(hw_consumer, hw_producer);
  EXPECT_EQ(diff.size(), 2u);  // one mark removed, one added
}

}  // namespace
}  // namespace xtsoc::mapping
