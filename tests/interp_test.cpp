// Focused semantics tests for the OAL interpreter: every operator, every
// statement kind, and the model-level error paths, exercised through a
// one-class harness that runs a snippet and inspects the resulting
// attributes.

#include <gtest/gtest.h>

#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::runtime {
namespace {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;

/// Harness: class Probe with attributes of every type; the snippet under
/// test is the action of the state entered on "go". A second class "Peer"
/// (with association R1) is available for instance-level statements.
class InterpHarness {
public:
  explicit InterpHarness(const std::string& snippet) {
    DomainBuilder b("H");
    b.cls("Peer", "PEER")
        .attr("tag", DataType::kInt)
        .event("poke")
        .state("P0")
        .state("P1", "self.tag = self.tag + 100;")
        .transition("P0", "poke", "P1");
    b.cls("Probe", "PRB")
        .attr("i", DataType::kInt)
        .attr("r", DataType::kReal)
        .attr("s", DataType::kString)
        .attr("flag", DataType::kBool)
        .ref_attr("ref", "Peer")
        .event("go", {{"n", DataType::kInt}})
        .state("S0")
        .state("S1", snippet)
        .transition("S0", "go", "S1");
    b.assoc("R1", "Probe", "uses", Multiplicity::kZeroMany, "Peer", "used_by",
            Multiplicity::kZeroMany);
    domain_ = b.take();
    DiagnosticSink sink;
    compiled_ = oal::compile_domain(*domain_, sink);
    if (!compiled_) throw std::runtime_error(sink.to_string());
    exec_ = std::make_unique<Executor>(*compiled_);
    probe_ = exec_->create("Probe");
  }

  /// Run the snippet (event parameter n = `n`) to completion.
  void run(std::int64_t n = 0) {
    exec_->inject(probe_, "go", {Value(n)});
    exec_->run_all();
  }

  Value attr(const char* name) const {
    const auto* a = domain_->find_class("Probe")->find_attribute(name);
    return exec_->database().get_attr(probe_, a->id);
  }
  std::int64_t i() const { return std::get<std::int64_t>(attr("i")); }
  double r() const { return std::get<double>(attr("r")); }
  std::string s() const { return std::get<std::string>(attr("s")); }
  bool flag() const { return std::get<bool>(attr("flag")); }

  Executor& exec() { return *exec_; }
  InstanceHandle probe() const { return probe_; }
  const Domain& domain() const { return *domain_; }

private:
  std::unique_ptr<Domain> domain_;
  std::unique_ptr<oal::CompiledDomain> compiled_;
  std::unique_ptr<Executor> exec_;
  InstanceHandle probe_;
};

// --- arithmetic -----------------------------------------------------------------

struct ArithCase {
  const char* expr;
  std::int64_t want;
};

class IntArith : public ::testing::TestWithParam<ArithCase> {};

TEST_P(IntArith, Evaluates) {
  InterpHarness h(std::string("self.i = ") + GetParam().expr + ";");
  h.run();
  EXPECT_EQ(h.i(), GetParam().want) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IntArith,
    ::testing::Values(
        ArithCase{"2 + 3", 5}, ArithCase{"2 - 5", -3},
        ArithCase{"4 * 6", 24}, ArithCase{"17 / 5", 3},
        ArithCase{"-17 / 5", -3},                 // C-style truncation
        ArithCase{"17 % 5", 2}, ArithCase{"-17 % 5", -2},
        ArithCase{"2 + 3 * 4", 14}, ArithCase{"(2 + 3) * 4", 20},
        ArithCase{"10 - 2 - 3", 5},              // left associative
        ArithCase{"-(3 + 4)", -7},
        ArithCase{"-(-5)", 5}));  // note: "--" itself starts an OAL comment

TEST(Interp, RealArithmeticAndWidening) {
  InterpHarness h("self.r = 1 / 2 + 0.25;\n"   // int div first: 0 + 0.25
                  "self.r = self.r * 4;");      // widened int
  h.run();
  EXPECT_DOUBLE_EQ(h.r(), 1.0);
}

TEST(Interp, RealDivisionIsIeee) {
  InterpHarness h("self.r = 1.0 / 4;");
  h.run();
  EXPECT_DOUBLE_EQ(h.r(), 0.25);
}

TEST(Interp, DivisionByZeroThrows) {
  InterpHarness h("self.i = 1 / (self.i - 0);");
  EXPECT_THROW(h.run(), ModelError);
}

TEST(Interp, ModuloByZeroThrows) {
  InterpHarness h("self.i = 1 % self.i;");
  EXPECT_THROW(h.run(), ModelError);
}

// --- comparisons & logic ----------------------------------------------------------

struct BoolCase {
  const char* expr;
  bool want;
};

class BoolEval : public ::testing::TestWithParam<BoolCase> {};

TEST_P(BoolEval, Evaluates) {
  InterpHarness h(std::string("self.flag = ") + GetParam().expr + ";");
  h.run();
  EXPECT_EQ(h.flag(), GetParam().want) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BoolEval,
    ::testing::Values(
        BoolCase{"1 < 2", true}, BoolCase{"2 <= 2", true},
        BoolCase{"3 > 3", false}, BoolCase{"3 >= 3", true},
        BoolCase{"1 == 1.0", true},               // numeric cross-type
        BoolCase{"1 != 1.5", true},
        BoolCase{"\"a\" < \"b\"", true},
        BoolCase{"\"ab\" == \"ab\"", true},
        BoolCase{"true and false", false},
        BoolCase{"true or false", true},
        BoolCase{"not true", false},
        BoolCase{"not (1 > 2) and 3 == 3", true}));

TEST(Interp, ShortCircuitPreventsSideConditions) {
  // Right operand would divide by zero; short circuit must skip it.
  InterpHarness h("self.flag = false and (1 / self.i == 1);");
  EXPECT_NO_THROW(h.run());
  EXPECT_FALSE(h.flag());
  InterpHarness h2("self.flag = true or (1 / self.i == 1);");
  EXPECT_NO_THROW(h2.run());
  EXPECT_TRUE(h2.flag());
}

// --- strings ------------------------------------------------------------------------

TEST(Interp, StringConcatAndCompare) {
  InterpHarness h("self.s = \"foo\" + \"bar\";\n"
                  "self.flag = self.s == \"foobar\";");
  h.run();
  EXPECT_EQ(h.s(), "foobar");
  EXPECT_TRUE(h.flag());
}

// --- params, locals, control flow ------------------------------------------------------

TEST(Interp, ParamAccess) {
  InterpHarness h("self.i = param.n * 2;");
  h.run(21);
  EXPECT_EQ(h.i(), 42);
}

TEST(Interp, ReadOfUnsetLocalThrows) {
  // `x` is declared by the assignment in the never-taken branch, so the
  // read finds an unset slot.
  InterpHarness h("if (param.n > 0)\n  x = 1;\nend if;\nself.i = x;");
  EXPECT_THROW(h.run(0), ModelError);
}

TEST(Interp, WhileAndBreakContinue) {
  InterpHarness h(
      "acc = 0;\n"
      "k = 0;\n"
      "while (true)\n"
      "  k = k + 1;\n"
      "  if (k % 2 == 0)\n"
      "    continue;\n"
      "  end if;\n"
      "  if (k > 10)\n"
      "    break;\n"
      "  end if;\n"
      "  acc = acc + k;\n"
      "end while;\n"
      "self.i = acc;");  // 1+3+5+7+9 = 25
  h.run();
  EXPECT_EQ(h.i(), 25);
}

TEST(Interp, ReturnStopsAction) {
  InterpHarness h("self.i = 1;\nreturn;\nself.i = 2;");
  h.run();
  EXPECT_EQ(h.i(), 1);
}

TEST(Interp, NestedLoopBreakOnlyInner) {
  InterpHarness h(
      "total = 0;\n"
      "a = 0;\n"
      "while (a < 3)\n"
      "  a = a + 1;\n"
      "  b = 0;\n"
      "  while (true)\n"
      "    b = b + 1;\n"
      "    if (b == 2)\n"
      "      break;\n"
      "    end if;\n"
      "  end while;\n"
      "  total = total + b;\n"
      "end while;\n"
      "self.i = total;");
  h.run();
  EXPECT_EQ(h.i(), 6);
}

// --- instances, selects, relates --------------------------------------------------------

TEST(Interp, CreateSelectRelateDeleteLifecycle) {
  InterpHarness h(
      "create object instance p of Peer;\n"
      "p.tag = 7;\n"
      "relate self to p across R1;\n"
      "select one back related by self->Peer[R1];\n"
      "self.i = back.tag;\n"
      "unrelate self from p across R1;\n"
      "delete object instance p;\n"
      "select any gone from instances of Peer;\n"
      "self.flag = empty gone;");
  h.run();
  EXPECT_EQ(h.i(), 7);
  EXPECT_TRUE(h.flag());
}

TEST(Interp, SelectManyWhereAndCardinality) {
  InterpHarness h(
      "k = 0;\n"
      "while (k < 5)\n"
      "  create object instance p of Peer;\n"
      "  p.tag = k;\n"
      "  k = k + 1;\n"
      "end while;\n"
      "select many evens from instances of Peer where (selected.tag % 2 == 0);\n"
      "self.i = cardinality evens;\n"
      "total = 0;\n"
      "for each p in evens\n"
      "  total = total + p.tag;\n"
      "end for;\n"
      "self.r = total;");
  h.run();
  EXPECT_EQ(h.i(), 3);           // tags 0, 2, 4
  EXPECT_DOUBLE_EQ(h.r(), 6.0);  // 0+2+4
}

TEST(Interp, SelectAnyEmptyGivesNullRef) {
  InterpHarness h("select any p from instances of Peer;\n"
                  "self.flag = empty p;\n"
                  "self.i = cardinality p;");
  h.run();
  EXPECT_TRUE(h.flag());
  EXPECT_EQ(h.i(), 0);
}

TEST(Interp, NotEmptyOnLiveInstance) {
  InterpHarness h("create object instance p of Peer;\n"
                  "self.flag = not_empty p;\n"
                  "self.i = cardinality p;");
  h.run();
  EXPECT_TRUE(h.flag());
  EXPECT_EQ(h.i(), 1);
}

TEST(Interp, AttrAccessOnNullRefThrows) {
  InterpHarness h("self.i = self.ref.tag;");  // ref defaults to null
  EXPECT_THROW(h.run(), ModelError);
}

TEST(Interp, GenerateToNullThrows) {
  InterpHarness h("generate poke() to self.ref;");
  EXPECT_THROW(h.run(), ModelError);
}

TEST(Interp, GenerateReachesPeerStateMachine) {
  InterpHarness h("create object instance p of Peer;\n"
                  "p.tag = 1;\n"
                  "self.ref = p;\n"
                  "generate poke() to p;");
  h.run();
  // Peer's action (tag += 100) ran after the probe's action completed.
  auto peers = h.exec().database().all_of(h.domain().find_class_id("Peer"));
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(h.exec().database().get_attr(
                peers[0], AttributeId(0))),
            101);
}

TEST(Interp, ForEachOverSnapshotSurvivesMutation) {
  // Deleting instances inside the loop must not derail iteration (the set
  // is a snapshot); dead handles reached later still exist in the set but
  // the loop body guards with not_empty.
  InterpHarness h(
      "k = 0;\n"
      "while (k < 3)\n"
      "  create object instance p of Peer;\n"
      "  k = k + 1;\n"
      "end while;\n"
      "select many all from instances of Peer;\n"
      "n = 0;\n"
      "for each p in all\n"
      "  if (not_empty p)\n"
      "    delete object instance p;\n"
      "    n = n + 1;\n"
      "  end if;\n"
      "end for;\n"
      "self.i = n;");
  h.run();
  EXPECT_EQ(h.i(), 3);
  EXPECT_EQ(h.exec().database().live_count(h.domain().find_class_id("Peer")),
            0u);
}

TEST(Interp, RelateDuplicateThrows) {
  InterpHarness h("create object instance p of Peer;\n"
                  "relate self to p across R1;\n"
                  "relate self to p across R1;");
  EXPECT_THROW(h.run(), ModelError);
}

TEST(Interp, UnrelateNonexistentThrows) {
  InterpHarness h("create object instance p of Peer;\n"
                  "unrelate self from p across R1;");
  EXPECT_THROW(h.run(), ModelError);
}

TEST(Interp, SelfEqualityAndRefRoundTrip) {
  InterpHarness h("self.ref = self.ref;\n"  // null -> null
                  "create object instance p of Peer;\n"
                  "self.ref = p;\n"
                  "self.flag = self.ref == p;");
  h.run();
  EXPECT_TRUE(h.flag());
}

}  // namespace
}  // namespace xtsoc::runtime
