// Property-based conformance testing: randomized models x randomized
// partitions x randomized workloads, all seeded and reproducible.
//
// Generator invariants (so that the STRICT projection equivalence is the
// right relation — see DESIGN.md §6):
//   * the classes form a forwarding chain: every class receives signals
//     from exactly one sender (single-sender topology);
//   * all data is int-typed (hardware-safe), actions are arithmetic plus a
//     conditional forward;
//   * every state machine is a cycle over its states on one event.
//
// Property: for ANY mark assignment, the partitioned co-simulation produces
// per-instance projections identical to the abstract execution, identical
// final states, and a causal abstract trace.

#include <gtest/gtest.h>

#include "xtsoc/common/rng.hpp"
#include "xtsoc/core/project.hpp"
#include "xtsoc/oal/parser.hpp"
#include "xtsoc/oal/printer.hpp"
#include "xtsoc/text/xtm.hpp"
#include "xtsoc/verify/testcase.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc {
namespace {

using runtime::Value;
using xtuml::DataType;

struct GeneratedModel {
  std::unique_ptr<xtuml::Domain> domain;
  int n_classes = 0;
};

/// Random arithmetic expression over self.a, self.b and param.v.
std::string random_expr(Rng& rng) {
  static const char* kAtoms[] = {"self.a", "self.b", "param.v", "3", "7", "11"};
  static const char* kOps[] = {" + ", " - ", " * "};
  std::string e = kAtoms[rng.below(6)];
  int terms = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < terms; ++i) {
    e += kOps[rng.below(3)];
    e += kAtoms[rng.below(6)];
  }
  // Keep values bounded so repeated multiplication cannot overflow.
  return "(" + e + ") % 9973";
}

GeneratedModel generate_model(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedModel gm;
  gm.n_classes = static_cast<int>(rng.range(3, 6));

  xtuml::DomainBuilder b("Gen");
  for (int i = 0; i < gm.n_classes; ++i) b.cls("C" + std::to_string(i));

  for (int i = 0; i < gm.n_classes; ++i) {
    auto cb = b.edit("C" + std::to_string(i));
    cb.attr("a", DataType::kInt).attr("b", DataType::kInt);
    const bool terminal = i == gm.n_classes - 1;
    if (!terminal) cb.ref_attr("next", "C" + std::to_string(i + 1));
    cb.event("msg", {{"v", DataType::kInt}});

    int n_states = static_cast<int>(rng.range(1, 3));
    for (int s = 0; s < n_states; ++s) {
      std::string action;
      action += "self.a = " + random_expr(rng) + ";\n";
      if (rng.chance(0.7)) {
        action += "self.b = " + random_expr(rng) + ";\n";
      }
      if (rng.chance(0.5)) {
        action += "if (param.v % 3 == 0)\n  self.b = self.b + 1;\nend if;\n";
      }
      if (!terminal) {
        // Forward (sometimes conditionally, but deterministically).
        if (rng.chance(0.3)) {
          action += "if (param.v % 2 == 0)\n"
                    "  generate msg(v: " + random_expr(rng) +
                    ") to self.next;\n"
                    "else\n"
                    "  generate msg(v: param.v + 1) to self.next;\n"
                    "end if;\n";
        } else {
          action += "generate msg(v: " + random_expr(rng) +
                    ") to self.next;\n";
        }
      }
      cb.state("S" + std::to_string(s), action);
    }
    for (int s = 0; s < n_states; ++s) {
      cb.transition("S" + std::to_string(s), "msg",
                    "S" + std::to_string((s + 1) % n_states));
    }
  }
  gm.domain = b.take();
  return gm;
}

marks::MarkSet random_marks(std::uint64_t seed, int n_classes) {
  Rng rng(seed * 7919 + 13);
  marks::MarkSet m;
  for (int i = 0; i < n_classes; ++i) {
    if (rng.chance(0.5)) m.mark_hardware("C" + std::to_string(i));
  }
  if (rng.chance(0.5)) {
    m.set_domain_mark(marks::kBusLatency,
                      xtuml::ScalarValue(rng.range(0, 8)));
  }
  return m;
}

verify::TestCase random_stimuli(std::uint64_t seed, int n_classes) {
  Rng rng(seed * 104729 + 7);
  verify::TestCase t;
  t.name = "property workload";
  // Population: one instance per class, chained via 'next'.
  for (int i = 0; i < n_classes; ++i) {
    verify::InstanceSpec spec;
    spec.name = "c" + std::to_string(i);
    spec.cls = "C" + std::to_string(i);
    if (i + 1 < n_classes) {
      spec.attrs.push_back(
          {"next", verify::RefByName{"c" + std::to_string(i + 1)}});
    }
    t.population.push_back(std::move(spec));
  }
  int msgs = static_cast<int>(rng.range(4, 24));
  for (int i = 0; i < msgs; ++i) {
    t.stimuli.push_back({"c0", "msg", {Value(rng.range(0, 1000))}, 0});
  }
  return t;
}

class RandomModelConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelConformance, EveryPartitionPreservesBehaviour) {
  std::uint64_t seed = GetParam();
  GeneratedModel gm = generate_model(seed);
  marks::MarkSet marks = random_marks(seed, gm.n_classes);
  std::string marks_desc = marks.to_text();

  DiagnosticSink sink;
  auto project =
      core::Project::from_domain(std::move(gm.domain), std::move(marks), sink);
  ASSERT_NE(project, nullptr) << "seed " << seed << ":\n" << sink.to_string();

  verify::TestCase test = random_stimuli(seed, gm.n_classes);
  verify::ConformanceReport cr = project->run_conformance(test);
  EXPECT_TRUE(cr.abstract_run.passed)
      << "seed " << seed << "\n" << cr.abstract_run.to_string();
  EXPECT_TRUE(cr.cosim_run.passed)
      << "seed " << seed << "\n" << cr.cosim_run.to_string();
  EXPECT_TRUE(cr.equivalence.equivalent)
      << "seed " << seed << " marks:\n" << marks_desc << "\n"
      << cr.equivalence.to_string();

  // Causality on a fresh abstract run.
  verify::AbstractRunner abs(project->compiled());
  abs.run(test);
  std::string err;
  EXPECT_TRUE(verify::check_causality(abs.executor().trace(), &err))
      << "seed " << seed << ": " << err;

  // Final states agree too (implied by projections here, but checked via
  // the independent database-level comparison).
  verify::CosimRunner part(project->system());
  part.run(test);
  auto finals = verify::compare_final_states(
      abs.executor().database(), {&part.cosim().hw_executor().database(),
                                  &part.cosim().sw_executor().database()});
  EXPECT_TRUE(finals.equivalent)
      << "seed " << seed << "\n" << finals.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelConformance,
                         ::testing::Range<std::uint64_t>(1, 25));

/// The generated model must also survive the full text and codegen paths.
class RandomModelToolchain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelToolchain, RoundTripsAndGenerates) {
  std::uint64_t seed = GetParam();
  GeneratedModel gm = generate_model(seed);
  marks::MarkSet marks = random_marks(seed, gm.n_classes);

  // xtm round trip.
  std::string xtm = text::write_xtm(*gm.domain);
  DiagnosticSink sink;
  auto project = core::Project::from_xtm(xtm, marks.to_text(), sink);
  ASSERT_NE(project, nullptr) << "seed " << seed << ":\n" << sink.to_string()
                              << "\n" << xtm;
  EXPECT_EQ(project->domain().class_count(),
            static_cast<std::size_t>(gm.n_classes));

  // Codegen of both halves.
  codegen::Output out = project->generate_all(sink);
  EXPECT_FALSE(sink.has_errors()) << "seed " << seed << "\n" << sink.to_string();
  EXPECT_GT(out.total_lines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelToolchain,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- parser robustness: hostile input must produce diagnostics, never UB ------

std::string random_garbage(Rng& rng, std::size_t len) {
  static const char* kTokens[] = {
      "select", "generate", "if", "end", "while", "for", "each", "create",
      "delete", "relate", "self", "param", ".", ";", "(", ")", "[", "]",
      "->", "=", "==", "+", "-", "*", "/", "%", "\"str", "\"s\"", "123",
      "4.5", "x", "y", "Class", "R1", "where", "to", "across", "{", "}",
      "\n", "@", "~", "--", "0x", "..", ":::"};
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kTokens[rng.below(sizeof(kTokens) / sizeof(kTokens[0]))];
    out += ' ';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, OalParserNeverCrashes) {
  Rng rng(GetParam() * 31 + 7);
  for (int round = 0; round < 50; ++round) {
    std::string src = random_garbage(rng, rng.below(40) + 1);
    DiagnosticSink sink;
    oal::Block b = oal::parse(src, sink);
    // Whatever came back must survive printing too.
    std::string printed = oal::print(b);
    (void)printed;
  }
}

TEST_P(ParserFuzz, XtmParserNeverCrashes) {
  Rng rng(GetParam() * 97 + 3);
  static const char* kLines[] = {
      "domain D", "class A", "class", "end", "attr x : int = 5",
      "attr y : ref", "attr : int", "event e(a : int, b : )", "state S {",
      "}", "transition A on e -> B", "initial", "assoc R1 A x 1 -- B y *",
      "on_unexpected maybe", "garbage line here", "attr z : real = 1.2.3",
      "  state T final {", "event ()"};
  for (int round = 0; round < 50; ++round) {
    std::string src;
    std::size_t n = rng.below(15) + 1;
    for (std::size_t i = 0; i < n; ++i) {
      src += kLines[rng.below(sizeof(kLines) / sizeof(kLines[0]))];
      src += '\n';
    }
    DiagnosticSink sink;
    auto d = text::parse_xtm(src, sink);
    if (d != nullptr) {
      // Anything accepted must also re-serialize without crashing.
      std::string out = text::write_xtm(*d);
      (void)out;
    }
  }
}

TEST_P(ParserFuzz, MarksParserNeverCrashes) {
  Rng rng(GetParam() * 13 + 1);
  static const char* kPieces[] = {"A.",    "domain.", "=",      "true",
                                  "1.5",   "\"x",     "isHard", "#c",
                                  "..",    "B.k = ",  "1e99",   " "};
  for (int round = 0; round < 50; ++round) {
    std::string src;
    std::size_t n = rng.below(10) + 1;
    for (std::size_t i = 0; i < n; ++i) {
      src += kPieces[rng.below(sizeof(kPieces) / sizeof(kPieces[0]))];
      if (rng.chance(0.4)) src += '\n';
    }
    DiagnosticSink sink;
    marks::MarkSet m = marks::MarkSet::from_text(src, sink);
    (void)m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace xtsoc
