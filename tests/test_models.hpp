// Shared model-building helpers for tests and benchmarks.
#pragma once

#include <memory>
#include <stdexcept>

#include "xtsoc/marks/marks.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::testing {

/// Producer -> Consumer pipeline with a cross-class reply. Producer counts
/// kicks; Consumer accumulates units and replies done(ok). The `who`
/// parameter carries an instance reference across the (potential) boundary.
inline std::unique_ptr<xtuml::Domain> make_pipeline_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Pipe");
  b.cls("Consumer", "CNS");
  b.cls("Producer", "PRD");
  b.edit("Consumer")
      .attr("total", DataType::kInt)
      .event("work", {{"units", DataType::kInt},
                      {"scale", DataType::kReal},
                      b.ref_param("who", "Producer")})
      .state("Ready",
             "self.total = self.total + param.units;\n"
             "generate done(ok: true) to param.who;")
      .transition("Ready", "work", "Ready");
  b.edit("Producer")
      .attr("sent", DataType::kInt)
      .attr("acks", DataType::kInt)
      .ref_attr("sink", "Consumer")
      .event("kick")
      .event("done", {{"ok", DataType::kBool}})
      .state("Idle")
      .state("Sending",
             "self.sent = self.sent + 1;\n"
             "generate work(units: self.sent, scale: 1.5, who: self) to "
             "self.sink;")
      .state("Waiting", "self.acks = self.acks + 1;")
      .transition("Idle", "kick", "Sending")
      .transition("Sending", "done", "Waiting")
      .transition("Waiting", "kick", "Sending");
  return b.take();
}

/// A compiled model plus its mapped system for a given mark set.
struct MappedFixture {
  std::unique_ptr<xtuml::Domain> domain;
  std::unique_ptr<oal::CompiledDomain> compiled;
  marks::MarkSet marks;
  std::unique_ptr<mapping::MappedSystem> system;

  MappedFixture(std::unique_ptr<xtuml::Domain> d, marks::MarkSet m)
      : domain(std::move(d)), marks(std::move(m)) {
    DiagnosticSink sink;
    compiled = oal::compile_domain(*domain, sink);
    if (!compiled) throw std::runtime_error("compile: " + sink.to_string());
    system = mapping::map_system(*compiled, marks, sink);
    if (!system) throw std::runtime_error("map: " + sink.to_string());
  }
};

}  // namespace xtsoc::testing
