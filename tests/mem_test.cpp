// xtsoc::mem — the mark-driven memory hierarchy.
//
// The contracts under test, in order:
//   * the coherence wire format round-trips and its opcode space can never
//     collide with model signals or synthetic traffic;
//   * the FUNCTIONAL layer's visibility rule: a store issued at cycle c is
//     forwarded to its own domain immediately and to every other domain at
//     exactly c + L, with same-cycle stores ordered by (tag, issue seq);
//   * the TIMING layer walks the full MESI grid — cold fill to E, silent
//     E->M upgrade, read-sharing downgrade (M flushes, both end S),
//     write invalidation, dirty-victim eviction, uncached mode — with
//     coherence messages as real fabric frames;
//   * end to end, OAL `mem.read`/`mem.write` move values between mesh
//     tiles, byte-identically at every threads x window x faults setting;
//   * snapshots carry the hierarchy (restore across thread counts) and a
//     mem-world snapshot refuses to restore into a memory-less world;
//   * a world WITHOUT memory marks is pinned: no mem system, no "memory"
//     report section, and a golden fingerprint over its traces;
//   * the noc TrafficGen `memory` pattern drives a real directory.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/mem/mem.hpp"
#include "xtsoc/mem/wire.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/noc/traffic.hpp"
#include "xtsoc/snap/snapshot.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::mem {
namespace {

using cosim::CoSimConfig;
using cosim::CoSimulation;
using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using xtuml::DataType;
using xtuml::ScalarValue;

// --- wire format ---------------------------------------------------------------

TEST(MemWire, RoundTripAllFields) {
  auto p = wire::encode(wire::kData, /*aux=*/2, /*src_tile=*/5,
                        /*line=*/-7, /*pad_to=*/64);
  EXPECT_EQ(p.size(), 64u);
  wire::Decoded d = wire::decode(p);
  EXPECT_EQ(d.type, wire::kData);
  EXPECT_EQ(d.aux, 2);
  EXPECT_EQ(d.src_tile, 5);
  EXPECT_EQ(d.line, -7);

  auto q = wire::encode(wire::kGetS, 0, 300, 0x123456789abcLL);
  EXPECT_EQ(q.size(), wire::kHeaderBytes);
  wire::Decoded e = wire::decode(q);
  EXPECT_EQ(e.type, wire::kGetS);
  EXPECT_EQ(e.src_tile, 300);
  EXPECT_EQ(e.line, 0x123456789abcLL);
}

TEST(MemWire, OpcodeSpaceDisjointFromModelTraffic) {
  for (wire::Msg m : {wire::kGetS, wire::kGetM, wire::kPutM, wire::kInv,
                      wire::kInvAck, wire::kData}) {
    EXPECT_TRUE(wire::is_coherence(wire::opcode(m)));
  }
  // Model signal opcodes are small event indices; synthetic traffic uses
  // (src << 16) | seq with src bounded by the mesh size. Neither can reach
  // the upper-10-bits-set range.
  EXPECT_FALSE(wire::is_coherence(0));
  EXPECT_FALSE(wire::is_coherence(42));
  EXPECT_FALSE(wire::is_coherence((1023u << 16) | 0xffffu));
}

// --- functional layer ----------------------------------------------------------

MemConfig functional_config() {
  MemConfig c;
  c.dram_tile = 3;
  c.lookahead = 8;
  return c;
}

TEST(MemFunctional, UnwrittenAddressReadsZero) {
  System sys(functional_config(), nullptr);
  sys.add_domain(0, nullptr);
  EXPECT_EQ(sys.read(0, 0, 12345), 0);
}

TEST(MemFunctional, OwnStoreForwardsImmediatelyOthersWaitLookahead) {
  System sys(functional_config(), nullptr);
  sys.add_domain(0, nullptr);
  sys.add_domain(1, nullptr);
  sys.write(0, /*cycle=*/5, /*addr=*/40, /*value=*/99);
  // The issuing domain sees its own store at once (store buffer).
  EXPECT_EQ(sys.read(0, 5, 40), 99);
  // Another domain sees nothing until the visibility cycle 5 + 8 = 13.
  EXPECT_EQ(sys.read(1, 12, 40), 0);
  sys.append_visible(12);
  EXPECT_EQ(sys.read(1, 12, 40), 0);  // vis = 13 not yet in the horizon
  sys.append_visible(13);
  EXPECT_EQ(sys.read(1, 12, 40), 0);  // logged, but not visible at 12
  EXPECT_EQ(sys.read(1, 13, 40), 99);
  // The writer keeps seeing its own store through the log as well.
  EXPECT_EQ(sys.read(0, 6, 40), 99);
}

TEST(MemFunctional, SameCycleStoresOrderByTagThenSeq) {
  System sys(functional_config(), nullptr);
  sys.add_domain(0, nullptr);
  sys.add_domain(1, nullptr);
  // Two domains hit the same address in the same cycle: the global order
  // is (visibility, tag, seq), so tag 1's store is the newer version.
  sys.write(1, 4, 7, 111);
  sys.write(0, 4, 7, 222);
  sys.append_visible(100);
  EXPECT_EQ(sys.read(0, 100, 7), 111);
  EXPECT_EQ(sys.read(1, 100, 7), 111);
  // Within one domain, issue order wins.
  sys.write(0, 10, 8, 1);
  sys.write(0, 10, 8, 2);
  sys.append_visible(100);
  EXPECT_EQ(sys.read(1, 100, 8), 2);
}

// --- MESI timing layer ---------------------------------------------------------

/// Two cached executor tiles (0, 1) and the DRAM/directory tile 3 on a
/// 2x2 fabric, pumped the way the cosim serial spine pumps them: tick the
/// network, hand each tile's reassembled coherence frames to the caches,
/// let System::tick drain the directory NIC and the access queues.
struct MesiRig {
  noc::Fabric fabric;
  System sys;
  std::uint64_t cycle = 0;

  static noc::FabricConfig fabric_config() {
    noc::FabricConfig f;
    f.width = 2;
    f.height = 2;
    return f;
  }
  static MemConfig mem_config(int sets) {
    MemConfig c;
    c.dram_tile = 3;
    c.sets = sets;
    c.ways = 2;
    c.line_bytes = 64;
    c.lookahead = 4;
    return c;
  }

  explicit MesiRig(int sets = 4, int ways = 2)
      : fabric(fabric_config()), sys(make_cfg(sets, ways), &fabric) {
    sys.add_domain(0, nullptr);
    sys.add_domain(1, nullptr);
  }

  static MemConfig make_cfg(int sets, int ways) {
    MemConfig c = mem_config(sets);
    c.ways = ways;
    return c;
  }

  void step() {
    ++cycle;
    fabric.tick(cycle);
    std::vector<System::Incoming> delivered;
    for (int tile : {0, 1}) {
      for (noc::Delivery& d : fabric.pop_due(tile, cycle)) {
        if (!wire::is_coherence(d.opcode)) continue;
        delivered.push_back(
            System::Incoming{tile, d.opcode, std::move(d.payload)});
      }
    }
    sys.tick(cycle, delivered);
  }

  void settle(int max_steps = 400) {
    for (int i = 0; i < max_steps; ++i) {
      step();
      if (sys.idle() && fabric.idle()) return;
    }
    FAIL() << "memory system did not settle";
  }

  void load(int tag, std::int64_t addr) { sys.read(tag, cycle, addr); }
  void store(int tag, std::int64_t addr) { sys.write(tag, cycle, addr, 1); }
};

TEST(Mesi, ColdLoadFillsExclusiveThenHits) {
  MesiRig r;
  r.load(0, 0);
  r.settle();
  EXPECT_EQ(r.sys.stats().loads, 1u);
  EXPECT_EQ(r.sys.stats().misses, 1u);
  EXPECT_EQ(r.sys.stats().hits, 0u);
  EXPECT_EQ(r.sys.stats().dram_reads, 1u);
  EXPECT_EQ(r.sys.stats().load_use_count, 1u);
  // The line came back Exclusive: a second load — and even a first store —
  // hit locally without any new coherence traffic.
  std::uint64_t frames = r.sys.stats().coh_frames;
  r.load(0, 8);   // same 64-byte line
  r.store(0, 16);  // E -> M silent upgrade
  r.settle();
  EXPECT_EQ(r.sys.stats().hits, 2u);
  EXPECT_EQ(r.sys.stats().coh_frames, frames);
}

TEST(Mesi, ReadSharingDowngradesDirtyOwner) {
  MesiRig r;
  r.store(0, 0);  // tile 0 ends up Modified
  r.settle();
  r.load(1, 0);  // tile 1 reads the same line
  r.settle();
  // The owner flushed (writeback) but was NOT invalidated: both tiles now
  // hold Shared copies and hit locally.
  EXPECT_EQ(r.sys.stats().writebacks, 1u);
  EXPECT_EQ(r.sys.stats().invalidations, 0u);
  std::uint64_t frames = r.sys.stats().coh_frames;
  std::uint64_t hits = r.sys.stats().hits;
  r.load(0, 8);
  r.load(1, 8);
  r.settle();
  EXPECT_EQ(r.sys.stats().hits, hits + 2);
  EXPECT_EQ(r.sys.stats().coh_frames, frames);
}

TEST(Mesi, WriteInvalidatesEverySharer) {
  MesiRig r;
  r.store(0, 0);
  r.settle();
  r.load(1, 0);
  r.settle();  // both Shared now
  r.store(1, 0);  // upgrade: tile 0's copy must die
  r.settle();
  EXPECT_EQ(r.sys.stats().invalidations, 1u);
  // Tile 0 misses again afterwards; tile 1 hits (it owns M).
  std::uint64_t misses = r.sys.stats().misses;
  std::uint64_t hits = r.sys.stats().hits;
  r.store(1, 8);
  r.load(0, 8);
  r.settle();
  EXPECT_EQ(r.sys.stats().hits, hits + 1);
  EXPECT_EQ(r.sys.stats().misses, misses + 1);
}

TEST(Mesi, EvictionWritesBackDirtyVictim) {
  MesiRig r(/*sets=*/1, /*ways=*/1);  // every line maps to the single way
  r.store(0, 0);
  r.settle();
  EXPECT_EQ(r.sys.stats().writebacks, 0u);
  r.load(0, 64);  // different line, same (only) set: evicts the dirty line
  r.settle();
  EXPECT_EQ(r.sys.stats().evictions, 1u);
  EXPECT_EQ(r.sys.stats().writebacks, 1u);
  EXPECT_EQ(r.sys.stats().dram_writes, 1u);
}

TEST(Mesi, UncachedModeMissesEveryAccess) {
  MesiRig r(/*sets=*/0);
  r.load(0, 0);
  r.settle();
  r.load(0, 0);
  r.settle();
  EXPECT_EQ(r.sys.stats().misses, 2u);
  EXPECT_EQ(r.sys.stats().hits, 0u);
  EXPECT_EQ(r.sys.stats().dram_reads, 2u);
  // Same line back to back: the second access hits the open DRAM row.
  EXPECT_EQ(r.sys.stats().dram_row_hits, 1u);
}

TEST(Mesi, DramRowConflictCostsPrecharge) {
  MesiRig r(/*sets=*/0);
  r.load(0, 0);  // line 0: bank 0, row 0
  r.settle();
  // Line 512 maps to bank 0 (512 & 7 == 0) but row 1 (512 >> 3 >> 6):
  // the open row must be precharged first.
  r.load(0, 512 * 64);
  r.settle();
  EXPECT_EQ(r.sys.stats().dram_row_conflicts, 1u);
  EXPECT_EQ(r.sys.stats().dram_row_hits, 0u);
}

// --- OAL mem.read / mem.write end to end ---------------------------------------

/// 3x2 mesh: software boss at (0,0), three hardware workers, the DRAM
/// edge at tile (2,0) = 2. Each worker stores to its own slot of a shared
/// region and reads its neighbours' slots; boss collects done events.
std::unique_ptr<xtuml::Domain> make_mem_domain() {
  xtuml::DomainBuilder b("Mem");
  b.cls("Boss", "BSS");
  for (int i = 0; i < 3; ++i) b.cls("W" + std::to_string(i));
  auto boss = b.edit("Boss");
  boss.attr("acks", DataType::kInt)
      .ref_attr("w0", "W0")
      .ref_attr("w1", "W1")
      .ref_attr("w2", "W2")
      .event("go")
      .event("done", {{"v", DataType::kInt}})
      .state("Idle")
      .state("Fanning",
             "generate job(n: 0, who: self) to self.w0;\n"
             "generate job(n: 1, who: self) to self.w1;\n"
             "generate job(n: 2, who: self) to self.w2;")
      .transition("Idle", "go", "Fanning")
      .transition("Fanning", "go", "Fanning");
  boss.state("Collect", "self.acks = self.acks + 1;")
      .transition("Fanning", "done", "Collect")
      .transition("Collect", "done", "Collect")
      .transition("Collect", "go", "Fanning");
  for (int i = 0; i < 3; ++i) {
    b.edit("W" + std::to_string(i))
        .attr("sum", DataType::kInt)
        .attr("mine", DataType::kInt)
        .event("job", {{"n", DataType::kInt}, b.ref_param("who", "Boss")})
        .state("Work",
               // Own slot: written then read back (store-to-load
               // forwarding makes this exact). Neighbour slots: whatever
               // is visible — deterministic, asserted by the grid below.
               "mem.write(param.n * 8, param.n * 100 + 7);\n"
               "self.mine = mem.read(param.n * 8);\n"
               "self.sum = self.sum + mem.read(((param.n + 1) % 3) * 8)\n"
               "         + mem.read(((param.n + 2) % 3) * 8)\n"
               "         + mem.read(4096);\n"
               "generate done(v: param.n) to param.who;")
        .transition("Work", "job", "Work");
  }
  return b.take();
}

marks::MarkSet mem_mesh_marks(bool with_mem = true) {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};
  for (int i = 0; i < 3; ++i) {
    std::string cls = "W" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{3}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  if (with_mem) {
    m.set_domain_mark(marks::kDramTile, ScalarValue(std::int64_t{2}));
    m.set_domain_mark(marks::kCacheSets, ScalarValue(std::int64_t{4}));
    m.set_domain_mark(marks::kCacheWays, ScalarValue(std::int64_t{2}));
    m.set_domain_mark(marks::kCacheLineBytes, ScalarValue(std::int64_t{64}));
  }
  return m;
}

/// Boot the fanout population, kick it `rounds` times, capture everything
/// observable (including the report's "memory" section).
struct MemRun {
  std::string hw_traces;
  std::string sw_trace;
  std::string memory_json;
  std::string interconnect_json;
  std::uint64_t cycles = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::vector<std::int64_t> attrs;
};

MemRun run_mem_model(int threads, int window, fault::Plan* plan,
                     int rounds = 3) {
  MappedFixture fx(make_mem_domain(), mem_mesh_marks());
  CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;
  cfg.fault = plan;
  CoSimulation cs(*fx.system, cfg);
  auto w0 = cs.create("W0");
  auto w1 = cs.create("W1");
  auto w2 = cs.create("W2");
  auto boss = cs.create_with(
      "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
  EXPECT_NE(cs.mem_system(), nullptr);
  for (int i = 0; i < rounds; ++i) {
    cs.inject(boss, "go");
    cs.run_cycles(400);
  }
  MemRun r;
  for (const auto& hw : cs.hw_domains()) {
    r.hw_traces += hw->executor().trace().to_string();
  }
  r.sw_trace = cs.sw_executor().trace().to_string();
  r.cycles = cs.cycles();
  obs::Snapshot snap = cs.report();
  r.memory_json = snap.at("memory").dump();
  r.interconnect_json = snap.at("interconnect").dump();
  r.loads = cs.mem_system()->stats().loads;
  r.stores = cs.mem_system()->stats().stores;
  auto attr_of = [&](const InstanceHandle& h, const char* cls,
                     const char* name) {
    const auto* a = fx.domain->find_class(cls)->find_attribute(name);
    return std::get<std::int64_t>(
        cs.executor_of(h.cls).database().get_attr(h, a->id));
  };
  r.attrs = {attr_of(boss, "Boss", "acks"),  attr_of(w0, "W0", "mine"),
             attr_of(w1, "W1", "mine"),      attr_of(w2, "W2", "mine"),
             attr_of(w0, "W0", "sum"),       attr_of(w1, "W1", "sum"),
             attr_of(w2, "W2", "sum")};
  return r;
}

TEST(MemCosim, ValuesFlowThroughSharedMemory) {
  MemRun r = run_mem_model(1, 1, nullptr);
  EXPECT_EQ(r.attrs[0], 9);  // 3 rounds x 3 workers acked
  // Each worker read back exactly what it wrote (forwarding).
  EXPECT_EQ(r.attrs[1], 7);
  EXPECT_EQ(r.attrs[2], 107);
  EXPECT_EQ(r.attrs[3], 207);
  // By round 2 every round-1 store is long visible (rounds are 400 cycles
  // apart, L is single-digit), so each worker accumulated its neighbours'
  // values in rounds 2 and 3 at the latest.
  EXPECT_GE(r.attrs[4] + r.attrs[5] + r.attrs[6], 2 * (107 + 207 + 7 + 207 + 7 + 107));
  // The timing layer saw the traffic: 3 rounds x 3 workers x (1 store +
  // 4 loads — mem.read(own) + two neighbours + one cold address).
  EXPECT_EQ(r.stores, 9u);
  EXPECT_EQ(r.loads, 36u);
}

TEST(MemCosim, ByteIdenticalAcrossThreadsWindowsAndFaults) {
  for (bool faulty : {false, true}) {
    SCOPED_TRACE(faulty ? "faults" : "fault-free");
    auto spec = [&] {
      fault::FaultSpec s;
      if (faulty) {
        s.seed = 7;
        s.flit_drop = 0.02;
        s.flit_corrupt = 0.02;
      }
      return s;
    }();
    fault::Plan serial_plan(spec);
    MemRun serial = run_mem_model(1, 1, faulty ? &serial_plan : nullptr);
    for (int threads : {2, 8}) {
      for (int window : {0, 1}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " window=" + std::to_string(window));
        fault::Plan plan(spec);
        MemRun par = run_mem_model(threads, window, faulty ? &plan : nullptr);
        EXPECT_EQ(par.hw_traces, serial.hw_traces);
        EXPECT_EQ(par.sw_trace, serial.sw_trace);
        EXPECT_EQ(par.cycles, serial.cycles);
        EXPECT_EQ(par.attrs, serial.attrs);
        EXPECT_EQ(par.memory_json, serial.memory_json);
        EXPECT_EQ(par.interconnect_json, serial.interconnect_json);
      }
    }
  }
}

TEST(MemCosim, SnapshotPortsAcrossThreadCounts) {
  auto boot = [](CoSimulation& cs) {
    auto w0 = cs.create("W0");
    auto w1 = cs.create("W1");
    auto w2 = cs.create("W2");
    auto boss = cs.create_with(
        "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
    cs.inject(boss, "go");
    return boss;
  };
  auto capture = [](CoSimulation& cs) {
    std::string out;
    for (const auto& hw : cs.hw_domains()) {
      out += hw->executor().trace().to_string();
    }
    out += cs.sw_executor().trace().to_string();
    out += cs.report().at("memory").dump();
    out += std::to_string(cs.cycles());
    return out;
  };

  // Uninterrupted serial reference.
  MappedFixture fx_ref(make_mem_domain(), mem_mesh_marks());
  CoSimulation ref(*fx_ref.system);
  auto boss_ref = boot(ref);
  ref.run_cycles(60);
  ref.inject(boss_ref, "go");
  ref.run_cycles(340);
  std::string want = capture(ref);

  // Save at cycle 60 (stores in flight, caches warm), restore under other
  // configurations, continue identically.
  MappedFixture fx_a(make_mem_domain(), mem_mesh_marks());
  CoSimulation a(*fx_a.system);
  auto boss_a = boot(a);
  a.run_cycles(60);
  std::vector<std::uint8_t> bytes = snap::save(a);

  for (int threads : {1, 8}) {
    MappedFixture fx_b(make_mem_domain(), mem_mesh_marks());
    CoSimConfig cfg;
    cfg.threads = threads;
    CoSimulation b(*fx_b.system, cfg);
    snap::restore(b, bytes.data(), bytes.size());
    // The restored world reuses its own handles; boss is the only Boss.
    b.inject(boss_a, "go");
    b.run_cycles(340);
    EXPECT_EQ(capture(b), want) << "threads=" << threads;
  }
}

TEST(MemCosim, SnapshotRefusesMemoryWorldMismatch) {
  // A snapshot from a memory-less world must not load into a world whose
  // marks added a hierarchy (and vice versa) — the saved state would be
  // structurally incomplete. The interface digest catches re-marked
  // systems; the explicit mem flag in the C section is the backstop.
  MappedFixture fx_none(make_mem_domain(), mem_mesh_marks(false));
  CoSimulation plain(*fx_none.system);
  plain.create("W0");
  plain.run_cycles(10);
  std::vector<std::uint8_t> bytes = snap::save(plain);

  MappedFixture fx_mem(make_mem_domain(), mem_mesh_marks(true));
  CoSimulation withmem(*fx_mem.system);
  withmem.create("W0");
  EXPECT_THROW(snap::restore(withmem, bytes.data(), bytes.size()),
               snap::SnapError);
}

// --- the no-memory-marks world is unchanged ------------------------------------

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(MemCosim, NoMemoryMarksWorldIsPinned) {
  MappedFixture fx(make_mem_domain(), mem_mesh_marks(false));
  CoSimulation cs(*fx.system);
  EXPECT_EQ(cs.mem_system(), nullptr);
  auto w0 = cs.create("W0");
  auto w1 = cs.create("W1");
  auto w2 = cs.create("W2");
  auto boss = cs.create_with(
      "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
  cs.inject(boss, "go");
  cs.run_cycles(200);
  obs::Snapshot snap = cs.report();
  EXPECT_EQ(snap.find("memory"), nullptr);
  // Golden fingerprint over every observable byte of the run. If this
  // moves, the memory subsystem changed the behaviour of a world that
  // never asked for it — that is a bug, not a baseline refresh.
  std::string all;
  for (const auto& hw : cs.hw_domains()) {
    all += hw->executor().trace().to_string();
  }
  all += cs.sw_executor().trace().to_string();
  all += snap.to_json();
  EXPECT_EQ(fnv1a(all), 0x0bc764edb484fe08ull)
      << "fingerprint: " << std::hex << fnv1a(all);
}

// --- TrafficGen memory pattern -------------------------------------------------

struct TrafficOutcome {
  std::uint64_t gets = 0;       ///< kGetS requests injected
  std::uint64_t getm = 0;       ///< kGetM requests injected
  std::uint64_t dram_reads = 0;
  std::uint64_t coh_frames = 0;  ///< directory responses (incl. Inv)
};

TrafficOutcome run_memory_traffic(double write_fraction) {
  noc::FabricConfig fcfg;
  fcfg.width = 2;
  fcfg.height = 2;
  noc::Fabric fabric(fcfg);
  MemConfig mcfg;
  mcfg.dram_tile = 3;
  mcfg.sets = 4;
  System sys(mcfg, &fabric);
  sys.add_domain(0, nullptr);
  sys.add_domain(1, nullptr);
  sys.add_domain(2, nullptr);

  noc::TrafficSpec spec;
  spec.pattern = noc::TrafficPattern::kMemory;
  spec.seed = 11;
  spec.offered_load = 0.2;
  spec.hotspot_tile = 3;  // the directory tile
  spec.write_fraction = write_fraction;
  spec.record = true;
  noc::TrafficGen gen(spec, fabric.topology());

  std::uint64_t cycle = 0;
  for (int i = 0; i < 400; ++i) {
    if (i < 100) gen.tick(fabric, cycle);  // then drain
    ++cycle;
    fabric.tick(cycle);
    std::vector<System::Incoming> delivered;
    for (int tile : {0, 1, 2}) {
      for (noc::Delivery& d : fabric.pop_due(tile, cycle)) {
        if (!wire::is_coherence(d.opcode)) continue;
        delivered.push_back(
            System::Incoming{tile, d.opcode, std::move(d.payload)});
      }
    }
    sys.tick(cycle, delivered);
  }
  TrafficOutcome out;
  for (const noc::TrafficEvent& e : gen.trace()) {
    if (e.opcode == wire::opcode(wire::kGetM)) ++out.getm;
    if (e.opcode == wire::opcode(wire::kGetS)) ++out.gets;
  }
  EXPECT_EQ(out.gets + out.getm, gen.frames_sent());
  out.dram_reads = sys.stats().dram_reads;
  out.coh_frames = sys.stats().coh_frames;
  return out;
}

TEST(MemTraffic, MemoryPatternDrivesDirectory) {
  // The write fraction is the knob: it selects the request opcode on the
  // wire, and the directory answers everything that arrives.
  TrafficOutcome reads = run_memory_traffic(0.0);
  EXPECT_GT(reads.gets, 0u);
  EXPECT_EQ(reads.getm, 0u);
  EXPECT_GT(reads.dram_reads, 0u);
  EXPECT_GT(reads.coh_frames, 0u);

  TrafficOutcome writes = run_memory_traffic(1.0);
  EXPECT_EQ(writes.gets, 0u);
  EXPECT_GT(writes.getm, 0u);
  EXPECT_GT(writes.dram_reads, 0u);

  TrafficOutcome mixed = run_memory_traffic(0.5);
  EXPECT_GT(mixed.gets, 0u);
  EXPECT_GT(mixed.getm, 0u);

  // Same spec, same tape: the generator is a pure function of the seed.
  TrafficOutcome again = run_memory_traffic(0.5);
  EXPECT_EQ(mixed.gets, again.gets);
  EXPECT_EQ(mixed.getm, again.getm);
  EXPECT_EQ(mixed.coh_frames, again.coh_frames);
  EXPECT_EQ(mixed.dram_reads, again.dram_reads);
}

}  // namespace
}  // namespace xtsoc::mem
