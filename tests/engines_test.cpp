// Engine equivalence: the tree-walking interpreter and the bytecode VM must
// be observably indistinguishable — identical traces (events, values,
// order), identical final databases, identical error behaviour — for every
// construct of the language. This is the paper's "any manner it chooses so
// long as the defined behavior is preserved" checked with two independent
// implementations.

#include <gtest/gtest.h>

#include "xtsoc/oal/bytecode.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/runtime/vm.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::runtime {
namespace {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;

/// Same two-class harness as interp_test, parameterized by engine.
struct EngineRun {
  std::unique_ptr<Domain> domain;
  std::unique_ptr<oal::CompiledDomain> compiled;
  std::unique_ptr<Executor> exec;
  InstanceHandle probe;

  EngineRun(const std::string& snippet, ActionEngine engine,
            std::int64_t n = 0) {
    DomainBuilder b("H");
    b.cls("Peer", "PEER")
        .attr("tag", DataType::kInt)
        .event("poke")
        .state("P0")
        .state("P1", "self.tag = self.tag + 100;")
        .transition("P0", "poke", "P1");
    b.cls("Probe", "PRB")
        .attr("i", DataType::kInt)
        .attr("r", DataType::kReal)
        .attr("s", DataType::kString)
        .attr("flag", DataType::kBool)
        .ref_attr("ref", "Peer")
        .event("go", {{"n", DataType::kInt}})
        .state("S0")
        .state("S1", snippet)
        .transition("S0", "go", "S1");
    b.assoc("R1", "Probe", "uses", Multiplicity::kZeroMany, "Peer", "used_by",
            Multiplicity::kZeroMany);
    domain = b.take();
    DiagnosticSink sink;
    compiled = oal::compile_domain(*domain, sink);
    if (!compiled) throw std::runtime_error(sink.to_string());
    ExecutorConfig cfg;
    cfg.engine = engine;
    exec = std::make_unique<Executor>(*compiled, cfg);
    probe = exec->create("Probe");
    exec->inject(probe, "go", {Value(n)});
    exec->run_all();
  }

  std::string trace() const { return exec->trace().to_string(); }
};

class EngineParity : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineParity, TracesIdentical) {
  const char* snippet = GetParam();
  EngineRun ast(snippet, ActionEngine::kAstWalk, 6);
  EngineRun vm(snippet, ActionEngine::kBytecode, 6);
  EXPECT_EQ(ast.trace(), vm.trace()) << "snippet:\n" << snippet;
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, EngineParity,
    ::testing::Values(
        "self.i = 2 + 3 * 4 - 1;",
        "self.r = 1.5 * param.n;",
        "self.r = 7;",  // widening on real attr
        "x = 2.0;\nx = 3;\nself.r = x;",  // widening on real local
        "self.s = \"a\" + \"b\" + \"c\";",
        "self.flag = 1 < 2 and not (3 == 4) or false;",
        "self.flag = false and (1 / 0 == 1);",  // short circuit
        "self.flag = true or (1 / 0 == 1);",
        "self.i = param.n % 4;",
        "if (param.n > 3)\n  self.i = 1;\nelif (param.n > 1)\n"
        "  self.i = 2;\nelse\n  self.i = 3;\nend if;",
        "k = 0;\nwhile (k < 10)\n  k = k + 1;\n  if (k == 4)\n"
        "    continue;\n  end if;\n  if (k > 7)\n    break;\n  end if;\n"
        "  self.i = self.i + k;\nend while;",
        "self.i = 1;\nreturn;\nself.i = 2;",
        "create object instance p of Peer;\np.tag = 9;\n"
        "relate self to p across R1;\n"
        "select one q related by self->Peer[R1];\nself.i = q.tag;",
        "create object instance a of Peer;\ncreate object instance b of "
        "Peer;\na.tag = 2;\nb.tag = 5;\n"
        "select many big from instances of Peer where (selected.tag > 3);\n"
        "self.i = cardinality big;",
        "create object instance a of Peer;\n"
        "select any p from instances of Peer;\n"
        "self.flag = not_empty p;\ndelete object instance p;\n"
        "select any q from instances of Peer;\nself.flag = empty q;",
        "k = 0;\nwhile (k < 4)\n  create object instance p of Peer;\n"
        "  p.tag = k;\n  k = k + 1;\nend while;\n"
        "select many all from instances of Peer;\n"
        "t = 0;\nfor each p in all\n  if (p.tag == 2)\n    continue;\n"
        "  end if;\n  t = t + p.tag;\nend for;\nself.i = t;",
        "create object instance p of Peer;\nself.ref = p;\n"
        "generate poke() to self.ref;\nlog \"sent\", 1;",
        "log \"vals\", 1, 2.5, true, \"txt\";",
        "generate go(n: param.n - 1) to self delay 3;",
        // mem.* ops hit the executor's flat fallback here (no hierarchy
        // attached): last write wins, unwritten addresses read 0.
        "mem.write(3, 40);\nmem.write(3, 2);\n"
        "self.i = mem.read(3) + mem.read(99);",
        "k = 0;\nwhile (k < 4)\n  mem.write(k * 8, k * param.n);\n"
        "  k = k + 1;\nend while;\nt = 0;\nk = 0;\nwhile (k < 4)\n"
        "  t = t + mem.read(k * 8);\n  k = k + 1;\nend while;\nself.i = t;"));

TEST(EngineParity, ErrorsIdentical) {
  for (const char* snippet :
       {"self.i = 1 / (param.n - 6);",  // div by zero at n=6
        "self.i = 1 % (param.n - 6);",
        "self.i = self.ref.tag;",                     // null deref
        "generate poke() to self.ref;"}) {            // generate to null
    EXPECT_THROW(EngineRun(snippet, ActionEngine::kAstWalk, 6), ModelError)
        << snippet;
    EXPECT_THROW(EngineRun(snippet, ActionEngine::kBytecode, 6), ModelError)
        << snippet;
  }
}

TEST(EngineParity, OpLimitEnforcedInBoth) {
  const char* spin = "while (true)\n  self.i = self.i + 1;\nend while;";
  for (ActionEngine engine :
       {ActionEngine::kAstWalk, ActionEngine::kBytecode}) {
    DomainBuilder b("L");
    b.cls("A")
        .attr("i", DataType::kInt)
        .event("go")
        .state("S0")
        .state("S1", spin)
        .transition("S0", "go", "S1");
    DiagnosticSink sink;
    auto cd = oal::compile_domain(b.domain(), sink);
    ASSERT_NE(cd, nullptr);
    ExecutorConfig cfg;
    cfg.engine = engine;
    cfg.max_ops_per_action = 5000;
    Executor exec(*cd, cfg);
    auto h = exec.create("A");
    exec.inject(h, "go");
    EXPECT_THROW(exec.run_all(), ModelError);
  }
}

TEST(EngineParity, SelfDeleteHandledInBoth) {
  for (ActionEngine engine :
       {ActionEngine::kAstWalk, ActionEngine::kBytecode}) {
    DomainBuilder b("D");
    b.cls("E")
        .event("die")
        .state("Alive")
        .state("Dying", "delete object instance self;")
        .transition("Alive", "die", "Dying");
    DiagnosticSink sink;
    auto cd = oal::compile_domain(b.domain(), sink);
    ASSERT_NE(cd, nullptr);
    ExecutorConfig cfg;
    cfg.engine = engine;
    Executor exec(*cd, cfg);
    auto h = exec.create("E");
    exec.inject(h, "die");
    EXPECT_NO_THROW(exec.run_all());
    EXPECT_FALSE(exec.database().is_alive(h));
  }
}

TEST(Bytecode, DisassembleIsReadable) {
  DomainBuilder b("D");
  b.cls("A")
      .attr("x", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1", "self.x = self.x + 41;")
      .transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr);
  oal::CodeBlock bc = oal::compile_bytecode(
      cd->action(b.domain().find_class_id("A"), StateId(1)));
  std::string dis = oal::disassemble(bc);
  EXPECT_NE(dis.find("get_attr"), std::string::npos);
  EXPECT_NE(dis.find("push_const 41"), std::string::npos);
  EXPECT_NE(dis.find("set_attr"), std::string::npos);
  EXPECT_NE(dis.find("ret"), std::string::npos);
}

TEST(Bytecode, WhereFilterBecomesSubBlock) {
  DomainBuilder b("D");
  b.cls("A")
      .attr("x", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1",
             "select many xs from instances of A where (selected.x > 0);\n"
             "self.x = cardinality xs;")
      .transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr);
  oal::CodeBlock bc = oal::compile_bytecode(
      cd->action(b.domain().find_class_id("A"), StateId(1)));
  EXPECT_EQ(bc.subs.size(), 1u);
  std::string dis = oal::disassemble(bc);
  EXPECT_NE(dis.find("filter"), std::string::npos);
  EXPECT_NE(dis.find("sub 0:"), std::string::npos);
  EXPECT_NE(dis.find("selected"), std::string::npos);
}

}  // namespace
}  // namespace xtsoc::runtime
