#include <gtest/gtest.h>

#include "test_models.hpp"
#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/cosim/codec.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/hwsim/vcd.hpp"

namespace xtsoc::cosim {
namespace {

using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

marks::MarkSet hw_consumer_marks(int bus_latency = 2) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_domain_mark(marks::kBusLatency,
                    ScalarValue(static_cast<std::int64_t>(bus_latency)));
  return m;
}

// --- bus ----------------------------------------------------------------------

TEST(Bus, HandshakeRejectsMismatch) {
  Bus bus(1);
  EXPECT_THROW(bus.connect("aaaa", "bbbb"), InterfaceMismatch);
  EXPECT_FALSE(bus.connected());
  bus.connect("aaaa", "aaaa");
  EXPECT_TRUE(bus.connected());
}

TEST(Bus, UseBeforeConnectRejected) {
  Bus bus(1);
  EXPECT_THROW(bus.push_to_hw(Frame{}, 0), InterfaceMismatch);
}

TEST(Bus, LatencyDelaysDelivery) {
  Bus bus(3);
  bus.connect("x", "x");
  bus.push_to_hw(Frame{7, {1, 2}, 0}, /*current_cycle=*/10);
  EXPECT_TRUE(bus.pop_due_to_hw(12).empty());
  auto due = bus.pop_due_to_hw(13);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].opcode, 7u);
  EXPECT_TRUE(bus.empty());
}

TEST(Bus, ExtraDelayAddsToLatency) {
  Bus bus(1);
  bus.connect("x", "x");
  bus.push_to_sw(Frame{1, {}, 0}, 0, /*extra_delay=*/5);
  EXPECT_TRUE(bus.pop_due_to_sw(5).empty());
  EXPECT_EQ(bus.pop_due_to_sw(6).size(), 1u);
}

TEST(Bus, OrderPreservedAmongDue) {
  Bus bus(0);
  bus.connect("x", "x");
  bus.push_to_hw(Frame{1, {}, 0}, 0);
  bus.push_to_hw(Frame{2, {}, 0}, 0);
  auto due = bus.pop_due_to_hw(0);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].opcode, 1u);
  EXPECT_EQ(due[1].opcode, 2u);
}

TEST(Bus, StatsCountFramesAndBytes) {
  Bus bus(0);
  bus.connect("x", "x");
  bus.push_to_hw(Frame{1, {1, 2, 3}, 0}, 0);
  bus.push_to_sw(Frame{2, {9}, 0}, 0);
  EXPECT_EQ(bus.stats().frames_to_hw, 1u);
  EXPECT_EQ(bus.stats().bytes_to_hw, 3u);
  EXPECT_EQ(bus.stats().frames_to_sw, 1u);
  EXPECT_EQ(bus.stats().bytes_to_sw, 1u);
}

// --- end-to-end partitioned execution -------------------------------------------

struct PipelineCosim {
  MappedFixture fx;
  CoSimulation cosim;
  InstanceHandle consumer;
  InstanceHandle producer;

  explicit PipelineCosim(marks::MarkSet m, CoSimConfig cfg = {})
      : fx(make_pipeline_domain(), std::move(m)), cosim(*fx.system, cfg) {
    consumer = cosim.create("Consumer");
    producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  }

  std::int64_t attr(const InstanceHandle& h, const char* cls,
                    const char* name) {
    const auto* a = fx.domain->find_class(cls)->find_attribute(name);
    return std::get<std::int64_t>(
        cosim.executor_of(h.cls).database().get_attr(h, a->id));
  }
};

TEST(CoSim, CrossBoundaryRoundTrip) {
  PipelineCosim p(hw_consumer_marks());
  p.cosim.inject(p.producer, "kick");
  std::uint64_t cycles = p.cosim.run();
  EXPECT_TRUE(p.cosim.quiescent());
  EXPECT_GT(cycles, 0u);

  // Producer sent one unit of work; Consumer accumulated it in hardware and
  // acked back across the bus.
  EXPECT_EQ(p.attr(p.producer, "Producer", "sent"), 1);
  EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 1);
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
}

TEST(CoSim, RepeatedKicksAccumulate) {
  PipelineCosim p(hw_consumer_marks());
  for (int i = 0; i < 5; ++i) {
    p.cosim.inject(p.producer, "kick");
    p.cosim.run();
  }
  EXPECT_EQ(p.attr(p.producer, "Producer", "sent"), 5);
  EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 5);
  // total = 1+2+3+4+5
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 15);
}

TEST(CoSim, BusLatencyAffectsCompletionTime) {
  PipelineCosim fast(hw_consumer_marks(1));
  PipelineCosim slow(hw_consumer_marks(50));
  fast.cosim.inject(fast.producer, "kick");
  slow.cosim.inject(slow.producer, "kick");
  std::uint64_t fast_cycles = fast.cosim.run();
  std::uint64_t slow_cycles = slow.cosim.run();
  EXPECT_LT(fast_cycles, slow_cycles);
  // Same functional result either way.
  EXPECT_EQ(fast.attr(fast.consumer, "Consumer", "total"),
            slow.attr(slow.consumer, "Consumer", "total"));
}

TEST(CoSim, ForgedDigestDetectedAtConnect) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  CoSimConfig cfg;
  cfg.forged_sw_digest = "deadbeef";
  EXPECT_THROW(CoSimulation(*fx.system, cfg), InterfaceMismatch);
}

TEST(CoSim, PureSoftwareSystemRuns) {
  marks::MarkSet none;
  PipelineCosim p(std::move(none));
  p.cosim.inject(p.producer, "kick");
  p.cosim.run();
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
  EXPECT_EQ(p.cosim.bus().stats().frames_to_hw, 0u);
  EXPECT_EQ(p.cosim.bus().stats().frames_to_sw, 0u);
}

TEST(CoSim, AllHardwareSystemRuns) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.mark_hardware("Producer");
  PipelineCosim p(std::move(m));
  p.cosim.inject(p.producer, "kick");
  p.cosim.run();
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
  // Everything stayed inside the fabric.
  EXPECT_EQ(p.cosim.bus().stats().frames_to_hw, 0u);
  EXPECT_EQ(p.cosim.bus().stats().frames_to_sw, 0u);
  EXPECT_GT(p.cosim.hw_executor().dispatch_count(), 0u);
  EXPECT_EQ(p.cosim.sw_executor().dispatch_count(), 0u);
}

TEST(CoSim, RepartitionByMovingOneMark) {
  // The paper's §4 workflow end-to-end: identical model, flip one mark,
  // identical functional outcome, different placement.
  auto run_with = [](marks::MarkSet m) {
    PipelineCosim p(std::move(m));
    p.cosim.inject(p.producer, "kick");
    p.cosim.run();
    return std::tuple(p.attr(p.consumer, "Consumer", "total"),
                      p.cosim.hw_executor().dispatch_count(),
                      p.cosim.sw_executor().dispatch_count());
  };

  auto [total_hw, hwd1, swd1] = run_with(hw_consumer_marks());
  marks::MarkSet sw_only;
  auto [total_sw, hwd2, swd2] = run_with(std::move(sw_only));

  EXPECT_EQ(total_hw, total_sw);        // same behaviour
  EXPECT_GT(hwd1, 0u);                  // consumer ran in hardware...
  EXPECT_EQ(hwd2, 0u);                  // ...then ran in software
  EXPECT_GT(swd2, swd1);
}

TEST(CoSim, DelayedSignalCrossesBoundaryLate) {
  PipelineCosim p(hw_consumer_marks(1));
  // Deliver the kick to the (software) producer after 10 cycles.
  p.cosim.inject(p.producer, "kick", {}, /*delay=*/10);
  std::uint64_t cycles = p.cosim.run();
  EXPECT_GE(cycles, 10u);
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
}

TEST(CoSim, HardwareConsumesOneEventPerInstancePerCycle) {
  // Two kicks to the same producer: each round trip is serialized through
  // the single Consumer instance, so hardware dispatches happen on distinct
  // cycles. With N back-to-back work items for ONE hw instance, hw needs >=
  // N cycles.
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks(0));
  CoSimConfig cfg;
  cfg.sw_steps_per_cycle = 100;  // software is "infinitely" fast
  CoSimulation cosim(*fx.system, cfg);
  auto consumer = cosim.create("Consumer");
  // Three producers all target the same consumer.
  std::vector<InstanceHandle> producers;
  for (int i = 0; i < 3; ++i) {
    producers.push_back(
        cosim.create_with("Producer", {{"sink", Value(consumer)}}));
  }
  for (auto& pr : producers) cosim.inject(pr, "kick");
  cosim.run();
  // The lone consumer instance processed 3 work signals, one per cycle:
  // at least 3 hardware cycles must have elapsed.
  EXPECT_EQ(cosim.hw_executor().dispatch_count(), 3u);
  EXPECT_GE(cosim.cycles(), 3u);
}

TEST(CoSim, ClockDomainDividerSlowsClass) {
  // The same system with the Consumer in a /8 clock domain takes longer to
  // drain but computes the same answers.
  auto run_with_divider = [](std::int64_t divider) {
    marks::MarkSet m = hw_consumer_marks(1);
    if (divider > 1) {
      m.set_class_mark("Consumer", marks::kClockDomain, ScalarValue(divider));
    }
    PipelineCosim p(std::move(m));
    for (int i = 0; i < 3; ++i) {
      p.cosim.inject(p.producer, "kick");
      p.cosim.run();
    }
    return std::pair(p.cosim.cycles(),
                     p.attr(p.consumer, "Consumer", "total"));
  };
  auto [fast_cycles, fast_total] = run_with_divider(1);
  auto [slow_cycles, slow_total] = run_with_divider(8);
  EXPECT_EQ(fast_total, slow_total);
  EXPECT_LT(fast_cycles, slow_cycles);
}

TEST(CoSim, ClockDomainPreservesConformance) {
  marks::MarkSet m = hw_consumer_marks(2);
  m.set_class_mark("Consumer", marks::kClockDomain,
                   ScalarValue(std::int64_t{4}));
  PipelineCosim p(std::move(m));
  p.cosim.inject(p.producer, "kick");
  std::uint64_t cycles = p.cosim.run();
  EXPECT_TRUE(p.cosim.quiescent());
  EXPECT_GE(cycles, 4u);
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
  EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 1);
}

TEST(CoSim, BytecodeEngineProducesSameResults) {
  CoSimConfig vm_cfg;
  vm_cfg.engine = runtime::ActionEngine::kBytecode;
  PipelineCosim ast(hw_consumer_marks());
  PipelineCosim vm(hw_consumer_marks(), vm_cfg);
  for (auto* p : {&ast, &vm}) {
    for (int i = 0; i < 3; ++i) {
      p->cosim.inject(p->producer, "kick");
      p->cosim.run();
    }
  }
  EXPECT_EQ(ast.attr(ast.consumer, "Consumer", "total"),
            vm.attr(vm.consumer, "Consumer", "total"));
  EXPECT_EQ(ast.cosim.cycles(), vm.cosim.cycles());
  EXPECT_EQ(ast.cosim.hw_executor().trace().to_string(),
            vm.cosim.hw_executor().trace().to_string());
}

TEST(CoSim, ActivityWiresAndWaveformCapture) {
  PipelineCosim p(hw_consumer_marks(1));
  ClassId consumer_cls = p.fx.domain->find_class_id("Consumer");
  HwSignalId alive = p.cosim.hw_domain().alive_wire(consumer_cls);
  HwSignalId busy = p.cosim.hw_domain().busy_wire(consumer_cls);
  ASSERT_TRUE(alive.is_valid());
  ASSERT_TRUE(busy.is_valid());

  hwsim::VcdWriter vcd(p.cosim.hw_sim(), {alive, busy});
  p.cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });

  p.cosim.inject(p.producer, "kick");
  p.cosim.run();

  // One consumer instance alive; it was busy at some cycle.
  EXPECT_EQ(p.cosim.hw_sim().read(alive), 1u);
  std::string waveform = vcd.render();
  EXPECT_NE(waveform.find("hw.Consumer.alive"), std::string::npos);
  EXPECT_NE(waveform.find("hw.Consumer.busy"), std::string::npos);
  // The busy wire pulsed: both a rise to 1 and a fall to 0 appear.
  EXPECT_NE(waveform.find("1\""), std::string::npos);
  EXPECT_GT(vcd.change_count(), 2u);
}

TEST(CoSim, HardwarePoolCapacityEnforced) {
  marks::MarkSet m = hw_consumer_marks();
  m.set_class_mark("Consumer", marks::kMaxInstances,
                   ScalarValue(std::int64_t{2}));
  MappedFixture fx(make_pipeline_domain(), std::move(m));
  CoSimulation cosim(*fx.system);
  cosim.create("Consumer");
  cosim.create("Consumer");
  EXPECT_THROW(cosim.create("Consumer"), runtime::ModelError);
  // Software classes are heap-backed: no such cap.
  for (int i = 0; i < 10; ++i) cosim.create("Producer");
}

TEST(CoSim, HardwareActionCanSpawnIntoOwnPool) {
  // A hardware class whose action creates more instances of itself: legal
  // (same-partition data access) and runs inside the fabric.
  xtuml::DomainBuilder b("Spawn");
  b.cls("Cell")
      .attr("generation", xtuml::DataType::kInt)
      .event("divide")
      .state("Idle")
      .state("Dividing",
             "create object instance child of Cell;\n"
             "child.generation = self.generation + 1;")
      .transition("Idle", "divide", "Dividing")
      .transition("Dividing", "divide", "Dividing");
  marks::MarkSet m;
  m.mark_hardware("Cell");
  MappedFixture fx(b.take(), std::move(m));
  CoSimulation cosim(*fx.system);
  auto seed = cosim.create("Cell");
  for (int i = 0; i < 3; ++i) cosim.inject(seed, "divide");
  cosim.run();
  EXPECT_EQ(cosim.hw_executor().database().live_count(
                fx.domain->find_class_id("Cell")),
            4u);
}

TEST(CoSim, UnknownClassOrEventThrows) {
  PipelineCosim p(hw_consumer_marks());
  EXPECT_THROW(p.cosim.create("Nope"), runtime::ModelError);
  EXPECT_THROW(p.cosim.inject(p.producer, "nope"), runtime::ModelError);
}

TEST(CoSim, TracesLandInOwningPartition) {
  PipelineCosim p(hw_consumer_marks());
  p.cosim.inject(p.producer, "kick");
  p.cosim.run();
  // Consumer's dispatches are recorded in the hardware trace only.
  auto hw_proj = p.cosim.hw_executor().trace().projection(p.consumer);
  auto sw_proj = p.cosim.sw_executor().trace().projection(p.producer);
  bool hw_has_dispatch = false;
  for (const auto& e : hw_proj) {
    if (e.kind == runtime::TraceKind::kDispatch) hw_has_dispatch = true;
  }
  bool sw_has_dispatch = false;
  for (const auto& e : sw_proj) {
    if (e.kind == runtime::TraceKind::kDispatch) sw_has_dispatch = true;
  }
  EXPECT_TRUE(hw_has_dispatch);
  EXPECT_TRUE(sw_has_dispatch);
}

// Property sweep: functional results are identical across bus latencies and
// software speed ratios (performance changes, function does not).
class CosimParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CosimParamSweep, FunctionInvariantUnderTimingParams) {
  auto [latency, sw_steps] = GetParam();
  CoSimConfig cfg;
  cfg.sw_steps_per_cycle = sw_steps;
  PipelineCosim p(hw_consumer_marks(latency), cfg);
  for (int i = 0; i < 3; ++i) {
    p.cosim.inject(p.producer, "kick");
    p.cosim.run();
  }
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 6);  // 1+2+3
  EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 3);
}

INSTANTIATE_TEST_SUITE_P(LatencyAndSpeed, CosimParamSweep,
                         ::testing::Combine(::testing::Values(0, 1, 4, 16),
                                            ::testing::Values(1, 4, 32)));

// --- codec ---------------------------------------------------------------------

TEST(Codec, UnknownMessageRejected) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  runtime::EventMessage m;
  m.target = InstanceHandle{fx.domain->find_class_id("Consumer"), 0, 0};
  m.event = EventId(99);
  EXPECT_THROW(encode_message(fx.system->interface(), m), InterfaceMismatch);

  Frame f;
  f.opcode = 1234;
  EXPECT_THROW(decode_frame(fx.system->interface(), f), InterfaceMismatch);
}

TEST(Codec, MessageRoundTrip) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks());
  ClassId consumer = fx.domain->find_class_id("Consumer");
  runtime::EventMessage m;
  m.target = InstanceHandle{consumer, 2, 0};
  m.event = fx.domain->cls(consumer).find_event("work")->id;
  m.args = {Value(std::int64_t{41}), Value(0.5),
            Value(InstanceHandle{fx.domain->find_class_id("Producer"), 1, 0})};
  Frame f = encode_message(fx.system->interface(), m);
  runtime::EventMessage back = decode_frame(fx.system->interface(), f);
  EXPECT_EQ(back.target, m.target);
  EXPECT_EQ(back.event, m.event);
  ASSERT_EQ(back.args.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(back.args[0]), 41);
  EXPECT_DOUBLE_EQ(std::get<double>(back.args[1]), 0.5);
  EXPECT_TRUE(back.sender.is_null());
}

// --- parallel-kernel determinism at the cosim level ----------------------------
//
// CoSimConfig::threads must leave every observable byte unchanged: executor
// traces in each partition, hardware cycle count, kernel SimStats, and the
// captured VCD waveform. One bus-mode workload and one multi-domain mesh
// workload, each diffed at threads = 1/2/8.

/// Everything observable from one cosim run.
struct CosimDeterminismRun {
  std::string hw_traces;  ///< all hardware domains' traces, in domain order
  std::string sw_trace;
  std::string vcd;
  std::uint64_t cycles = 0;
  hwsim::SimStats sim_stats;
  std::vector<std::int64_t> attrs;
};

TEST(CoSimParallel, BusPipelineByteIdenticalAcrossThreadCounts) {
  auto run_once = [](int threads) {
    CoSimConfig cfg;
    cfg.threads = threads;
    PipelineCosim p(hw_consumer_marks(2), cfg);
    hwsim::VcdWriter vcd(p.cosim.hw_sim());
    p.cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
    for (int i = 0; i < 4; ++i) {
      p.cosim.inject(p.producer, "kick", {}, static_cast<std::uint64_t>(i));
      p.cosim.run(2000);
    }
    CosimDeterminismRun r;
    for (const auto& hw : p.cosim.hw_domains()) {
      r.hw_traces += hw->executor().trace().to_string();
    }
    r.sw_trace = p.cosim.sw_executor().trace().to_string();
    r.vcd = vcd.render();
    r.cycles = p.cosim.cycles();
    r.sim_stats = p.cosim.hw_sim().stats();
    r.attrs = {p.attr(p.producer, "Producer", "sent"),
               p.attr(p.producer, "Producer", "acks"),
               p.attr(p.consumer, "Consumer", "total")};
    return r;
  };

  CosimDeterminismRun serial = run_once(1);
  EXPECT_FALSE(serial.hw_traces.empty());
  for (int threads : {2, 8}) {
    CosimDeterminismRun par = run_once(threads);
    EXPECT_EQ(par.hw_traces, serial.hw_traces) << "threads=" << threads;
    EXPECT_EQ(par.sw_trace, serial.sw_trace) << "threads=" << threads;
    EXPECT_EQ(par.vcd, serial.vcd) << "threads=" << threads;
    EXPECT_EQ(par.cycles, serial.cycles) << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.delta_cycles, serial.sim_stats.delta_cycles)
        << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.process_activations,
              serial.sim_stats.process_activations)
        << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.wire_commits, serial.sim_stats.wire_commits)
        << "threads=" << threads;
    EXPECT_EQ(par.attrs, serial.attrs) << "threads=" << threads;
  }
}

/// A software boss fanning work out to three hardware workers on separate
/// mesh tiles (three concurrently evaluated hardware clock domains — the
/// shape the parallel kernel actually accelerates).
std::unique_ptr<xtuml::Domain> make_fanout_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Fan");
  b.cls("Boss", "BSS");
  for (int i = 0; i < 3; ++i) b.cls("W" + std::to_string(i));
  auto boss = b.edit("Boss");
  boss.attr("acks", DataType::kInt)
      .ref_attr("w0", "W0")
      .ref_attr("w1", "W1")
      .ref_attr("w2", "W2")
      .event("go")
      .event("done", {{"v", DataType::kInt}})
      .state("Idle")
      .state("Fanning",
             "generate job(n: 1, who: self) to self.w0;\n"
             "generate job(n: 2, who: self) to self.w1;\n"
             "generate job(n: 3, who: self) to self.w2;")
      .transition("Idle", "go", "Fanning")
      .transition("Fanning", "go", "Fanning");
  boss.state("Collect", "self.acks = self.acks + 1;")
      .transition("Fanning", "done", "Collect")
      .transition("Collect", "done", "Collect")
      .transition("Collect", "go", "Fanning");
  for (int i = 0; i < 3; ++i) {
    b.edit("W" + std::to_string(i))
        .attr("sum", DataType::kInt)
        .event("job", {{"n", DataType::kInt}, b.ref_param("who", "Boss")})
        .state("Work",
               "self.sum = self.sum + param.n;\n"
               "generate done(v: param.n) to param.who;")
        .transition("Work", "job", "Work");
  }
  return b.take();
}

marks::MarkSet fanout_mesh_marks() {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};  // sw owns (0,0)
  for (int i = 0; i < 3; ++i) {
    std::string cls = "W" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

TEST(CoSimParallel, MeshFanoutByteIdenticalAcrossThreadCounts) {
  auto run_once = [](int threads) {
    MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
    CoSimConfig cfg;
    cfg.threads = threads;
    CoSimulation cosim(*fx.system, cfg);
    auto w0 = cosim.create("W0");
    auto w1 = cosim.create("W1");
    auto w2 = cosim.create("W2");
    auto boss = cosim.create_with(
        "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
    EXPECT_EQ(cosim.hw_domains().size(), 3u);
    hwsim::VcdWriter vcd(cosim.hw_sim());
    cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
    for (int i = 0; i < 3; ++i) {
      cosim.inject(boss, "go");
      cosim.run(5000);
    }
    CosimDeterminismRun r;
    for (const auto& hw : cosim.hw_domains()) {
      r.hw_traces += hw->executor().trace().to_string();
    }
    r.sw_trace = cosim.sw_executor().trace().to_string();
    r.vcd = vcd.render();
    r.cycles = cosim.cycles();
    r.sim_stats = cosim.hw_sim().stats();
    auto attr_of = [&](const InstanceHandle& h, const char* cls,
                       const char* name) {
      const auto* a = fx.domain->find_class(cls)->find_attribute(name);
      return std::get<std::int64_t>(
          cosim.executor_of(h.cls).database().get_attr(h, a->id));
    };
    r.attrs = {attr_of(boss, "Boss", "acks"), attr_of(w0, "W0", "sum"),
               attr_of(w1, "W1", "sum"), attr_of(w2, "W2", "sum")};
    EXPECT_EQ(r.attrs[0], 9);  // 3 kicks x 3 workers
    EXPECT_EQ(r.attrs[1] + r.attrs[2] + r.attrs[3], 18);  // 3 x (1+2+3)
    return r;
  };

  CosimDeterminismRun serial = run_once(1);
  for (int threads : {2, 8}) {
    CosimDeterminismRun par = run_once(threads);
    EXPECT_EQ(par.hw_traces, serial.hw_traces) << "threads=" << threads;
    EXPECT_EQ(par.sw_trace, serial.sw_trace) << "threads=" << threads;
    EXPECT_EQ(par.vcd, serial.vcd) << "threads=" << threads;
    EXPECT_EQ(par.cycles, serial.cycles) << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.delta_cycles, serial.sim_stats.delta_cycles)
        << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.process_activations,
              serial.sim_stats.process_activations)
        << "threads=" << threads;
    EXPECT_EQ(par.sim_stats.wire_commits, serial.sim_stats.wire_commits)
        << "threads=" << threads;
    EXPECT_EQ(par.attrs, serial.attrs) << "threads=" << threads;
  }
}

// --- windowed (conservative-lookahead) execution -------------------------------
//
// CoSimConfig::window must also leave every observable byte unchanged. The
// runs below diff traces, VCD, cycle counts, SimStats, interconnect stats
// and final attributes across a (window x threads) grid against the serial
// per-cycle lockstep baseline (window=1, threads=1). run_cycles() is used
// so every configuration executes the exact same number of cycles,
// including partial tail windows (97 and 61 are deliberately not multiples
// of any window size).

/// CosimDeterminismRun plus the interconnect's own statistics rendered to
/// text (BusStats fields in bus mode, FabricStats::to_table() in mesh mode).
struct WindowedRun {
  CosimDeterminismRun base;
  std::string interconnect;
  int lookahead = 0;
  int window = 0;
};

TEST(CoSimWindowed, BusPipelineByteIdenticalAcrossWindowsAndThreads) {
  auto run_once = [](int window, int threads) {
    CoSimConfig cfg;
    cfg.window = window;
    cfg.threads = threads;
    PipelineCosim p(hw_consumer_marks(8), cfg);
    hwsim::VcdWriter vcd(p.cosim.hw_sim());
    p.cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
    for (int i = 0; i < 4; ++i) {
      p.cosim.inject(p.producer, "kick", {}, static_cast<std::uint64_t>(i));
      p.cosim.run_cycles(97);
    }
    p.cosim.run_cycles(61);
    WindowedRun r;
    for (const auto& hw : p.cosim.hw_domains()) {
      r.base.hw_traces += hw->executor().trace().to_string();
    }
    r.base.sw_trace = p.cosim.sw_executor().trace().to_string();
    r.base.vcd = vcd.render();
    r.base.cycles = p.cosim.cycles();
    r.base.sim_stats = p.cosim.hw_sim().stats();
    r.base.attrs = {p.attr(p.producer, "Producer", "sent"),
                    p.attr(p.producer, "Producer", "acks"),
                    p.attr(p.consumer, "Consumer", "total")};
    const BusStats& bs = p.cosim.bus().stats();
    r.interconnect = std::to_string(bs.frames_to_hw) + "/" +
                     std::to_string(bs.bytes_to_hw) + "/" +
                     std::to_string(bs.frames_to_sw) + "/" +
                     std::to_string(bs.bytes_to_sw);
    r.lookahead = p.cosim.lookahead();
    r.window = p.cosim.window();
    return r;
  };

  WindowedRun serial = run_once(/*window=*/1, /*threads=*/1);
  EXPECT_EQ(serial.lookahead, 8);
  EXPECT_EQ(serial.window, 1);
  EXPECT_FALSE(serial.base.hw_traces.empty());
  EXPECT_EQ(serial.base.attrs, (std::vector<std::int64_t>{4, 4, 10}));
  for (int window : {0, 2, 8}) {
    for (int threads : {1, 2, 8}) {
      WindowedRun par = run_once(window, threads);
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(par.window, window == 0 ? 8 : window);
      EXPECT_EQ(par.base.hw_traces, serial.base.hw_traces);
      EXPECT_EQ(par.base.sw_trace, serial.base.sw_trace);
      EXPECT_EQ(par.base.vcd, serial.base.vcd);
      EXPECT_EQ(par.base.cycles, serial.base.cycles);
      EXPECT_EQ(par.base.sim_stats.delta_cycles,
                serial.base.sim_stats.delta_cycles);
      EXPECT_EQ(par.base.sim_stats.process_activations,
                serial.base.sim_stats.process_activations);
      EXPECT_EQ(par.base.sim_stats.wire_commits,
                serial.base.sim_stats.wire_commits);
      EXPECT_EQ(par.base.attrs, serial.base.attrs);
      EXPECT_EQ(par.interconnect, serial.interconnect);
    }
  }
}

TEST(CoSimWindowed, MeshFanoutByteIdenticalAcrossWindowsAndThreads) {
  auto run_once = [](int window, int threads) {
    marks::MarkSet m = fanout_mesh_marks();
    m.set_domain_mark(marks::kLinkLatency, ScalarValue(std::int64_t{4}));
    MappedFixture fx(make_fanout_domain(), std::move(m));
    CoSimConfig cfg;
    cfg.window = window;
    cfg.threads = threads;
    CoSimulation cosim(*fx.system, cfg);
    auto w0 = cosim.create("W0");
    auto w1 = cosim.create("W1");
    auto w2 = cosim.create("W2");
    auto boss = cosim.create_with(
        "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
    hwsim::VcdWriter vcd(cosim.hw_sim());
    cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
    for (int i = 0; i < 3; ++i) {
      cosim.inject(boss, "go");
      cosim.run_cycles(97);
    }
    WindowedRun r;
    for (const auto& hw : cosim.hw_domains()) {
      r.base.hw_traces += hw->executor().trace().to_string();
    }
    r.base.sw_trace = cosim.sw_executor().trace().to_string();
    r.base.vcd = vcd.render();
    r.base.cycles = cosim.cycles();
    r.base.sim_stats = cosim.hw_sim().stats();
    auto attr_of = [&](const InstanceHandle& h, const char* cls,
                       const char* name) {
      const auto* a = fx.domain->find_class(cls)->find_attribute(name);
      return std::get<std::int64_t>(
          cosim.executor_of(h.cls).database().get_attr(h, a->id));
    };
    r.base.attrs = {attr_of(boss, "Boss", "acks"), attr_of(w0, "W0", "sum"),
                    attr_of(w1, "W1", "sum"), attr_of(w2, "W2", "sum")};
    EXPECT_EQ(r.base.attrs[0], 9);
    EXPECT_EQ(r.base.attrs[1] + r.base.attrs[2] + r.base.attrs[3], 18);
    r.interconnect = cosim.fabric().stats().to_table();
    r.lookahead = cosim.lookahead();
    r.window = cosim.window();
    return r;
  };

  WindowedRun serial = run_once(/*window=*/1, /*threads=*/1);
  EXPECT_EQ(serial.lookahead, 4);
  for (int window : {0, 2}) {
    for (int threads : {1, 2, 8}) {
      WindowedRun par = run_once(window, threads);
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(par.window, window == 0 ? 4 : window);
      EXPECT_EQ(par.base.hw_traces, serial.base.hw_traces);
      EXPECT_EQ(par.base.sw_trace, serial.base.sw_trace);
      EXPECT_EQ(par.base.vcd, serial.base.vcd);
      EXPECT_EQ(par.base.cycles, serial.base.cycles);
      EXPECT_EQ(par.base.sim_stats.delta_cycles,
                serial.base.sim_stats.delta_cycles);
      EXPECT_EQ(par.base.sim_stats.process_activations,
                serial.base.sim_stats.process_activations);
      EXPECT_EQ(par.base.sim_stats.wire_commits,
                serial.base.sim_stats.wire_commits);
      EXPECT_EQ(par.base.attrs, serial.base.attrs);
      EXPECT_EQ(par.interconnect, serial.interconnect);
    }
  }
}

TEST(CoSimWindowed, ZeroLatencyBusForcesLockstep) {
  // A zero-latency bus means a frame sent at cycle c is visible at cycle
  // c + 1 (pop_due at the next latch) — lookahead 1, so no window larger
  // than 1 is sound and the requested window must be ignored.
  CoSimConfig cfg;
  cfg.window = 8;
  cfg.threads = 4;
  PipelineCosim p(hw_consumer_marks(0), cfg);
  EXPECT_EQ(p.cosim.lookahead(), 1);
  EXPECT_EQ(p.cosim.window(), 1);
  p.cosim.inject(p.producer, "kick");
  p.cosim.run(2000);
  EXPECT_TRUE(p.cosim.quiescent());
  EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 1);
  EXPECT_EQ(p.attr(p.consumer, "Consumer", "total"), 1);
}

TEST(CoSimWindowed, WindowClampsToLookahead) {
  auto window_for = [](int requested) {
    CoSimConfig cfg;
    cfg.window = requested;
    PipelineCosim p(hw_consumer_marks(8), cfg);
    EXPECT_EQ(p.cosim.lookahead(), 8);
    return p.cosim.window();
  };
  EXPECT_EQ(window_for(0), 8);   // auto: the full lookahead
  EXPECT_EQ(window_for(64), 8);  // clamped down: correctness bound
  EXPECT_EQ(window_for(2), 2);   // smaller is always sound
  EXPECT_EQ(window_for(1), 1);   // explicit lockstep
}

TEST(CoSimWindowed, RunOvershootsQuiescenceByLessThanOneWindow) {
  auto run_to_quiescence = [](int window) {
    CoSimConfig cfg;
    cfg.window = window;
    PipelineCosim p(hw_consumer_marks(8), cfg);
    p.cosim.inject(p.producer, "kick");
    std::uint64_t n = p.cosim.run(2000);
    EXPECT_TRUE(p.cosim.quiescent());
    EXPECT_EQ(p.attr(p.producer, "Producer", "acks"), 1);
    return n;
  };
  std::uint64_t exact = run_to_quiescence(/*window=*/1);
  std::uint64_t windowed = run_to_quiescence(/*window=*/0);
  EXPECT_GE(windowed, exact);
  EXPECT_LT(windowed, exact + 8);  // overshoot < one full window
}

// --- sharded replay determinism ------------------------------------------------
//
// With a worker pool and more than one hardware domain, phase B of a
// window no longer replays the staged kernel writes serially: the kernel
// replays per-tile shards concurrently (Simulator::run_cycles_sharded) and
// the serial spine merges them edge by edge at the window boundary. The
// grids below drive a generic W x H mesh — one self-ticking FSM per
// hardware tile, the software CPU on tile 0 — through threads {1,2,8} x
// window {1,2,auto=L} x faults {off,on} and require every observable byte
// (traces, VCD, cycle count, SimStats, fabric and fault statistics, final
// attributes) to equal the serial lockstep baseline. 97 total cycles in
// chunks of 61+36, so no chunk is a multiple of any window size.

std::unique_ptr<xtuml::Domain> make_grid_domain(int nodes) {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Grid");
  for (int i = 0; i < nodes; ++i) b.cls("N" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    std::string peer = "N" + std::to_string((i + 1) % nodes);
    b.edit("N" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "self.acc = (self.acc * 33 + 7) % 65537;\n"
               "if (self.acc % 8 == 0)\n"
               "  generate ping(v: self.acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;\n"
               "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet grid_mesh_marks(int width, int height) {
  marks::MarkSet m;
  const int nodes = width * height - 1;  // tile 0 is the CPU tile
  for (int i = 0; i < nodes; ++i) {
    std::string cls = "N" + std::to_string(i);
    int tile = i + 1;
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tile % width}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tile / width}));
  }
  m.set_domain_mark(marks::kMeshWidth,
                    ScalarValue(static_cast<std::int64_t>(width)));
  m.set_domain_mark(marks::kMeshHeight,
                    ScalarValue(static_cast<std::int64_t>(height)));
  m.set_domain_mark(marks::kLinkLatency, ScalarValue(std::int64_t{4}));
  return m;
}

fault::FaultSpec grid_noisy_spec() {
  fault::FaultSpec s;
  s.seed = 7;
  s.flit_drop = 0.05;
  s.flit_corrupt = 0.05;
  return s;
}

/// WindowedRun plus the fault layer's own statistics rendered to text.
struct ShardedRun {
  WindowedRun w;
  std::string fault_stats;
  bool sharded = false;  ///< the kernel actually had replay shards set
};

ShardedRun run_grid_mesh(MappedFixture& fx, int nodes, int threads,
                         int window, bool faults) {
  fault::Plan plan(faults ? grid_noisy_spec() : fault::FaultSpec{});
  CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;
  cfg.fault = faults ? &plan : nullptr;
  CoSimulation cosim(*fx.system, cfg);
  std::vector<InstanceHandle> h;
  for (int i = 0; i < nodes; ++i) h.push_back(cosim.create("N" + std::to_string(i)));
  for (int i = 0; i < nodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cosim.executor_of(h[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(h[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(h[static_cast<std::size_t>((i + 1) % nodes)]));
    cosim.inject(h[static_cast<std::size_t>(i)], "tick");
  }
  hwsim::VcdWriter vcd(cosim.hw_sim());
  cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
  cosim.run_cycles(61);
  cosim.run_cycles(36);

  ShardedRun r;
  for (const auto& hw : cosim.hw_domains()) {
    r.w.base.hw_traces += hw->executor().trace().to_string();
  }
  r.w.base.sw_trace = cosim.sw_executor().trace().to_string();
  r.w.base.vcd = vcd.render();
  r.w.base.cycles = cosim.cycles();
  r.w.base.sim_stats = cosim.hw_sim().stats();
  const auto* acc = fx.domain->find_class("N0")->find_attribute("acc");
  for (int i = 0; i < nodes; ++i) {
    r.w.base.attrs.push_back(std::get<std::int64_t>(
        cosim.executor_of(h[static_cast<std::size_t>(i)].cls)
            .database()
            .get_attr(h[static_cast<std::size_t>(i)], acc->id)));
  }
  r.w.interconnect = cosim.fabric().stats().to_table();
  const auto& fs = cosim.fabric().fault_stats();
  r.fault_stats = std::to_string(fs.flits_dropped) + "/" +
                  std::to_string(fs.flits_corrupted) + "/" +
                  std::to_string(fs.link_down_events) + "/" +
                  std::to_string(fs.crc_rejects) + "/" +
                  std::to_string(fs.retransmissions) + "/" +
                  std::to_string(fs.frames_lost);
  r.w.lookahead = cosim.lookahead();
  r.w.window = cosim.window();
  r.sharded = cosim.hw_sim().has_replay_shards();
  return r;
}

void expect_sharded_identical(const ShardedRun& par, const ShardedRun& serial) {
  EXPECT_EQ(par.w.base.hw_traces, serial.w.base.hw_traces);
  EXPECT_EQ(par.w.base.sw_trace, serial.w.base.sw_trace);
  EXPECT_EQ(par.w.base.vcd, serial.w.base.vcd);
  EXPECT_EQ(par.w.base.cycles, serial.w.base.cycles);
  EXPECT_EQ(par.w.base.sim_stats.delta_cycles,
            serial.w.base.sim_stats.delta_cycles);
  EXPECT_EQ(par.w.base.sim_stats.process_activations,
            serial.w.base.sim_stats.process_activations);
  EXPECT_EQ(par.w.base.sim_stats.wire_commits,
            serial.w.base.sim_stats.wire_commits);
  EXPECT_EQ(par.w.base.attrs, serial.w.base.attrs);
  EXPECT_EQ(par.w.interconnect, serial.w.interconnect);
  EXPECT_EQ(par.fault_stats, serial.fault_stats);
}

void run_sharded_grid(int width, int height) {
  const int nodes = width * height - 1;
  MappedFixture fx(make_grid_domain(nodes), grid_mesh_marks(width, height));
  for (bool faults : {false, true}) {
    ShardedRun serial = run_grid_mesh(fx, nodes, /*threads=*/1, /*window=*/1,
                                      faults);
    EXPECT_EQ(serial.w.lookahead, 4);
    EXPECT_FALSE(serial.sharded);
    EXPECT_FALSE(serial.w.base.hw_traces.empty());
    for (int threads : {1, 2, 8}) {
      for (int window : {1, 2, 0}) {
        if (threads == 1 && window == 1) continue;
        SCOPED_TRACE("mesh=" + std::to_string(width) + "x" +
                     std::to_string(height) +
                     " threads=" + std::to_string(threads) +
                     " window=" + std::to_string(window) +
                     " faults=" + (faults ? "on" : "off"));
        ShardedRun par = run_grid_mesh(fx, nodes, threads, window, faults);
        EXPECT_EQ(par.w.window, window == 0 ? 4 : window);
        // The cells this grid exists for: pool + multiple tiles + window
        // means the kernel replay really ran sharded.
        EXPECT_EQ(par.sharded, threads > 1 && par.w.window > 1 && nodes > 1);
        expect_sharded_identical(par, serial);
      }
    }
  }
}

TEST(CoSimSharded, Mesh2x2ByteIdenticalGrid) { run_sharded_grid(2, 2); }

TEST(CoSimSharded, Mesh8x8ByteIdenticalGrid) { run_sharded_grid(8, 8); }

}  // namespace
}  // namespace xtsoc::cosim
