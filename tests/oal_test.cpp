#include <gtest/gtest.h>

#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/oal/lexer.hpp"
#include "xtsoc/oal/parser.hpp"
#include "xtsoc/oal/printer.hpp"
#include "xtsoc/oal/sema.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::oal {
namespace {

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;
using xtuml::ScalarValue;

// --- lexer -------------------------------------------------------------------

TEST(Lexer, Punctuation) {
  DiagnosticSink sink;
  auto toks = lex("( ) [ ] , ; : . -> = == != < <= > >= + - * / %", sink);
  EXPECT_FALSE(sink.has_errors());
  std::vector<TokKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  std::vector<TokKind> want = {
      TokKind::kLParen, TokKind::kRParen, TokKind::kLBracket,
      TokKind::kRBracket, TokKind::kComma, TokKind::kSemi, TokKind::kColon,
      TokKind::kDot, TokKind::kArrow, TokKind::kAssign, TokKind::kEq,
      TokKind::kNe, TokKind::kLt, TokKind::kLe, TokKind::kGt, TokKind::kGe,
      TokKind::kPlus, TokKind::kMinus, TokKind::kStar, TokKind::kSlash,
      TokKind::kPercent, TokKind::kEof};
  EXPECT_EQ(kinds, want);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  DiagnosticSink sink;
  auto toks = lex("select selector if iffy", sink);
  EXPECT_EQ(toks[0].kind, TokKind::kKwSelect);
  EXPECT_EQ(toks[1].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].text, "selector");
  EXPECT_EQ(toks[2].kind, TokKind::kKwIf);
  EXPECT_EQ(toks[3].kind, TokKind::kIdent);
}

TEST(Lexer, Numbers) {
  DiagnosticSink sink;
  auto toks = lex("42 3.5 0", sink);
  EXPECT_EQ(toks[0].kind, TokKind::kIntLit);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kRealLit);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 3.5);
  EXPECT_EQ(toks[2].int_value, 0);
}

TEST(Lexer, StringsWithEscapes) {
  DiagnosticSink sink;
  auto toks = lex(R"("hello\nworld" "a\"b")", sink);
  EXPECT_FALSE(sink.has_errors());
  EXPECT_EQ(toks[0].text, "hello\nworld");
  EXPECT_EQ(toks[1].text, "a\"b");
}

TEST(Lexer, UnterminatedString) {
  DiagnosticSink sink;
  lex("\"oops", sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Lexer, Comments) {
  DiagnosticSink sink;
  auto toks = lex("x -- this is a comment\ny", sink);
  ASSERT_EQ(toks.size(), 3u);  // x, y, eof
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
}

TEST(Lexer, LocationsTracked) {
  DiagnosticSink sink;
  auto toks = lex("a\n  b", sink);
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, BadCharacterReported) {
  DiagnosticSink sink;
  lex("a @ b", sink);
  EXPECT_TRUE(sink.has_errors());
}

// --- parser -------------------------------------------------------------------

Block parse_ok(std::string_view src) {
  DiagnosticSink sink;
  Block b = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  return b;
}

void expect_parse_error(std::string_view src) {
  DiagnosticSink sink;
  parse(src, sink);
  EXPECT_TRUE(sink.has_errors()) << "expected a parse error for: " << src;
}

TEST(Parser, Assignment) {
  Block b = parse_ok("x = 1 + 2 * 3;");
  ASSERT_EQ(b.stmts.size(), 1u);
  EXPECT_EQ(b.stmts[0]->kind, StmtKind::kAssign);
  // precedence: 1 + (2*3)
  EXPECT_EQ(print(*b.stmts[0]), "x = 1 + 2 * 3;\n");
}

TEST(Parser, PrecedenceAndParens) {
  Block b = parse_ok("x = (1 + 2) * 3;");
  EXPECT_EQ(print(*b.stmts[0]), "x = (1 + 2) * 3;\n");
}

TEST(Parser, RightAssociativityParens) {
  Block b = parse_ok("x = 1 - (2 - 3);");
  EXPECT_EQ(print(*b.stmts[0]), "x = 1 - (2 - 3);\n");
}

TEST(Parser, AttributeAssignment) {
  Block b = parse_ok("self.count = self.count + 1;");
  EXPECT_EQ(print(*b.stmts[0]), "self.count = self.count + 1;\n");
}

TEST(Parser, IfElifElse) {
  Block b = parse_ok(
      "if (x > 0)\n  y = 1;\nelif (x < 0)\n  y = 2;\nelse\n  y = 3;\nend if;");
  ASSERT_EQ(b.stmts.size(), 1u);
  const auto& i = static_cast<const IfStmt&>(*b.stmts[0]);
  EXPECT_EQ(i.branches.size(), 2u);
  EXPECT_TRUE(i.else_body.has_value());
}

TEST(Parser, WhileWithBreakContinue) {
  Block b = parse_ok("while (x < 10)\n  x = x + 1;\n  if (x == 5)\n    break;"
                     "\n  end if;\n  continue;\nend while;");
  ASSERT_EQ(b.stmts.size(), 1u);
  EXPECT_EQ(b.stmts[0]->kind, StmtKind::kWhile);
}

TEST(Parser, SelectFromInstances) {
  Block b = parse_ok(
      "select many lights from instances of Light where (selected.on == true);");
  const auto& s = static_cast<const SelectFromStmt&>(*b.stmts[0]);
  EXPECT_TRUE(s.many);
  EXPECT_EQ(s.var, "lights");
  EXPECT_EQ(s.class_name, "Light");
  EXPECT_NE(s.where, nullptr);
}

TEST(Parser, SelectRelated) {
  Block b = parse_ok("select one ctrl related by self->Controller[R3];");
  const auto& s = static_cast<const SelectRelatedStmt&>(*b.stmts[0]);
  EXPECT_FALSE(s.many);
  EXPECT_EQ(s.class_name, "Controller");
  EXPECT_EQ(s.assoc_name, "R3");
}

TEST(Parser, GenerateWithArgsAndDelay) {
  Block b = parse_ok("generate start(seconds: 30, turbo: true) to oven delay 5;");
  const auto& g = static_cast<const GenerateStmt&>(*b.stmts[0]);
  EXPECT_EQ(g.event_name, "start");
  EXPECT_EQ(g.args.size(), 2u);
  EXPECT_EQ(g.args[0].name, "seconds");
  EXPECT_NE(g.delay, nullptr);
}

TEST(Parser, CreateDeleteRelateUnrelate) {
  Block b = parse_ok(
      "create object instance d of Dog;\n"
      "relate d to self across R1;\n"
      "unrelate d from self across R1;\n"
      "delete object instance d;");
  EXPECT_EQ(b.stmts.size(), 4u);
  EXPECT_EQ(b.stmts[0]->kind, StmtKind::kCreate);
  EXPECT_EQ(b.stmts[1]->kind, StmtKind::kRelate);
  EXPECT_EQ(b.stmts[2]->kind, StmtKind::kUnrelate);
  EXPECT_EQ(b.stmts[3]->kind, StmtKind::kDelete);
}

TEST(Parser, ForEach) {
  Block b = parse_ok("for each l in lights\n  generate off() to l;\nend for;");
  const auto& f = static_cast<const ForEachStmt&>(*b.stmts[0]);
  EXPECT_EQ(f.var, "l");
  EXPECT_EQ(f.body.stmts.size(), 1u);
}

TEST(Parser, UnaryOperators) {
  parse_ok("x = -y;");
  parse_ok("x = not y;");
  parse_ok("x = empty y;");
  parse_ok("x = not_empty y;");
  parse_ok("x = cardinality y;");
}

TEST(Parser, LogStatement) {
  Block b = parse_ok("log \"value\", x, 42;");
  const auto& l = static_cast<const LogStmt&>(*b.stmts[0]);
  EXPECT_EQ(l.args.size(), 3u);
}

TEST(Parser, ParamAccess) {
  Block b = parse_ok("x = param.seconds + 1;");
  EXPECT_EQ(print(*b.stmts[0]), "x = param.seconds + 1;\n");
}

TEST(Parser, Errors) {
  expect_parse_error("x = ;");
  expect_parse_error("if (x) end while;");
  expect_parse_error("generate f() oven;");      // missing 'to'
  expect_parse_error("select x from instances of C;");  // missing any/many
  expect_parse_error("x = 1");                   // missing semicolon
  expect_parse_error("create object x of C;");   // missing 'instance'
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticSink sink;
  parse("x = ;\ny = ;\n", sink);
  EXPECT_GE(sink.error_count(), 2u);
}

// Round-trip property: print(parse(s)) is a fixpoint.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  DiagnosticSink sink;
  Block b1 = parse(GetParam(), sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  std::string p1 = print(b1);
  Block b2 = parse(p1, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_EQ(p1, print(b2));
}

INSTANTIATE_TEST_SUITE_P(
    OalSnippets, RoundTrip,
    ::testing::Values(
        "x = 1;",
        "x = 1 + 2 * (3 - 4) / 5 % 2;",
        "x = a and b or not c;",
        "x = empty y or not_empty z;",
        "self.n = cardinality dogs;",
        "if (a == b)\n x = 1;\nelse\n x = 2;\nend if;",
        "while (i < 10)\n i = i + 1;\nend while;",
        "for each d in dogs\n generate bark() to d;\nend for;",
        "select any d from instances of Dog;",
        "select many ds from instances of Dog where (selected.age > 2);",
        "select one o related by self->Owner[R1];",
        "create object instance d of Dog;\ndelete object instance d;",
        "generate feed(amount: 3) to d delay 10;",
        "relate a to b across R2;",
        "log \"x is\", x;",
        "return;"));

// --- sema ---------------------------------------------------------------------

/// Domain used by most sema tests:
///   Dog (age: int, name: string, happy: bool, weight: real)
///     events: poke(), feed(amount: int), walk(km: real)
///     states: Idle -> poke -> Excited; Excited -> feed(amount) -> Eating
///   Owner (budget: int), R1: Owner 1 -- * Dog
Domain make_sema_domain() {
  DomainBuilder b("Kennel");
  b.cls("Dog", "DOG")
      .attr("age", DataType::kInt)
      .attr("name", DataType::kString)
      .attr("happy", DataType::kBool)
      .attr("weight", DataType::kReal)
      .event("poke")
      .event("feed", {{"amount", DataType::kInt}})
      .event("walk", {{"km", DataType::kReal}})
      .state("Idle")
      .state("Excited")
      .state("Eating")
      .transition("Idle", "poke", "Excited")
      .transition("Excited", "feed", "Eating")
      .transition("Eating", "poke", "Excited");
  b.cls("Owner", "OWN").attr("budget", DataType::kInt);
  b.assoc("R1", "Owner", "keeps", Multiplicity::kZeroOne, "Dog", "kept_by",
          Multiplicity::kZeroMany);
  return std::move(*b.take());
}

AnalyzedAction analyze_ok(const Domain& d, std::string_view src,
                          std::vector<xtuml::Parameter> params = {}) {
  DiagnosticSink sink;
  Block b = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  AnalyzedAction a = analyze_block(d, d.find_class_id("Dog"), std::move(b),
                                   std::move(params), sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  return a;
}

void expect_sema_error(const Domain& d, std::string_view src,
                       std::string_view code,
                       std::vector<xtuml::Parameter> params = {}) {
  DiagnosticSink sink;
  Block b = parse(src, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  analyze_block(d, d.find_class_id("Dog"), std::move(b), std::move(params),
                sink);
  ASSERT_TRUE(sink.has_errors()) << "expected error " << code << " for: " << src;
  EXPECT_NE(sink.to_string().find(code), std::string::npos) << sink.to_string();
}

TEST(Sema, LocalDeclarationAndUse) {
  Domain d = make_sema_domain();
  AnalyzedAction a = analyze_ok(d, "x = 1;\ny = x + 2;");
  EXPECT_EQ(a.frame_size, 2);
  EXPECT_EQ(a.locals[0].name, "x");
  EXPECT_EQ(a.locals[0].type, OalType::scalar(DataType::kInt));
}

TEST(Sema, UnknownVariable) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "x = y;", "oal.sema.unknown_var");
}

TEST(Sema, RetypeRejected) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "x = 1;\nx = \"str\";", "oal.sema.retype");
}

TEST(Sema, IntToRealWideningOk) {
  Domain d = make_sema_domain();
  analyze_ok(d, "x = 1.5;\nx = 2;");            // real var accepts int
  analyze_ok(d, "self.weight = 3;");            // real attr accepts int
}

TEST(Sema, RealToIntRejected) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "self.age = 2.5;", "oal.sema.assign_type");
}

TEST(Sema, SelfAttributes) {
  Domain d = make_sema_domain();
  AnalyzedAction a = analyze_ok(d, "self.age = self.age + 1;");
  EXPECT_EQ(a.frame_size, 0);
}

TEST(Sema, UnknownAttribute) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "self.tail = 1;", "oal.sema.unknown_attr");
}

TEST(Sema, AttrOnNonInstance) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "x = 1;\ny = x.age;", "oal.sema.attr_base");
}

TEST(Sema, ParamsBindAgainstSignature) {
  Domain d = make_sema_domain();
  AnalyzedAction a = analyze_ok(d, "self.age = param.amount;",
                                {{"amount", DataType::kInt}});
  EXPECT_EQ(a.params.size(), 1u);
}

TEST(Sema, UnknownParam) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "x = param.nope;", "oal.sema.unknown_param");
}

TEST(Sema, GenerateChecksArgsAndTypes) {
  Domain d = make_sema_domain();
  analyze_ok(d, "generate feed(amount: 3) to self;");
  expect_sema_error(d, "generate feed() to self;", "oal.sema.generate_missing");
  expect_sema_error(d, "generate feed(amount: 3, amount: 4) to self;",
                    "oal.sema.generate_dup");
  expect_sema_error(d, "generate feed(amount: \"x\") to self;",
                    "oal.sema.generate_type");
  expect_sema_error(d, "generate nope() to self;", "oal.sema.unknown_event");
  expect_sema_error(d, "generate feed(amount: 1) to 3;",
                    "oal.sema.generate_target");
}

TEST(Sema, GenerateWidensIntArgToRealParam) {
  Domain d = make_sema_domain();
  analyze_ok(d, "generate walk(km: 2) to self;");
}

TEST(Sema, DelayMustBeInt) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "generate poke() to self delay 1.5;", "oal.sema.delay");
}

TEST(Sema, SelectFromDeclaresVar) {
  Domain d = make_sema_domain();
  AnalyzedAction a =
      analyze_ok(d, "select many ds from instances of Dog;\n"
                    "n = cardinality ds;");
  EXPECT_EQ(a.locals[0].type, OalType::inst_set(d.find_class_id("Dog")));
  EXPECT_EQ(a.locals[1].type, OalType::scalar(DataType::kInt));
}

TEST(Sema, SelectWhereBindsSelected) {
  Domain d = make_sema_domain();
  analyze_ok(d, "select many ds from instances of Dog where (selected.age > 2);");
  expect_sema_error(d, "x = selected.age;", "oal.sema.selected");
}

TEST(Sema, SelectRelatedChecksAssociation) {
  Domain d = make_sema_domain();
  analyze_ok(d, "select one o related by self->Owner[R1];");
  expect_sema_error(d, "select one o related by self->Owner[R9];",
                    "oal.sema.unknown_assoc");
  expect_sema_error(d, "select one o related by self->Dog[R1];",
                    "oal.sema.select_class");
}

TEST(Sema, RelateChecksClasses) {
  Domain d = make_sema_domain();
  analyze_ok(d, "select one o related by self->Owner[R1];\n"
                "unrelate self from o across R1;\n"
                "relate self to o across R1;");
  expect_sema_error(d, "relate self to self across R1;",
                    "oal.sema.relate_classes");
}

TEST(Sema, ForEachRequiresSet) {
  Domain d = make_sema_domain();
  analyze_ok(d, "select many ds from instances of Dog;\n"
                "for each x in ds\n  generate poke() to x;\nend for;");
  expect_sema_error(d, "x = 1;\nfor each y in x\nend for;", "oal.sema.foreach");
}

TEST(Sema, BreakOutsideLoop) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "break;", "oal.sema.loopctl");
}

TEST(Sema, ConditionsMustBeBool) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "if (1)\nend if;", "oal.sema.cond");
  expect_sema_error(d, "while (\"s\")\nend while;", "oal.sema.cond");
}

TEST(Sema, ArithmeticTypeErrors) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "x = true + 1;", "oal.sema.arith");
  expect_sema_error(d, "x = 1.5 % 2;", "oal.sema.mod");
  expect_sema_error(d, "x = \"a\" and true;", "oal.sema.logic");
  expect_sema_error(d, "x = self < self;", "oal.sema.cmp");
}

TEST(Sema, StringConcatAndCompare) {
  Domain d = make_sema_domain();
  analyze_ok(d, "s = \"a\" + \"b\";\nb = \"a\" < \"b\";\ne = \"a\" == \"b\";");
}

TEST(Sema, InstanceEqualityOk) {
  Domain d = make_sema_domain();
  analyze_ok(d, "select any a from instances of Dog;\nb = a == self;");
}

TEST(Sema, CreateUnknownClass) {
  Domain d = make_sema_domain();
  expect_sema_error(d, "create object instance x of Cat;",
                    "oal.sema.unknown_class");
}

TEST(Sema, EntrySignatureAgreement) {
  // Two events with different signatures entering the same state -> error.
  DomainBuilder b("D");
  b.cls("A")
      .event("e1", {{"x", DataType::kInt}})
      .event("e2", {{"y", DataType::kBool}})
      .state("S0")
      .state("S1")
      .transition("S0", "e1", "S1")
      .transition("S0", "e2", "S1");
  DiagnosticSink sink;
  const xtuml::ClassDef& cls = *b.domain().find_class("A");
  entry_signature(cls, cls.find_state("S1")->id, sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Sema, EntrySignatureSharedOk) {
  DomainBuilder b("D");
  b.cls("A")
      .event("e1", {{"x", DataType::kInt}})
      .event("e2", {{"x", DataType::kInt}})
      .state("S0")
      .state("S1")
      .transition("S0", "e1", "S1")
      .transition("S0", "e2", "S1");
  DiagnosticSink sink;
  const xtuml::ClassDef& cls = *b.domain().find_class("A");
  auto sig = entry_signature(cls, cls.find_state("S1")->id, sink);
  EXPECT_FALSE(sink.has_errors());
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(sig[0].name, "x");
}

// --- compile_domain ------------------------------------------------------------

TEST(CompileDomain, CompilesValidModel) {
  DomainBuilder b("D");
  b.cls("Counter")
      .attr("n", DataType::kInt)
      .event("bump")
      .state("Counting", "self.n = self.n + 1;")
      .transition("Counting", "bump", "Counting");
  DiagnosticSink sink;
  auto cd = compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();
  const AnalyzedAction& a =
      cd->action(b.domain().find_class_id("Counter"), StateId(0));
  EXPECT_EQ(a.ast.stmts.size(), 1u);
}

TEST(CompileDomain, RejectsBadAction) {
  DomainBuilder b("D");
  b.cls("Counter")
      .attr("n", DataType::kInt)
      .event("bump")
      .state("Counting", "self.nope = 1;")
      .transition("Counting", "bump", "Counting");
  DiagnosticSink sink;
  auto cd = compile_domain(b.domain(), sink);
  EXPECT_EQ(cd, nullptr);
  EXPECT_TRUE(sink.has_errors());
}

TEST(CompileDomain, RejectsInvalidModel) {
  Domain d("D");
  d.add_class("A");
  d.add_class("A");
  DiagnosticSink sink;
  EXPECT_EQ(compile_domain(d, sink), nullptr);
}

}  // namespace
}  // namespace xtsoc::oal
