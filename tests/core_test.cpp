#include <gtest/gtest.h>

#include <sstream>

#include "test_models.hpp"
#include "xtsoc/core/project.hpp"
#include "xtsoc/core/stimulus.hpp"
#include "xtsoc/text/xtm.hpp"

namespace xtsoc::core {
namespace {

using runtime::Value;
using testing::make_pipeline_domain;

constexpr const char* kPipeMarks = R"(
# initial partition: accelerate the consumer
Consumer.isHardware = true
Consumer.maxInstances = 16
domain.busLatency = 2
)";

std::unique_ptr<Project> make_project() {
  DiagnosticSink sink;
  auto p = Project::from_domain(make_pipeline_domain(),
                                marks::MarkSet::from_text(kPipeMarks, sink),
                                sink);
  EXPECT_NE(p, nullptr) << sink.to_string();
  return p;
}

verify::TestCase kick_test(int kicks) {
  verify::TestCase t;
  t.name = "kicks";
  t.population = {
      {"cns", "Consumer", {}},
      {"prd", "Producer", {{"sink", verify::RefByName{"cns"}}}},
  };
  for (int i = 0; i < kicks; ++i) {
    t.stimuli.push_back({"prd", "kick", {}, static_cast<std::uint64_t>(i) * 100});
  }
  t.expect_attrs = {
      {"cns", "total",
       Value(static_cast<std::int64_t>(kicks * (kicks + 1) / 2))}};
  return t;
}

TEST(Project, FromDomainEndToEnd) {
  auto p = make_project();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->domain().name(), "Pipe");
  EXPECT_TRUE(p->marks().is_hardware("Consumer"));
  EXPECT_EQ(p->system().bus_latency(), 2);
  EXPECT_EQ(p->system().interface().message_count(), 2u);
}

TEST(Project, FromXtmEndToEnd) {
  // Express the same pipeline as .xtm text (model authored as data).
  std::string xtm = text::write_xtm(*make_pipeline_domain());
  DiagnosticSink sink;
  auto p = Project::from_xtm(xtm, kPipeMarks, sink);
  ASSERT_NE(p, nullptr) << sink.to_string();
  EXPECT_EQ(p->domain().class_count(), 2u);
  verify::RunReport r = p->run_model_test(kick_test(3));
  EXPECT_TRUE(r.passed) << r.to_string();
}

TEST(Project, BadXtmRejected) {
  DiagnosticSink sink;
  EXPECT_EQ(Project::from_xtm("not a model", "", sink), nullptr);
}

TEST(Project, BadMarksRejected) {
  std::string xtm = text::write_xtm(*make_pipeline_domain());
  DiagnosticSink sink;
  EXPECT_EQ(Project::from_xtm(xtm, "Nope.isHardware = true", sink), nullptr);
}

TEST(Project, ModelTestAndConformance) {
  auto p = make_project();
  verify::RunReport abstract = p->run_model_test(kick_test(4));
  EXPECT_TRUE(abstract.passed) << abstract.to_string();

  verify::ConformanceReport cr = p->run_conformance(kick_test(4));
  EXPECT_TRUE(cr.passed()) << cr.equivalence.to_string();
}

TEST(Project, RepartitionIsAMarkDiff) {
  auto p = make_project();
  ASSERT_TRUE(p->system().partition().is_hardware(
      p->domain().find_class_id("Consumer")));

  // Move the accelerator from Consumer to Producer: two mark lines change,
  // zero model edits.
  DiagnosticSink sink;
  marks::MarkSet after = marks::MarkSet::from_text(
      "Producer.isHardware = true\ndomain.busLatency = 2\n", sink);
  auto diff = p->repartition(std::move(after), sink);
  ASSERT_TRUE(diff.has_value()) << sink.to_string();
  EXPECT_GE(diff->size(), 2u);

  EXPECT_TRUE(p->system().partition().is_hardware(
      p->domain().find_class_id("Producer")));
  EXPECT_FALSE(p->system().partition().is_hardware(
      p->domain().find_class_id("Consumer")));

  // The repartitioned system still passes the same formal test case.
  verify::ConformanceReport cr = p->run_conformance(kick_test(3));
  EXPECT_TRUE(cr.passed()) << cr.equivalence.to_string();
}

TEST(Project, InvalidRepartitionKeepsOldMapping) {
  auto p = make_project();
  DiagnosticSink sink;
  marks::MarkSet bad;
  bad.mark_hardware("NoSuchClass");
  EXPECT_FALSE(p->repartition(std::move(bad), sink).has_value());
  // Old mapping still in effect.
  EXPECT_TRUE(p->system().partition().is_hardware(
      p->domain().find_class_id("Consumer")));
}

TEST(Project, GenerateAllProducesBothHalves) {
  auto p = make_project();
  DiagnosticSink sink;
  codegen::Output out = p->generate_all(sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_NE(out.find("sw/pipe_model.c"), nullptr);
  EXPECT_NE(out.find("hw/consumer.vhd"), nullptr);
  EXPECT_NE(out.find("hw/pipe_pkg.vhd"), nullptr);
  EXPECT_GT(out.total_lines(), 200u);
}

TEST(Project, SummaryMentionsPartitionAndInterface) {
  auto p = make_project();
  std::string s = p->summary();
  EXPECT_NE(s.find("2 classes"), std::string::npos);
  EXPECT_NE(s.find("hardware: Consumer"), std::string::npos);
  EXPECT_NE(s.find("2 boundary messages"), std::string::npos);
}

// --- stimulus scripts ---------------------------------------------------------

constexpr const char* kPipeScript = R"(
# drive the pipeline from text
create cns Consumer
create prd Producer sink=@cns
inject prd kick
run
inject prd kick delay=100
run
expect prd.sent == 2
expect prd.acks == 2
expect cns.total == 3
expect_state prd Waiting
print summary
)";

TEST(Stimulus, RunsAgainstAbstractModel) {
  auto p = make_project();
  std::ostringstream out;
  StimulusResult r = run_stimulus(*p, kPipeScript, out);
  EXPECT_TRUE(r.ok) << out.str();
  EXPECT_EQ(r.failed_expectations, 0);
  EXPECT_NE(out.str().find("expect ok: cns.total == 3"), std::string::npos);
  EXPECT_NE(out.str().find("dispatches"), std::string::npos);
}

TEST(Stimulus, SameScriptRunsAgainstCosim) {
  auto p = make_project();
  std::ostringstream out;
  StimulusResult r = run_stimulus_cosim(*p, kPipeScript, out);
  EXPECT_TRUE(r.ok) << out.str();
  EXPECT_NE(out.str().find("cycles"), std::string::npos);
}

TEST(Stimulus, FailedExpectationReported) {
  auto p = make_project();
  std::ostringstream out;
  StimulusResult r = run_stimulus(*p,
                                  "create cns Consumer\n"
                                  "expect cns.total == 42\n",
                                  out);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_expectations, 1);
  EXPECT_NE(out.str().find("EXPECT FAILED"), std::string::npos);
}

TEST(Stimulus, ScriptErrorsStopExecution) {
  auto p = make_project();
  std::ostringstream out;
  for (const char* bad :
       {"create x NoSuchClass\n", "create a Consumer\ncreate a Consumer\n",
        "inject ghost kick\n", "create c Consumer\ninject c nosuch\n",
        "create c Consumer\nexpect c.nope == 1\n",
        "create c Consumer\nexpect_state c NoState\n",
        "bogus command\n", "create c Consumer zz=1\n",
        "create p Producer sink=@missing\n", "print nonsense\n"}) {
    std::ostringstream o;
    StimulusResult r = run_stimulus(*p, bad, o);
    EXPECT_FALSE(r.ok) << bad;
  }
}

TEST(Stimulus, PrintTraceIncludesEvents) {
  auto p = make_project();
  std::ostringstream out;
  run_stimulus(*p,
               "create cns Consumer\ncreate prd Producer sink=@cns\n"
               "inject prd kick\nrun\nprint trace\n",
               out);
  EXPECT_NE(out.str().find("dispatch"), std::string::npos);
}

TEST(Stimulus, RunBoundStopsSelfTickers) {
  // A self-perpetuating model must stop at the run bound.
  DiagnosticSink sink;
  xtuml::DomainBuilder b("Tick");
  b.cls("A")
      .attr("n", xtuml::DataType::kInt)
      .event("t")
      .state("S", "self.n = self.n + 1;\ngenerate t() to self delay 1;")
      .transition("S", "t", "S");
  auto p = Project::from_domain(b.take(), marks::MarkSet{}, sink);
  ASSERT_NE(p, nullptr);
  std::ostringstream out;
  StimulusResult r = run_stimulus(*p,
                                  "create a A\ninject a t\nrun 5\n"
                                  "expect a.n == 5\n",
                                  out);
  EXPECT_TRUE(r.ok) << out.str();
}

TEST(Project, MakeExecutorsWork) {
  auto p = make_project();
  auto exec = p->make_abstract_executor();
  auto h = exec->create("Consumer");
  EXPECT_TRUE(exec->database().is_alive(h));

  auto cs = p->make_cosim();
  auto ch = cs->create("Consumer");
  EXPECT_TRUE(cs->hw_executor().database().is_alive(ch));
}

}  // namespace
}  // namespace xtsoc::core
