// snap::Server / snap::Client — the xtsocd engine.
//
// The contracts under test, in order:
//   * protocol basics through the socket-free core (handle_request /
//     handle_line): ping, unknown op, malformed JSON, load rejection;
//   * a server-side cold campaign produces the EXACT document an
//     in-process fault::Campaign produces — the daemon changes where runs
//     execute, never what they compute;
//   * a warm campaign (served from the resident checkpoint) matches the
//     cold document too, and the second identical request hits the cache;
//   * per-tenant quotas reject past the budget (and the rejected request
//     consumes nothing);
//   * bounded-queue backpressure: with max_queue=0, a request that
//     arrives while the executor is busy is rejected immediately;
//   * the "server" stats section counts what happened;
//   * end to end over AF_UNIX: start(), Client round trips, shutdown.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/core/project.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/client.hpp"
#include "xtsoc/snap/server.hpp"
#include "xtsoc/text/xtm.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::snap {
namespace {

using xtuml::DataType;
using xtuml::ScalarValue;

/// The snap_test ring workload, expressed as wire-shippable text: three
/// self-sustaining hardware nodes on a 2x2 mesh. Campaigns need traffic,
/// and this generates it forever without stimulus.
std::unique_ptr<xtuml::Domain> make_ring_domain() {
  xtuml::DomainBuilder b("Ring");
  constexpr int kNodes = 3;
  for (int i = 0; i < kNodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < kNodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % kNodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "self.acc = (self.acc * 33 + 7) % 65537;\n"
               "if (self.acc % 8 == 0)\n"
               "  generate ping(v: self.acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged", "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

std::string ring_xtm() { return text::write_xtm(*make_ring_domain()); }

std::string ring_marks_text() {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};
  for (int i = 0; i < 3; ++i) {
    std::string cls = "Node" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m.to_text();
}

/// Fault marks as wire text, the way a client ships them.
std::string faults_text(std::uint64_t window_start = 0) {
  marks::MarkSet m;
  m.set_domain_mark(marks::kFaultSeed, ScalarValue(std::int64_t{42}));
  m.set_domain_mark(marks::kFaultRateFlitDrop, ScalarValue(0.02));
  m.set_domain_mark(marks::kFaultRateFlitCorrupt, ScalarValue(0.02));
  if (window_start > 0) {
    m.set_domain_mark(marks::kFaultWindowStart,
                      ScalarValue(static_cast<std::int64_t>(window_start)));
  }
  return m.to_text();
}

obs::JsonValue req(std::initializer_list<obs::JsonValue::Member> fields) {
  obs::JsonValue v = obs::JsonValue::object();
  for (const auto& [k, val] : fields) v[k] = val;
  return v;
}

bool ok(const obs::JsonValue& resp) {
  const obs::JsonValue* f = resp.find("ok");
  return f != nullptr && f->as_bool();
}

std::string error_of(const obs::JsonValue& resp) {
  const obs::JsonValue* f = resp.find("error");
  return f != nullptr && f->is_string() ? f->as_string() : "";
}

ServerConfig test_config() {
  ServerConfig c;  // no socket: handle_request only
  c.threads = 1;
  return c;
}

void load_ring(Server& server) {
  std::string err;
  ASSERT_TRUE(server.load_model("ring", ring_xtm(), ring_marks_text(), &err))
      << err;
}

// --- protocol basics -----------------------------------------------------------

TEST(SnapServer, PingPongs) {
  Server server(test_config());
  obs::JsonValue resp = server.handle_request(req({{"op", "ping"}}));
  EXPECT_TRUE(ok(resp));
  EXPECT_TRUE(resp.at("pong").as_bool());
}

TEST(SnapServer, UnknownOpAndMalformedLineAreErrors) {
  Server server(test_config());
  EXPECT_FALSE(ok(server.handle_request(req({{"op", "frobnicate"}}))));
  // handle_line never throws: malformed input yields a parseable ok=false.
  std::string line = server.handle_line("this is not json");
  std::optional<obs::JsonValue> resp = obs::json_parse(line);
  ASSERT_TRUE(resp.has_value()) << line;
  EXPECT_FALSE(ok(*resp));
  EXPECT_NE(error_of(*resp).find("bad request"), std::string::npos);
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(SnapServer, LoadRejectsBadModelAndRunNeedsLoad) {
  Server server(test_config());
  obs::JsonValue resp = server.handle_request(
      req({{"op", "load"}, {"name", "x"}, {"model", "not a model"}}));
  EXPECT_FALSE(ok(resp));
  EXPECT_NE(error_of(resp).find("rejected"), std::string::npos);
  resp = server.handle_request(req({{"op", "run"}, {"model", "ghost"}}));
  EXPECT_FALSE(ok(resp));
  EXPECT_NE(error_of(resp).find("unknown model"), std::string::npos);
}

TEST(SnapServer, LoadThenRun) {
  Server server(test_config());
  obs::JsonValue resp = server.handle_request(req({{"op", "load"},
                                                   {"name", "ring"},
                                                   {"model", ring_xtm()},
                                                   {"marks", ring_marks_text()}}));
  ASSERT_TRUE(ok(resp)) << error_of(resp);
  resp = server.handle_request(
      req({{"op", "run"}, {"model", "ring"}, {"cycles", 128}}));
  ASSERT_TRUE(ok(resp)) << error_of(resp);
  EXPECT_TRUE(resp.at("report").is_object());
  EXPECT_EQ(server.stats().runs, 1u);
  EXPECT_EQ(server.stats().models_loaded, 1u);
}

// --- campaigns -----------------------------------------------------------------

constexpr int kRuns = 4;
constexpr std::uint64_t kWarm = 200;
constexpr std::uint64_t kRun = 300;

/// What the daemon must reproduce: an in-process cold campaign over the
/// same model text, seeds and cycle span.
std::string in_process_campaign_doc() {
  DiagnosticSink sink;
  auto project = core::Project::from_xtm(ring_xtm(), ring_marks_text(), sink);
  EXPECT_NE(project, nullptr) << sink.to_string();
  DiagnosticSink fsink;
  marks::MarkSet fmarks =
      marks::MarkSet::from_text(faults_text(kWarm), fsink);
  fault::FaultSpec spec = fault::FaultSpec::from_marks(fmarks);
  fault::Campaign campaign(spec, kRuns, 1);
  fault::CampaignResult result = campaign.run([&](int index, std::uint64_t) {
    fault::Plan plan(campaign.spec_for(index));
    cosim::CoSimConfig cfg;
    cfg.fault = &plan;
    auto cs = project->make_cosim(cfg);
    cs->run_cycles(kWarm + kRun);
    return cosim::outcome_of(*cs, plan);
  });
  return result.to_snapshot().to_json(2);
}

obs::JsonValue campaign_req(std::uint64_t warm_cycles) {
  obs::JsonValue r = req({{"op", "campaign"},
                          {"model", "ring"},
                          {"faults", faults_text(kWarm)},
                          {"runs", kRuns},
                          {"run_cycles", kRun}});
  if (warm_cycles > 0) r["warm_cycles"] = warm_cycles;
  return r;
}

TEST(SnapServer, ColdCampaignMatchesInProcess) {
  Server server(test_config());
  load_ring(server);
  obs::JsonValue resp = server.handle_request(campaign_req(0));
  ASSERT_TRUE(ok(resp)) << error_of(resp);
  EXPECT_FALSE(resp.at("warm").as_bool());
  // Cold requests run warm_cycles + run_cycles per seed; with no
  // warm_cycles field the span is just run_cycles, so hand it the full
  // span explicitly to line up with the in-process document.
  obs::JsonValue full = req({{"op", "campaign"},
                             {"model", "ring"},
                             {"faults", faults_text(kWarm)},
                             {"runs", kRuns},
                             {"run_cycles", kWarm + kRun}});
  resp = server.handle_request(full);
  ASSERT_TRUE(ok(resp)) << error_of(resp);
  EXPECT_EQ(resp.at("campaign").dump(2), in_process_campaign_doc());
}

TEST(SnapServer, WarmCampaignMatchesColdAndHitsCache) {
  Server server(test_config());
  load_ring(server);
  obs::JsonValue warm1 = server.handle_request(campaign_req(kWarm));
  ASSERT_TRUE(ok(warm1)) << error_of(warm1);
  EXPECT_TRUE(warm1.at("warm").as_bool());
  EXPECT_FALSE(warm1.at("checkpoint_hit").as_bool());
  EXPECT_EQ(warm1.at("campaign").dump(2), in_process_campaign_doc());

  // Identical request again: served from the resident checkpoint, same
  // document.
  obs::JsonValue warm2 = server.handle_request(campaign_req(kWarm));
  ASSERT_TRUE(ok(warm2)) << error_of(warm2);
  EXPECT_TRUE(warm2.at("checkpoint_hit").as_bool());
  EXPECT_EQ(warm2.at("campaign").dump(2), warm1.at("campaign").dump(2));

  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.campaigns, 2u);
  EXPECT_EQ(s.checkpoints_built, 1u);
  EXPECT_EQ(s.checkpoint_hits, 1u);
  EXPECT_EQ(s.campaign_runs, static_cast<std::uint64_t>(2 * kRuns));
}

TEST(SnapServer, CampaignRejectsBadFaults) {
  Server server(test_config());
  load_ring(server);
  obs::JsonValue resp = server.handle_request(req({{"op", "campaign"},
                                                   {"model", "ring"},
                                                   {"faults", "faultRate.flitDrop = 3.5"},
                                                   {"runs", 2}}));
  EXPECT_FALSE(ok(resp));
  EXPECT_NE(error_of(resp).find("rejected"), std::string::npos);
}

// --- quotas and backpressure ---------------------------------------------------

TEST(SnapServer, QuotaRejectsPastBudget) {
  ServerConfig cfg = test_config();
  cfg.tenant_quota = 5;
  Server server(cfg);
  load_ring(server);
  // 4 runs fit the budget of 5; the next 4 would overdraw and are
  // rejected before any simulation happens.
  obs::JsonValue first = server.handle_request(campaign_req(kWarm), "alice");
  ASSERT_TRUE(ok(first)) << error_of(first);
  obs::JsonValue second = server.handle_request(campaign_req(kWarm), "alice");
  EXPECT_FALSE(ok(second));
  EXPECT_NE(error_of(second).find("quota"), std::string::npos);
  // Another tenant has its own budget.
  obs::JsonValue other = server.handle_request(campaign_req(kWarm), "bob");
  EXPECT_TRUE(ok(other)) << error_of(other);
  EXPECT_EQ(server.stats().rejected_quota, 1u);
}

TEST(SnapServer, BoundedQueueRejectsWhenBusy) {
  ServerConfig cfg = test_config();
  cfg.max_queue = 0;  // nobody waits: busy means rejected
  Server server(cfg);
  load_ring(server);

  std::atomic<bool> done{false};
  std::thread long_request([&] {
    // A fat cold campaign holds the executor for a while.
    obs::JsonValue r = req({{"op", "campaign"},
                            {"model", "ring"},
                            {"faults", faults_text()},
                            {"runs", 8},
                            {"run_cycles", 4000}});
    server.handle_request(r, "worker");
    done.store(true);
  });
  bool saw_busy = false;
  while (!done.load()) {
    obs::JsonValue r = server.handle_request(
        req({{"op", "run"}, {"model", "ring"}, {"cycles", 1}}), "prober");
    if (!ok(r) && error_of(r).find("busy") != std::string::npos) {
      saw_busy = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  long_request.join();
  EXPECT_TRUE(saw_busy);
  EXPECT_GE(server.stats().rejected_busy, 1u);
}

// --- stats section -------------------------------------------------------------

TEST(SnapServer, StatsSectionReportsConfigAndCounters) {
  Server server(test_config());
  load_ring(server);
  server.handle_request(req({{"op", "ping"}}));
  obs::JsonValue resp = server.handle_request(req({{"op", "stats"}}));
  ASSERT_TRUE(ok(resp));
  const obs::JsonValue& s = resp.at("server");
  EXPECT_EQ(s.at("threads").as_int(), 1);
  EXPECT_EQ(s.at("models_loaded").as_uint(), 1u);
  EXPECT_GE(s.at("requests").as_uint(), 2u);
}

// --- end to end over AF_UNIX ---------------------------------------------------

TEST(SnapServer, SocketRoundTripAndShutdown) {
  ServerConfig cfg = test_config();
  cfg.socket_path = ::testing::TempDir() + "snapd_test.sock";
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_TRUE(server.running());

  auto client = Client::connect(cfg.socket_path, &err);
  ASSERT_NE(client, nullptr) << err;
  std::optional<obs::JsonValue> resp =
      client->request(req({{"op", "ping"}}), &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(ok(*resp));

  resp = client->request(req({{"op", "load"},
                              {"name", "ring"},
                              {"model", ring_xtm()},
                              {"marks", ring_marks_text()}}),
                         &err);
  ASSERT_TRUE(resp.has_value()) << err;
  ASSERT_TRUE(ok(*resp)) << error_of(*resp);
  resp = client->request(
      req({{"op", "run"}, {"model", "ring"}, {"cycles", 64}}), &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(ok(*resp)) << error_of(*resp);

  resp = client->request(req({{"op", "shutdown"}}), &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(ok(*resp));
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.stats().sessions, 1u);
}

}  // namespace
}  // namespace xtsoc::snap
