// Tests for the xtsoc::noc mesh fabric — both the raw cycle-accurate
// network (routing, segmentation, credits, determinism) and its cosim
// integration (mark-driven placement changes latency, never behavior).
#include <gtest/gtest.h>

#include <algorithm>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/noc/topology.hpp"
#include "xtsoc/noc/traffic.hpp"
#include "xtsoc/perf/perf.hpp"
#include "xtsoc/perf/traceexport.hpp"
#include "xtsoc/verify/equivalence.hpp"

namespace xtsoc::noc {
namespace {

using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

FabricConfig small_mesh(int w = 2, int h = 2) {
  FabricConfig cfg;
  cfg.width = w;
  cfg.height = h;
  return cfg;
}

/// Tick until `tile` has a due delivery or `max_cycles` pass; returns the
/// deliveries (empty on timeout) and leaves *cycle at the stop point.
std::vector<Delivery> run_until_delivery(Fabric& fabric, int tile,
                                         std::uint64_t* cycle,
                                         std::uint64_t max_cycles = 200) {
  for (std::uint64_t end = *cycle + max_cycles; *cycle < end;) {
    fabric.tick(++*cycle);
    auto due = fabric.pop_due(tile, *cycle);
    if (!due.empty()) return due;
  }
  return {};
}

// --- configuration and misuse ---------------------------------------------------

TEST(Fabric, RejectsBadConfig) {
  FabricConfig cfg;
  cfg.width = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.link_latency = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.flit_payload_bytes = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.fifo_depth = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
}

TEST(Fabric, RejectsSelfSendAndBadTiles) {
  Fabric fabric(small_mesh());
  EXPECT_THROW(fabric.send_frame(1, 1, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.send_frame(-1, 0, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.send_frame(0, 4, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.pop_due(99, 0), FabricError);
}

// --- routing --------------------------------------------------------------------

TEST(Router, XYRoutesXFirst) {
  auto topo = make_topology(TopologyKind::kMesh, 4, 4);
  Router r(1, 1, 4, topo.get(), topo->index(1, 1), RoutePolicy::kXY);
  Flit f;
  f.dst_x = 3;
  f.dst_y = 0;
  EXPECT_EQ(r.route(f), kEast);  // X corrected before Y
  f.dst_x = 0;
  EXPECT_EQ(r.route(f), kWest);
  f.dst_x = 1;
  f.dst_y = 3;
  EXPECT_EQ(r.route(f), kSouth);
  f.dst_y = 0;
  EXPECT_EQ(r.route(f), kNorth);
  f.dst_y = 1;
  EXPECT_EQ(r.route(f), kLocal);
}

TEST(Fabric, CornerToCornerTakesManhattanHops) {
  // 4x4 mesh, (0,0) -> (3,3): 6 hops of 1 cycle each, plus injection and
  // ejection handling. The exact number matters less than its stability;
  // assert the latency is at least the Manhattan distance.
  FabricConfig cfg = small_mesh(4, 4);
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 15, /*opcode=*/7, {1, 2, 3}, cycle);
  auto due = run_until_delivery(fabric, 15, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].opcode, 7u);
  EXPECT_EQ(due[0].src_tile, 0);
  EXPECT_GE(due[0].arrive_cycle - due[0].send_cycle, 6u);

  // XY routing: the flit crossed the top row east, then column 3 south.
  EXPECT_GT(fabric.router(1).stats().flits_routed, 0u);
  EXPECT_GT(fabric.router(3).stats().flits_routed, 0u);
  EXPECT_EQ(fabric.router(4).stats().flits_routed, 0u);  // (0,1): never visited
  EXPECT_EQ(fabric.router(15).stats().flits_ejected, 1u);
}

TEST(Fabric, PayloadSegmentedAndReassembled) {
  FabricConfig cfg = small_mesh();
  cfg.flit_payload_bytes = 4;
  Fabric fabric(cfg);
  std::vector<std::uint8_t> payload(10);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 17);
  }
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 3, 42, payload, cycle);
  auto due = run_until_delivery(fabric, 3, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, payload);  // bytes survive segmentation
  // 10 bytes at 4 per flit = 3 flits (head, body, tail).
  EXPECT_EQ(fabric.stats().flits_injected, 3u);
  EXPECT_TRUE(fabric.idle());
}

TEST(Fabric, EmptyPayloadStillOneFlit) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 1, 9, {}, cycle);
  auto due = run_until_delivery(fabric, 1, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(due[0].payload.empty());
  EXPECT_EQ(fabric.stats().flits_injected, 1u);
}

TEST(Fabric, InOrderDeliveryPerSourceDestinationPair) {
  // Deterministic XY routing + FIFO links: frames of one (src, dst) pair
  // arrive in the order they were sent, even back-to-back.
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    fabric.send_frame(0, 3, /*opcode=*/100 + i, {static_cast<std::uint8_t>(i)},
                      cycle);
  }
  std::vector<std::uint32_t> seen;
  while (seen.size() < 8 && cycle < 500) {
    fabric.tick(++cycle);
    for (auto& d : fabric.pop_due(3, cycle)) seen.push_back(d.opcode);
  }
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 107u);
}

TEST(Fabric, ExtraDelayDefersDueCycle) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 1, 5, {1}, cycle, /*extra_delay=*/50);
  // The frame arrives long before cycle 50 but must not be due until then.
  for (; cycle < 49;) {
    fabric.tick(++cycle);
    EXPECT_TRUE(fabric.pop_due(1, cycle).empty());
  }
  fabric.tick(++cycle);
  fabric.tick(++cycle);  // cycle 51 > send + 50
  auto due = fabric.pop_due(1, cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_GE(due[0].due_cycle, 50u);
}

// --- credits and determinism ----------------------------------------------------

TEST(Fabric, CreditBackpressureStallsDeterministically) {
  // fifo_depth=1 and two sources hammering one destination: the shared
  // column link congests and credits stall injection. The run must still be
  // reproducible flit for flit — run the identical traffic twice and demand
  // identical delivery cycles and identical stats.
  auto run_once = [] {
    FabricConfig cfg = small_mesh();
    cfg.fifo_depth = 1;
    Fabric fabric(cfg);
    std::uint64_t cycle = 0;
    for (std::uint32_t i = 0; i < 6; ++i) {
      fabric.send_frame(0, 3, 10 + i, {1, 2, 3, 4, 5, 6, 7, 8}, cycle);
      fabric.send_frame(1, 3, 20 + i, {1, 2, 3, 4, 5, 6, 7, 8}, cycle);
    }
    std::vector<std::pair<std::uint32_t, std::uint64_t>> deliveries;
    while (deliveries.size() < 12 && cycle < 2000) {
      fabric.tick(++cycle);
      for (auto& d : fabric.pop_due(3, cycle)) {
        deliveries.emplace_back(d.opcode, d.arrive_cycle);
      }
    }
    return std::tuple(deliveries, fabric.stats().to_table(), cycle);
  };

  auto [del1, table1, end1] = run_once();
  auto [del2, table2, end2] = run_once();
  ASSERT_EQ(del1.size(), 12u);
  EXPECT_EQ(del1, del2);      // cycle-exact reproducibility
  EXPECT_EQ(table1, table2);  // including every counter
  EXPECT_EQ(end1, end2);

  // Backpressure happened: with depth-1 FIFOs the congested run takes
  // longer than the same traffic on an uncongested (deep-buffer) fabric.
  FabricConfig deep = small_mesh();
  deep.fifo_depth = 64;
  Fabric fast(deep);
  std::uint64_t fast_cycle = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    fast.send_frame(0, 3, 10 + i, {1, 2, 3, 4, 5, 6, 7, 8}, fast_cycle);
    fast.send_frame(1, 3, 20 + i, {1, 2, 3, 4, 5, 6, 7, 8}, fast_cycle);
  }
  std::size_t got = 0;
  while (got < 12 && fast_cycle < 2000) {
    fast.tick(++fast_cycle);
    got += fast.pop_due(3, fast_cycle).size();
  }
  ASSERT_EQ(got, 12u);
  EXPECT_GT(end1, fast_cycle);
}

TEST(Fabric, BufferHighWaterBoundedByDepth) {
  FabricConfig cfg = small_mesh();
  cfg.fifo_depth = 2;
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    fabric.send_frame(0, 3, i, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, cycle);
  }
  std::size_t got = 0;
  while (got < 10 && cycle < 2000) {
    fabric.tick(++cycle);
    got += fabric.pop_due(3, cycle).size();
  }
  ASSERT_EQ(got, 10u);
  for (int t = 0; t < fabric.tiles(); ++t) {
    // Per-port FIFOs never exceed depth; a router buffers at most
    // depth x ports flits, and with one traffic stream far fewer.
    EXPECT_LE(fabric.router(t).stats().buffer_high_water,
              static_cast<std::size_t>(cfg.fifo_depth * kPortCount));
  }
  EXPECT_GT(fabric.router(3).stats().buffer_high_water, 0u);
}

// --- statistics -----------------------------------------------------------------

TEST(LatencyHistogram, PowerOfTwoBuckets) {
  LatencyHistogram h;
  h.add(1);
  h.add(3);
  h.add(4);
  h.add(1000);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 4.0 + 1000.0) / 4.0);
  EXPECT_EQ(h.buckets[0], 1u);  // 1
  EXPECT_EQ(h.buckets[1], 1u);  // 3 in [2,4)
  EXPECT_EQ(h.buckets[2], 1u);  // 4 in [4,8)
  EXPECT_EQ(h.buckets[9], 1u);  // 1000 in [512,1024)
}

TEST(Fabric, StatsExportAsJson) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 3, 1, {1, 2, 3, 4, 5}, cycle);
  (void)run_until_delivery(fabric, 3, &cycle);
  std::string json = perf::export_noc_stats_json(fabric.stats());
  EXPECT_NE(json.find("\"mesh\":{\"width\":2,\"height\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"frames_delivered\":1"), std::string::npos);
  EXPECT_NE(json.find("\"routers\":["), std::string::npos);
  EXPECT_NE(json.find("\"links\":["), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
}

// --- cosim integration: mark-driven placement -----------------------------------

marks::MarkSet mesh_marks(int consumer_x, int consumer_y) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kTileX,
                   ScalarValue(std::int64_t{consumer_x}));
  m.set_class_mark("Consumer", marks::kTileY,
                   ScalarValue(std::int64_t{consumer_y}));
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

struct MeshCosim {
  MappedFixture fx;
  cosim::CoSimulation cosim;
  InstanceHandle consumer;
  InstanceHandle producer;

  explicit MeshCosim(marks::MarkSet m, cosim::CoSimConfig cfg = {})
      : fx(make_pipeline_domain(), std::move(m)), cosim(*fx.system, cfg) {
    consumer = cosim.create("Consumer");
    producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  }

  std::int64_t attr(const InstanceHandle& h, const char* cls,
                    const char* name) {
    const auto* a = fx.domain->find_class(cls)->find_attribute(name);
    return std::get<std::int64_t>(
        cosim.executor_of(h.cls).database().get_attr(h, a->id));
  }
};

TEST(MeshCosim, TileMarksSelectFabricInterconnect) {
  MeshCosim mesh(mesh_marks(1, 1));
  EXPECT_TRUE(mesh.cosim.has_fabric());
  EXPECT_EQ(mesh.cosim.fabric().width(), 2);

  // Without tile marks the legacy bus is chosen — the 1x2 degenerate case.
  marks::MarkSet legacy;
  legacy.mark_hardware("Consumer");
  MappedFixture fx(make_pipeline_domain(), std::move(legacy));
  cosim::CoSimulation bus_cosim(*fx.system);
  EXPECT_FALSE(bus_cosim.has_fabric());
}

TEST(MeshCosim, RoundTripOverTheMesh) {
  MeshCosim mesh(mesh_marks(1, 1));
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  EXPECT_TRUE(mesh.cosim.quiescent());

  // Same functional outcome as every other mapping of this model.
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "sent"), 1);
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "acks"), 1);
  EXPECT_EQ(mesh.attr(mesh.consumer, "Consumer", "total"), 1);

  // And the traffic demonstrably crossed the mesh: work + done = 2 frames,
  // with nonzero flit counts at the tiles on the XY route.
  const FabricStats stats = mesh.cosim.fabric().stats();
  EXPECT_EQ(stats.frames_delivered, 2u);
  EXPECT_GT(stats.flits_injected, 0u);
  EXPECT_GT(stats.latency.count, 0u);
  EXPECT_GT(stats.routers[0].flits_routed, 0u);   // sw tile (0,0)
  EXPECT_GT(stats.routers[3].flits_ejected, 0u);  // consumer tile (1,1)
}

TEST(MeshCosim, ForgedDigestDetectedAtConnect) {
  MappedFixture fx(make_pipeline_domain(), mesh_marks(1, 1));
  cosim::CoSimConfig cfg;
  cfg.forged_sw_digest = "deadbeef";
  EXPECT_THROW(cosim::CoSimulation(*fx.system, cfg),
               cosim::InterfaceMismatch);
}

TEST(MeshCosim, PerfReportCarriesNocStats) {
  MeshCosim mesh(mesh_marks(1, 1));
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  perf::PerfReport report = perf::measure(mesh.cosim);
  EXPECT_TRUE(report.has_noc);
  EXPECT_EQ(report.bus_frames, 2u);  // interconnect frames = NoC frames
  EXPECT_GT(report.noc.flits_injected, 0u);
  EXPECT_NE(report.to_table().find("router"), std::string::npos);
}

TEST(MeshCosim, PlacementChangesLatencyNotBehavior) {
  // The acceptance bar of the NoC subsystem: moving a class's tileX/tileY
  // changes the measured frame latency but produces an equivalent execution
  // — verified against the abstract (unpartitioned) Executor both times.
  auto run_placement = [](int x, int y) {
    MeshCosim mesh(mesh_marks(x, y));
    for (int i = 0; i < 4; ++i) {
      mesh.cosim.inject(mesh.producer, "kick", {},
                        static_cast<std::uint64_t>(i) * 100);
    }
    mesh.cosim.run();
    std::vector<const runtime::Trace*> traces;
    for (const auto& hw : mesh.cosim.hw_domains()) {
      traces.push_back(&hw->executor().trace());
    }
    traces.push_back(&mesh.cosim.sw_executor().trace());

    // Reference execution of the same stimulus on the abstract model.
    runtime::Executor abs(*mesh.fx.compiled);
    auto c = abs.create("Consumer");
    auto p = abs.create_with("Producer", {{"sink", Value(c)}});
    for (int i = 0; i < 4; ++i) {
      abs.inject(p, "kick", {}, static_cast<std::uint64_t>(i) * 100);
    }
    abs.run_all(100000);

    verify::EquivalenceReport eq =
        verify::compare_executions(abs.trace(), traces);
    return std::tuple(eq.equivalent,
                      mesh.cosim.fabric().stats().latency.mean(),
                      mesh.attr(mesh.consumer, "Consumer", "total"));
  };

  // (1,1) is two hops from the software tile (0,0); (1,0) is one.
  auto [eq_far, latency_far, total_far] = run_placement(1, 1);
  auto [eq_near, latency_near, total_near] = run_placement(1, 0);

  EXPECT_TRUE(eq_far);
  EXPECT_TRUE(eq_near);
  EXPECT_EQ(total_far, total_near);       // identical behavior...
  EXPECT_GT(latency_far, latency_near);   // ...different cost
}

TEST(MeshCosim, HardwareToHardwareCrossTileSignals) {
  // Producer and Consumer both in hardware but on different tiles: their
  // signals must ride the NoC as wire messages (tiles share no memory), so
  // the synthesized interface covers hw->hw cross-tile generates too.
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.mark_hardware("Producer");
  m.set_class_mark("Consumer", marks::kTileX, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Consumer", marks::kTileY, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Producer", marks::kTileX, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Producer", marks::kTileY, ScalarValue(std::int64_t{0}));
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));

  MeshCosim mesh(std::move(m));
  EXPECT_EQ(mesh.cosim.hw_domains().size(), 2u);
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  EXPECT_EQ(mesh.attr(mesh.consumer, "Consumer", "total"), 1);
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "acks"), 1);
  EXPECT_GE(mesh.cosim.fabric().stats().frames_delivered, 2u);
  EXPECT_EQ(mesh.cosim.sw_executor().dispatch_count(), 0u);
}

// --- Topology interface ---------------------------------------------------------

TEST(Topology, MeshShapeAndLinks) {
  auto topo = make_topology(TopologyKind::kMesh, 3, 2);
  EXPECT_EQ(topo->kind(), TopologyKind::kMesh);
  EXPECT_EQ(topo->tiles(), 6);
  // 2*((w-1)*h + w*(h-1)) directed links.
  EXPECT_EQ(topo->link_count(), 2 * ((3 - 1) * 2 + 3 * (2 - 1)));
  // Edges clip: no neighbour off the grid.
  EXPECT_EQ(topo->neighbors(0, kWest), -1);
  EXPECT_EQ(topo->neighbors(0, kNorth), -1);
  EXPECT_EQ(topo->neighbors(0, kEast), 1);
  EXPECT_EQ(topo->neighbors(0, kSouth), 3);
  EXPECT_EQ(topo->min_hops(0, 5), 3);  // (0,0) -> (2,1)
}

TEST(Topology, TorusWrapsBothDimensions) {
  auto topo = make_topology(TopologyKind::kTorus, 4, 4);
  EXPECT_EQ(topo->link_count(), 2 * 16 + 2 * 16);  // every tile: E/W + N/S
  EXPECT_EQ(topo->neighbors(0, kWest), 3);   // (0,0) wraps to (3,0)
  EXPECT_EQ(topo->neighbors(0, kNorth), 12); // (0,0) wraps to (0,3)
  // Wraparound halves the corner-to-corner distance: (0,0)->(3,3) is one
  // wrapped hop per dimension.
  EXPECT_EQ(topo->min_hops(0, 15), 2);
  // Routing goes the short way around: west, not three hops east.
  EXPECT_EQ(topo->route(RoutePolicy::kXY, 0, topo->index(3, 0),
                        RouteMode::kPrimary),
            kWest);
  // Ties (distance n/2 both ways) wrap forward deterministically.
  EXPECT_EQ(topo->route(RoutePolicy::kXY, 0, topo->index(2, 0),
                        RouteMode::kPrimary),
            kEast);
}

TEST(Topology, RingIsOneWrappedRow) {
  auto topo = make_topology(TopologyKind::kRing, 6, 1);
  EXPECT_EQ(topo->link_count(), 2 * 6);
  EXPECT_EQ(topo->neighbors(0, kWest), 5);
  EXPECT_EQ(topo->neighbors(5, kEast), 0);
  EXPECT_EQ(topo->neighbors(2, kNorth), -1);  // no second dimension
  EXPECT_EQ(topo->neighbors(2, kSouth), -1);
  EXPECT_EQ(topo->min_hops(0, 4), 2);  // wrap west beats 4 hops east
}

TEST(Topology, ImpossibleShapesRejected) {
  EXPECT_THROW(make_topology(TopologyKind::kTorus, 4, 1),
               std::invalid_argument);
  EXPECT_THROW(make_topology(TopologyKind::kTorus, 1, 4),
               std::invalid_argument);
  EXPECT_THROW(make_topology(TopologyKind::kRing, 4, 2),
               std::invalid_argument);
  FabricConfig cfg = small_mesh(4, 1);
  cfg.topology = TopologyKind::kTorus;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = small_mesh(4, 2);
  cfg.topology = TopologyKind::kRing;
  EXPECT_THROW(Fabric{cfg}, FabricError);
}

TEST(Topology, StringRoundTrip) {
  for (TopologyKind k : {TopologyKind::kMesh, TopologyKind::kTorus,
                         TopologyKind::kRing}) {
    EXPECT_EQ(topology_from_string(to_string(k)), k);
  }
  for (RoutePolicy p : {RoutePolicy::kXY, RoutePolicy::kYX,
                        RoutePolicy::kAdaptive}) {
    EXPECT_EQ(routing_from_string(to_string(p)), p);
  }
  EXPECT_FALSE(topology_from_string("hypercube").has_value());
  EXPECT_FALSE(routing_from_string("west-first").has_value());
}

TEST(Fabric, TorusDeliversOverWraparound) {
  FabricConfig cfg = small_mesh(4, 4);
  cfg.topology = TopologyKind::kTorus;
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 15, /*opcode=*/9, {1, 2, 3}, cycle);
  auto due = run_until_delivery(fabric, 15, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].opcode, 9u);
  // Two wrapped hops instead of six across the grid: strictly faster than
  // the mesh's Manhattan path, which is what the bench sweep gates on.
  EXPECT_LT(due[0].arrive_cycle - due[0].send_cycle, 6u);
}

TEST(Fabric, RingDeliversBothWays) {
  FabricConfig cfg;
  cfg.width = 6;
  cfg.height = 1;
  cfg.topology = TopologyKind::kRing;
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 5, 1, {0xaa}, cycle);  // one hop west (wrap)
  fabric.send_frame(0, 2, 2, {0xbb}, cycle);  // two hops east
  auto due5 = run_until_delivery(fabric, 5, &cycle);
  ASSERT_EQ(due5.size(), 1u);
  auto due2 = fabric.pop_due(2, cycle);
  if (due2.empty()) due2 = run_until_delivery(fabric, 2, &cycle);
  ASSERT_EQ(due2.size(), 1u);
  EXPECT_EQ(due2[0].payload[0], 0xbb);
}

TEST(Fabric, YXMirrorsXY) {
  // Same traffic, mirrored policies: YX visits the column first. The
  // (1,0)/(0,1) visit pattern is the transpose of the XY test above.
  FabricConfig cfg = small_mesh(4, 4);
  cfg.routing = RoutePolicy::kYX;
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 15, 7, {1, 2, 3}, cycle);
  auto due = run_until_delivery(fabric, 15, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_GT(fabric.router(4).stats().flits_routed, 0u);   // (0,1): visited
  EXPECT_EQ(fabric.router(1).stats().flits_routed, 0u);   // (1,0): never
}

TEST(Fabric, AdaptiveDeliversAndIsDeterministic) {
  auto run = [](RoutePolicy policy) {
    FabricConfig cfg = small_mesh(4, 4);
    cfg.routing = policy;
    Fabric fabric(cfg);
    std::uint64_t cycle = 0;
    // Multi-flit frames from every tile to the transpose tile — enough
    // contention that adaptive decisions actually fire.
    for (int c = 0; c < 8; ++c) {
      for (int t = 0; t < 16; ++t) {
        const int dst = (t % 4) * 4 + t / 4;
        if (dst == t) continue;
        fabric.send_frame(t, dst, static_cast<std::uint32_t>(t * 8 + c),
                          {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, cycle);
      }
      fabric.tick(++cycle);
    }
    std::uint64_t delivered = 0;
    std::string digest;
    for (int guard = 0; guard < 4000 && !fabric.idle(); ++guard) {
      fabric.tick(++cycle);
      for (int t = 0; t < 16; ++t) {
        for (const Delivery& d : fabric.pop_due(t, cycle)) {
          ++delivered;
          digest += std::to_string(t) + ":" + std::to_string(d.opcode) + ":" +
                    std::to_string(d.arrive_cycle) + ";";
        }
      }
    }
    EXPECT_EQ(delivered, 8u * 12u);  // 4 transpose fixed points skip
    return digest;
  };
  // Every flit of every frame arrived in order (reassembly would have
  // thrown otherwise), and two identical runs agree bit for bit.
  EXPECT_EQ(run(RoutePolicy::kAdaptive), run(RoutePolicy::kAdaptive));
}

// --- traffic engines ------------------------------------------------------------

TrafficSpec sweep_spec(TrafficPattern pattern, std::uint64_t seed = 42) {
  TrafficSpec spec;
  spec.pattern = pattern;
  spec.seed = seed;
  spec.offered_load = 0.2;
  spec.payload_bytes = 6;
  spec.record = true;
  return spec;
}

/// Drive `fabric` with `gen` for `cycles` injection cycles plus drain, and
/// fingerprint every delivery.
std::string drive(Fabric& fabric, TrafficGen& gen, int cycles) {
  const int tiles = fabric.topology().tiles();
  std::uint64_t cycle = 0;
  std::string digest;
  auto drain = [&] {
    for (int t = 0; t < tiles; ++t) {
      for (const Delivery& d : fabric.pop_due(t, cycle)) {
        digest += std::to_string(t) + ":" + std::to_string(d.opcode) + ":" +
                  std::to_string(d.arrive_cycle) + ":" +
                  std::to_string(d.payload.size()) + ";";
      }
    }
  };
  for (int c = 0; c < cycles; ++c) {
    gen.tick(fabric, cycle);
    fabric.tick(++cycle);
    drain();
  }
  for (int guard = 0; guard < 4000 && !fabric.idle(); ++guard) {
    fabric.tick(++cycle);
    drain();
  }
  return digest;
}

TEST(Traffic, GeneratorIsSeedDeterministic) {
  for (TrafficPattern pattern :
       {TrafficPattern::kUniform, TrafficPattern::kHotspot,
        TrafficPattern::kTranspose, TrafficPattern::kBursty}) {
    Fabric f1(small_mesh(4, 4)), f2(small_mesh(4, 4));
    TrafficGen g1(sweep_spec(pattern), f1.topology());
    TrafficGen g2(sweep_spec(pattern), f2.topology());
    EXPECT_EQ(drive(f1, g1, 64), drive(f2, g2, 64))
        << "pattern " << to_string(pattern);
    EXPECT_EQ(g1.frames_sent(), g2.frames_sent());
    EXPECT_GT(g1.frames_sent(), 0u);
  }
  // A different seed is a different workload.
  Fabric f1(small_mesh(4, 4)), f2(small_mesh(4, 4));
  TrafficGen g1(sweep_spec(TrafficPattern::kUniform, 42), f1.topology());
  TrafficGen g2(sweep_spec(TrafficPattern::kUniform, 43), f2.topology());
  EXPECT_NE(drive(f1, g1, 64), drive(f2, g2, 64));
}

TEST(Traffic, HotspotConcentratesOnHotTile) {
  Fabric fabric(small_mesh(4, 4));
  TrafficSpec spec = sweep_spec(TrafficPattern::kHotspot);
  spec.hotspot_tile = 5;
  spec.hotspot_fraction = 0.8;
  TrafficGen gen(spec, fabric.topology());
  (void)drive(fabric, gen, 128);
  std::uint64_t to_hot = 0;
  for (const TrafficEvent& e : gen.trace()) to_hot += e.dst == 5 ? 1 : 0;
  ASSERT_GT(gen.trace().size(), 0u);
  // ~80% + the uniform share; anything over half proves concentration.
  EXPECT_GT(to_hot * 2, gen.trace().size());
}

TEST(Traffic, ReplayReproducesTheGenerator) {
  // Record a generator run, then drive a fresh fabric from the recording:
  // deliveries must match bit for bit — the property that makes traces a
  // portable workload format across topologies.
  Fabric f1(small_mesh(4, 4));
  TrafficGen gen(sweep_spec(TrafficPattern::kUniform), f1.topology());
  const std::string generated = drive(f1, gen, 64);
  ASSERT_GT(gen.trace().size(), 0u);

  TraceReplay replay(gen.trace());
  Fabric f2(small_mesh(4, 4));
  std::uint64_t cycle = 0;
  std::string replayed;
  auto drain = [&] {
    for (int t = 0; t < 16; ++t) {
      for (const Delivery& d : f2.pop_due(t, cycle)) {
        replayed += std::to_string(t) + ":" + std::to_string(d.opcode) + ":" +
                    std::to_string(d.arrive_cycle) + ":" +
                    std::to_string(d.payload.size()) + ";";
      }
    }
  };
  for (int c = 0; c < 64; ++c) {
    replay.tick(f2, cycle);
    f2.tick(++cycle);
    drain();
  }
  for (int guard = 0; guard < 4000 && !f2.idle(); ++guard) {
    f2.tick(++cycle);
    drain();
  }
  EXPECT_TRUE(replay.done());
  EXPECT_EQ(replayed, generated);
}

TEST(Traffic, TraceTextRoundTrips) {
  Fabric fabric(small_mesh(2, 2));
  TrafficGen gen(sweep_spec(TrafficPattern::kUniform), fabric.topology());
  (void)drive(fabric, gen, 32);
  TraceReplay replay(gen.trace());
  const std::string text = replay.to_text();

  std::string error;
  auto parsed = TraceReplay::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_text(), text);
  ASSERT_EQ(parsed->events().size(), replay.events().size());
  for (std::size_t i = 0; i < replay.events().size(); ++i) {
    EXPECT_EQ(parsed->events()[i].cycle, replay.events()[i].cycle);
    EXPECT_EQ(parsed->events()[i].opcode, replay.events()[i].opcode);
  }
}

TEST(Traffic, TraceParseDiagnosesBadLines) {
  std::string error;
  EXPECT_FALSE(TraceReplay::parse("0 1 2 3", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(TraceReplay::parse("0 1 2 3 4 5", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
  EXPECT_FALSE(TraceReplay::parse("0 -1 2 3 4", &error).has_value());

  auto ok = TraceReplay::parse("# comment\n\n3 0 1 7 4\n1 1 0 9 2\n");
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->events().size(), 2u);
  EXPECT_EQ(ok->events()[0].cycle, 1u);  // sorted by cycle
}

// --- pre-redesign golden fingerprints -------------------------------------------
//
// Captured from the last commit before the Topology interface existed, by
// running exactly this workload on the old hard-wired mesh. The redesign's
// contract is that the default mesh+XY fabric is byte-identical — stats,
// delivery order, payload bytes, and the printed table all hash to the
// same values.

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenResult {
  FabricStats stats;
  std::uint64_t popped = 0;
  std::uint64_t pop_hash = 0;
  std::uint64_t table_hash = 0;
  FabricFaultStats faults;
};

GoldenResult run_golden(fault::Plan* plan) {
  FabricConfig cfg = small_mesh(4, 4);
  cfg.fault = plan;
  Fabric fab(cfg);
  std::uint64_t cycle = 0;
  for (int c = 0; c < 16; ++c) {
    for (int t = 0; t < 16; ++t) {
      const int x = t % 4, y = t / 4;
      const int dst = x * 4 + y;  // transpose
      if (dst == t) continue;
      std::vector<std::uint8_t> payload;
      const int n = (t * 7 + c) % 13 + 1;
      for (int i = 0; i < n; ++i) {
        payload.push_back(static_cast<std::uint8_t>(t * 31 + c * 7 + i));
      }
      fab.send_frame(t, dst, static_cast<std::uint32_t>(t * 16 + c), payload,
                     cycle, static_cast<std::uint64_t>(c % 3));
    }
    fab.tick(++cycle);
  }
  GoldenResult g;
  g.pop_hash = 1469598103934665603ull;
  for (int guard = 0; guard < 2000 && !fab.idle(); ++guard) {
    fab.tick(++cycle);
    for (int t = 0; t < 16; ++t) {
      for (const Delivery& d : fab.pop_due(t, cycle)) {
        ++g.popped;
        std::string key = std::to_string(t) + ":" +
                          std::to_string(d.src_tile) + ":" +
                          std::to_string(d.opcode) + ":" +
                          std::to_string(d.arrive_cycle) + ":" +
                          std::to_string(d.due_cycle) + ":" +
                          std::to_string(d.payload.size());
        for (auto b : d.payload) key += "," + std::to_string(b);
        g.pop_hash ^= fnv1a(key);
      }
    }
  }
  g.stats = fab.stats();
  g.table_hash = fnv1a(fab.stats().to_table());
  g.faults = fab.fault_stats();
  return g;
}

TEST(Golden, DefaultMeshXYByteIdentical) {
  GoldenResult g = run_golden(nullptr);
  EXPECT_EQ(g.stats.cycles, 108u);
  EXPECT_EQ(g.stats.frames_sent, 192u);
  EXPECT_EQ(g.stats.frames_delivered, 192u);
  EXPECT_EQ(g.stats.flits_injected, 413u);
  EXPECT_EQ(g.stats.payload_bytes, 1338u);
  EXPECT_EQ(g.stats.latency.count, 192u);
  EXPECT_EQ(g.stats.latency.total, 7110u);
  EXPECT_EQ(g.stats.latency.min, 3u);
  EXPECT_EQ(g.stats.latency.max, 93u);
  EXPECT_EQ(g.popped, 192u);
  EXPECT_EQ(g.pop_hash, 0x6e86578a803c3a6eull);
  EXPECT_EQ(g.table_hash, 0x90a386916dea8f47ull);
}

TEST(Golden, FaultyMeshXYByteIdentical) {
  // Same workload under the resilient NIC (CRC + ack/retransmit with the
  // primary/fallback detour): the typed RouteMode plumbing must reproduce
  // the old uint8_t route_mode byte for byte.
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.flit_drop = 0.02;
  spec.flit_corrupt = 0.01;
  spec.link_down = 0.005;
  fault::Plan plan(spec);
  GoldenResult g = run_golden(&plan);
  EXPECT_EQ(g.stats.cycles, 2016u);
  EXPECT_EQ(g.stats.frames_delivered, 188u);
  EXPECT_EQ(g.stats.flits_injected, 591u);
  EXPECT_EQ(g.stats.latency.total, 15969u);
  EXPECT_EQ(g.stats.latency.max, 1524u);
  EXPECT_EQ(g.popped, 188u);
  EXPECT_EQ(g.pop_hash, 0x2975b046bbe8b8bdull);
  EXPECT_EQ(g.table_hash, 0x2cc48c1147185c25ull);
  EXPECT_EQ(g.faults.flits_dropped, 33u);
  EXPECT_EQ(g.faults.flits_corrupted, 18u);
  EXPECT_EQ(g.faults.link_down_events, 427u);
  EXPECT_EQ(g.faults.link_down_drops, 63u);
  EXPECT_EQ(g.faults.crc_rejects, 14u);
  EXPECT_EQ(g.faults.orphan_flits, 40u);
  EXPECT_EQ(g.faults.retransmissions, 69u);
  EXPECT_EQ(g.faults.acks_delivered, 188u);
  EXPECT_EQ(g.faults.frames_lost, 0u);
  EXPECT_EQ(g.faults.tainted_delivered, 0u);
}

}  // namespace
}  // namespace xtsoc::noc
