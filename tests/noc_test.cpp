// Tests for the xtsoc::noc mesh fabric — both the raw cycle-accurate
// network (routing, segmentation, credits, determinism) and its cosim
// integration (mark-driven placement changes latency, never behavior).
#include <gtest/gtest.h>

#include <algorithm>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/perf/perf.hpp"
#include "xtsoc/perf/traceexport.hpp"
#include "xtsoc/verify/equivalence.hpp"

namespace xtsoc::noc {
namespace {

using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

FabricConfig small_mesh(int w = 2, int h = 2) {
  FabricConfig cfg;
  cfg.width = w;
  cfg.height = h;
  return cfg;
}

/// Tick until `tile` has a due delivery or `max_cycles` pass; returns the
/// deliveries (empty on timeout) and leaves *cycle at the stop point.
std::vector<Delivery> run_until_delivery(Fabric& fabric, int tile,
                                         std::uint64_t* cycle,
                                         std::uint64_t max_cycles = 200) {
  for (std::uint64_t end = *cycle + max_cycles; *cycle < end;) {
    fabric.tick(++*cycle);
    auto due = fabric.pop_due(tile, *cycle);
    if (!due.empty()) return due;
  }
  return {};
}

// --- configuration and misuse ---------------------------------------------------

TEST(Fabric, RejectsBadConfig) {
  FabricConfig cfg;
  cfg.width = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.link_latency = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.flit_payload_bytes = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
  cfg = FabricConfig{};
  cfg.fifo_depth = 0;
  EXPECT_THROW(Fabric{cfg}, FabricError);
}

TEST(Fabric, RejectsSelfSendAndBadTiles) {
  Fabric fabric(small_mesh());
  EXPECT_THROW(fabric.send_frame(1, 1, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.send_frame(-1, 0, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.send_frame(0, 4, 0, {0xaa}, 0), FabricError);
  EXPECT_THROW(fabric.pop_due(99, 0), FabricError);
}

// --- routing --------------------------------------------------------------------

TEST(Router, XYRoutesXFirst) {
  Router r(1, 1, 4);
  Flit f;
  f.dst_x = 3;
  f.dst_y = 0;
  EXPECT_EQ(r.route(f), kEast);  // X corrected before Y
  f.dst_x = 0;
  EXPECT_EQ(r.route(f), kWest);
  f.dst_x = 1;
  f.dst_y = 3;
  EXPECT_EQ(r.route(f), kSouth);
  f.dst_y = 0;
  EXPECT_EQ(r.route(f), kNorth);
  f.dst_y = 1;
  EXPECT_EQ(r.route(f), kLocal);
}

TEST(Fabric, CornerToCornerTakesManhattanHops) {
  // 4x4 mesh, (0,0) -> (3,3): 6 hops of 1 cycle each, plus injection and
  // ejection handling. The exact number matters less than its stability;
  // assert the latency is at least the Manhattan distance.
  FabricConfig cfg = small_mesh(4, 4);
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 15, /*opcode=*/7, {1, 2, 3}, cycle);
  auto due = run_until_delivery(fabric, 15, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].opcode, 7u);
  EXPECT_EQ(due[0].src_tile, 0);
  EXPECT_GE(due[0].arrive_cycle - due[0].send_cycle, 6u);

  // XY routing: the flit crossed the top row east, then column 3 south.
  EXPECT_GT(fabric.router(1).stats().flits_routed, 0u);
  EXPECT_GT(fabric.router(3).stats().flits_routed, 0u);
  EXPECT_EQ(fabric.router(4).stats().flits_routed, 0u);  // (0,1): never visited
  EXPECT_EQ(fabric.router(15).stats().flits_ejected, 1u);
}

TEST(Fabric, PayloadSegmentedAndReassembled) {
  FabricConfig cfg = small_mesh();
  cfg.flit_payload_bytes = 4;
  Fabric fabric(cfg);
  std::vector<std::uint8_t> payload(10);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 17);
  }
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 3, 42, payload, cycle);
  auto due = run_until_delivery(fabric, 3, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, payload);  // bytes survive segmentation
  // 10 bytes at 4 per flit = 3 flits (head, body, tail).
  EXPECT_EQ(fabric.stats().flits_injected, 3u);
  EXPECT_TRUE(fabric.idle());
}

TEST(Fabric, EmptyPayloadStillOneFlit) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 1, 9, {}, cycle);
  auto due = run_until_delivery(fabric, 1, &cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(due[0].payload.empty());
  EXPECT_EQ(fabric.stats().flits_injected, 1u);
}

TEST(Fabric, InOrderDeliveryPerSourceDestinationPair) {
  // Deterministic XY routing + FIFO links: frames of one (src, dst) pair
  // arrive in the order they were sent, even back-to-back.
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    fabric.send_frame(0, 3, /*opcode=*/100 + i, {static_cast<std::uint8_t>(i)},
                      cycle);
  }
  std::vector<std::uint32_t> seen;
  while (seen.size() < 8 && cycle < 500) {
    fabric.tick(++cycle);
    for (auto& d : fabric.pop_due(3, cycle)) seen.push_back(d.opcode);
  }
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 107u);
}

TEST(Fabric, ExtraDelayDefersDueCycle) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 1, 5, {1}, cycle, /*extra_delay=*/50);
  // The frame arrives long before cycle 50 but must not be due until then.
  for (; cycle < 49;) {
    fabric.tick(++cycle);
    EXPECT_TRUE(fabric.pop_due(1, cycle).empty());
  }
  fabric.tick(++cycle);
  fabric.tick(++cycle);  // cycle 51 > send + 50
  auto due = fabric.pop_due(1, cycle);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_GE(due[0].due_cycle, 50u);
}

// --- credits and determinism ----------------------------------------------------

TEST(Fabric, CreditBackpressureStallsDeterministically) {
  // fifo_depth=1 and two sources hammering one destination: the shared
  // column link congests and credits stall injection. The run must still be
  // reproducible flit for flit — run the identical traffic twice and demand
  // identical delivery cycles and identical stats.
  auto run_once = [] {
    FabricConfig cfg = small_mesh();
    cfg.fifo_depth = 1;
    Fabric fabric(cfg);
    std::uint64_t cycle = 0;
    for (std::uint32_t i = 0; i < 6; ++i) {
      fabric.send_frame(0, 3, 10 + i, {1, 2, 3, 4, 5, 6, 7, 8}, cycle);
      fabric.send_frame(1, 3, 20 + i, {1, 2, 3, 4, 5, 6, 7, 8}, cycle);
    }
    std::vector<std::pair<std::uint32_t, std::uint64_t>> deliveries;
    while (deliveries.size() < 12 && cycle < 2000) {
      fabric.tick(++cycle);
      for (auto& d : fabric.pop_due(3, cycle)) {
        deliveries.emplace_back(d.opcode, d.arrive_cycle);
      }
    }
    return std::tuple(deliveries, fabric.stats().to_table(), cycle);
  };

  auto [del1, table1, end1] = run_once();
  auto [del2, table2, end2] = run_once();
  ASSERT_EQ(del1.size(), 12u);
  EXPECT_EQ(del1, del2);      // cycle-exact reproducibility
  EXPECT_EQ(table1, table2);  // including every counter
  EXPECT_EQ(end1, end2);

  // Backpressure happened: with depth-1 FIFOs the congested run takes
  // longer than the same traffic on an uncongested (deep-buffer) fabric.
  FabricConfig deep = small_mesh();
  deep.fifo_depth = 64;
  Fabric fast(deep);
  std::uint64_t fast_cycle = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    fast.send_frame(0, 3, 10 + i, {1, 2, 3, 4, 5, 6, 7, 8}, fast_cycle);
    fast.send_frame(1, 3, 20 + i, {1, 2, 3, 4, 5, 6, 7, 8}, fast_cycle);
  }
  std::size_t got = 0;
  while (got < 12 && fast_cycle < 2000) {
    fast.tick(++fast_cycle);
    got += fast.pop_due(3, fast_cycle).size();
  }
  ASSERT_EQ(got, 12u);
  EXPECT_GT(end1, fast_cycle);
}

TEST(Fabric, BufferHighWaterBoundedByDepth) {
  FabricConfig cfg = small_mesh();
  cfg.fifo_depth = 2;
  Fabric fabric(cfg);
  std::uint64_t cycle = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    fabric.send_frame(0, 3, i, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, cycle);
  }
  std::size_t got = 0;
  while (got < 10 && cycle < 2000) {
    fabric.tick(++cycle);
    got += fabric.pop_due(3, cycle).size();
  }
  ASSERT_EQ(got, 10u);
  for (int t = 0; t < fabric.tiles(); ++t) {
    // Per-port FIFOs never exceed depth; a router buffers at most
    // depth x ports flits, and with one traffic stream far fewer.
    EXPECT_LE(fabric.router(t).stats().buffer_high_water,
              static_cast<std::size_t>(cfg.fifo_depth * kPortCount));
  }
  EXPECT_GT(fabric.router(3).stats().buffer_high_water, 0u);
}

// --- statistics -----------------------------------------------------------------

TEST(LatencyHistogram, PowerOfTwoBuckets) {
  LatencyHistogram h;
  h.add(1);
  h.add(3);
  h.add(4);
  h.add(1000);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 4.0 + 1000.0) / 4.0);
  EXPECT_EQ(h.buckets[0], 1u);  // 1
  EXPECT_EQ(h.buckets[1], 1u);  // 3 in [2,4)
  EXPECT_EQ(h.buckets[2], 1u);  // 4 in [4,8)
  EXPECT_EQ(h.buckets[9], 1u);  // 1000 in [512,1024)
}

TEST(Fabric, StatsExportAsJson) {
  Fabric fabric(small_mesh());
  std::uint64_t cycle = 0;
  fabric.send_frame(0, 3, 1, {1, 2, 3, 4, 5}, cycle);
  (void)run_until_delivery(fabric, 3, &cycle);
  std::string json = perf::export_noc_stats_json(fabric.stats());
  EXPECT_NE(json.find("\"mesh\":{\"width\":2,\"height\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"frames_delivered\":1"), std::string::npos);
  EXPECT_NE(json.find("\"routers\":["), std::string::npos);
  EXPECT_NE(json.find("\"links\":["), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
}

// --- cosim integration: mark-driven placement -----------------------------------

marks::MarkSet mesh_marks(int consumer_x, int consumer_y) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_class_mark("Consumer", marks::kTileX,
                   ScalarValue(std::int64_t{consumer_x}));
  m.set_class_mark("Consumer", marks::kTileY,
                   ScalarValue(std::int64_t{consumer_y}));
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

struct MeshCosim {
  MappedFixture fx;
  cosim::CoSimulation cosim;
  InstanceHandle consumer;
  InstanceHandle producer;

  explicit MeshCosim(marks::MarkSet m, cosim::CoSimConfig cfg = {})
      : fx(make_pipeline_domain(), std::move(m)), cosim(*fx.system, cfg) {
    consumer = cosim.create("Consumer");
    producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  }

  std::int64_t attr(const InstanceHandle& h, const char* cls,
                    const char* name) {
    const auto* a = fx.domain->find_class(cls)->find_attribute(name);
    return std::get<std::int64_t>(
        cosim.executor_of(h.cls).database().get_attr(h, a->id));
  }
};

TEST(MeshCosim, TileMarksSelectFabricInterconnect) {
  MeshCosim mesh(mesh_marks(1, 1));
  EXPECT_TRUE(mesh.cosim.has_fabric());
  EXPECT_EQ(mesh.cosim.fabric().width(), 2);

  // Without tile marks the legacy bus is chosen — the 1x2 degenerate case.
  marks::MarkSet legacy;
  legacy.mark_hardware("Consumer");
  MappedFixture fx(make_pipeline_domain(), std::move(legacy));
  cosim::CoSimulation bus_cosim(*fx.system);
  EXPECT_FALSE(bus_cosim.has_fabric());
}

TEST(MeshCosim, RoundTripOverTheMesh) {
  MeshCosim mesh(mesh_marks(1, 1));
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  EXPECT_TRUE(mesh.cosim.quiescent());

  // Same functional outcome as every other mapping of this model.
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "sent"), 1);
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "acks"), 1);
  EXPECT_EQ(mesh.attr(mesh.consumer, "Consumer", "total"), 1);

  // And the traffic demonstrably crossed the mesh: work + done = 2 frames,
  // with nonzero flit counts at the tiles on the XY route.
  const FabricStats stats = mesh.cosim.fabric().stats();
  EXPECT_EQ(stats.frames_delivered, 2u);
  EXPECT_GT(stats.flits_injected, 0u);
  EXPECT_GT(stats.latency.count, 0u);
  EXPECT_GT(stats.routers[0].flits_routed, 0u);   // sw tile (0,0)
  EXPECT_GT(stats.routers[3].flits_ejected, 0u);  // consumer tile (1,1)
}

TEST(MeshCosim, ForgedDigestDetectedAtConnect) {
  MappedFixture fx(make_pipeline_domain(), mesh_marks(1, 1));
  cosim::CoSimConfig cfg;
  cfg.forged_sw_digest = "deadbeef";
  EXPECT_THROW(cosim::CoSimulation(*fx.system, cfg),
               cosim::InterfaceMismatch);
}

TEST(MeshCosim, PerfReportCarriesNocStats) {
  MeshCosim mesh(mesh_marks(1, 1));
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  perf::PerfReport report = perf::measure(mesh.cosim);
  EXPECT_TRUE(report.has_noc);
  EXPECT_EQ(report.bus_frames, 2u);  // interconnect frames = NoC frames
  EXPECT_GT(report.noc.flits_injected, 0u);
  EXPECT_NE(report.to_table().find("router"), std::string::npos);
}

TEST(MeshCosim, PlacementChangesLatencyNotBehavior) {
  // The acceptance bar of the NoC subsystem: moving a class's tileX/tileY
  // changes the measured frame latency but produces an equivalent execution
  // — verified against the abstract (unpartitioned) Executor both times.
  auto run_placement = [](int x, int y) {
    MeshCosim mesh(mesh_marks(x, y));
    for (int i = 0; i < 4; ++i) {
      mesh.cosim.inject(mesh.producer, "kick", {},
                        static_cast<std::uint64_t>(i) * 100);
    }
    mesh.cosim.run();
    std::vector<const runtime::Trace*> traces;
    for (const auto& hw : mesh.cosim.hw_domains()) {
      traces.push_back(&hw->executor().trace());
    }
    traces.push_back(&mesh.cosim.sw_executor().trace());

    // Reference execution of the same stimulus on the abstract model.
    runtime::Executor abs(*mesh.fx.compiled);
    auto c = abs.create("Consumer");
    auto p = abs.create_with("Producer", {{"sink", Value(c)}});
    for (int i = 0; i < 4; ++i) {
      abs.inject(p, "kick", {}, static_cast<std::uint64_t>(i) * 100);
    }
    abs.run_all(100000);

    verify::EquivalenceReport eq =
        verify::compare_executions(abs.trace(), traces);
    return std::tuple(eq.equivalent,
                      mesh.cosim.fabric().stats().latency.mean(),
                      mesh.attr(mesh.consumer, "Consumer", "total"));
  };

  // (1,1) is two hops from the software tile (0,0); (1,0) is one.
  auto [eq_far, latency_far, total_far] = run_placement(1, 1);
  auto [eq_near, latency_near, total_near] = run_placement(1, 0);

  EXPECT_TRUE(eq_far);
  EXPECT_TRUE(eq_near);
  EXPECT_EQ(total_far, total_near);       // identical behavior...
  EXPECT_GT(latency_far, latency_near);   // ...different cost
}

TEST(MeshCosim, HardwareToHardwareCrossTileSignals) {
  // Producer and Consumer both in hardware but on different tiles: their
  // signals must ride the NoC as wire messages (tiles share no memory), so
  // the synthesized interface covers hw->hw cross-tile generates too.
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.mark_hardware("Producer");
  m.set_class_mark("Consumer", marks::kTileX, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Consumer", marks::kTileY, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Producer", marks::kTileX, ScalarValue(std::int64_t{1}));
  m.set_class_mark("Producer", marks::kTileY, ScalarValue(std::int64_t{0}));
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));

  MeshCosim mesh(std::move(m));
  EXPECT_EQ(mesh.cosim.hw_domains().size(), 2u);
  mesh.cosim.inject(mesh.producer, "kick");
  mesh.cosim.run();
  EXPECT_EQ(mesh.attr(mesh.consumer, "Consumer", "total"), 1);
  EXPECT_EQ(mesh.attr(mesh.producer, "Producer", "acks"), 1);
  EXPECT_GE(mesh.cosim.fabric().stats().frames_delivered, 2u);
  EXPECT_EQ(mesh.cosim.sw_executor().dispatch_count(), 0u);
}

}  // namespace
}  // namespace xtsoc::noc
