#include <gtest/gtest.h>

#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/text/xtm.hpp"
#include "xtsoc/xtuml/validate.hpp"

namespace xtsoc::text {
namespace {

constexpr const char* kTrafficXtm = R"(
# A traffic-light intersection controller.
domain Traffic

class Controller key CTL
  attr cycles : int = 0
  event tick()
  state Running {
    self.cycles = self.cycles + 1;
    select many ls related by self->Light[R1];
    for each l in ls
      generate advance() to l;
    end for;
    generate tick() to self delay 10;
  }
  transition Running on tick -> Running
  initial Running
end

class Light key LGT
  attr color : int = 0        # 0=red 1=green 2=yellow
  attr bright : real = 1.0
  attr label : string = "main"
  event advance()
  state Red {
    self.color = 0;
  }
  state Green {
    self.color = 1;
  }
  state Yellow {
    self.color = 2;
  }
  transition Red on advance -> Green
  transition Green on advance -> Yellow
  transition Yellow on advance -> Red
  initial Red
  on_unexpected cant_happen
end

assoc R1 Controller controls 1 -- Light controlled_by 1..*
)";

TEST(XtmParser, ParsesTrafficModel) {
  DiagnosticSink sink;
  auto d = parse_xtm(kTrafficXtm, sink);
  ASSERT_NE(d, nullptr) << sink.to_string();
  EXPECT_EQ(d->name(), "Traffic");
  EXPECT_EQ(d->class_count(), 2u);

  const xtuml::ClassDef& light = *d->find_class("Light");
  EXPECT_EQ(light.key_letters, "LGT");
  EXPECT_EQ(light.states.size(), 3u);
  EXPECT_EQ(light.transitions.size(), 3u);
  EXPECT_EQ(light.fallback, xtuml::EventFallback::kCantHappen);
  const xtuml::AttributeDef* color = light.find_attribute("color");
  ASSERT_NE(color, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*color->default_value), 0);
  const xtuml::AttributeDef* label = light.find_attribute("label");
  EXPECT_EQ(std::get<std::string>(*label->default_value), "main");
  const xtuml::AttributeDef* bright = light.find_attribute("bright");
  EXPECT_DOUBLE_EQ(std::get<double>(*bright->default_value), 1.0);

  ASSERT_EQ(d->associations().size(), 1u);
  EXPECT_EQ(d->associations()[0].name, "R1");
  EXPECT_EQ(d->associations()[0].b.mult, xtuml::Multiplicity::kMany);
}

TEST(XtmParser, ParsedModelValidatesAndCompiles) {
  DiagnosticSink sink;
  auto d = parse_xtm(kTrafficXtm, sink);
  ASSERT_NE(d, nullptr) << sink.to_string();
  auto compiled = oal::compile_domain(*d, sink);
  EXPECT_NE(compiled, nullptr) << sink.to_string();
}

TEST(XtmParser, ActionBodiesPreserved) {
  DiagnosticSink sink;
  auto d = parse_xtm(kTrafficXtm, sink);
  ASSERT_NE(d, nullptr);
  const xtuml::StateDef* running = d->find_class("Controller")->find_state("Running");
  ASSERT_NE(running, nullptr);
  EXPECT_NE(running->action_source.find("generate advance() to l;"),
            std::string::npos);
}

TEST(XtmParser, RefParamsAndAttrs) {
  DiagnosticSink sink;
  auto d = parse_xtm(R"(
domain D
class B
  attr back : ref A
  event notify(who : ref A)
end
class A
end
)", sink);
  ASSERT_NE(d, nullptr) << sink.to_string();
  // Forward reference to A (declared later) resolves via pre-pass.
  const xtuml::AttributeDef* back = d->find_class("B")->find_attribute("back");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->ref_class, d->find_class_id("A"));
  const xtuml::EventDef* ev = d->find_class("B")->find_event("notify");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->params[0].ref_class, d->find_class_id("A"));
}

TEST(XtmParser, Errors) {
  auto expect_error = [](const char* src, const char* code) {
    DiagnosticSink sink;
    EXPECT_EQ(parse_xtm(src, sink), nullptr) << src;
    EXPECT_NE(sink.to_string().find(code), std::string::npos)
        << "wanted " << code << ", got: " << sink.to_string();
  };
  expect_error("class A\nend\n", "xtm.domain");
  expect_error("domain D\nclass A\nclass A\nend\nend\n", "xtm.class.dup");
  expect_error("domain D\nclass A\n  attr x : nosuch\nend\n", "xtm.type");
  expect_error("domain D\nclass A\n  bogus line\nend\n", "xtm.class.stmt");
  expect_error("domain D\nclass A\n  attr x : int\n", "xtm.class.unterminated");
  expect_error("domain D\nclass A\n  state S {\n  x = 1;\n", // no closing }
               "xtm.state.unterminated");
  expect_error("domain D\nclass A\n  transition X on e -> Y\nend\n",
               "xtm.transition");
  expect_error("domain D\nassoc R1 A x 1 -- B y 1\n", "xtm.assoc");
  expect_error("domain D\nclass A\nend\nclass B\nend\n"
               "assoc R1 A x 7 -- B y 1\n", "xtm.assoc");
  expect_error("domain D\nclass A\n  attr x : ref Nope\nend\n", "xtm.ref");
  expect_error("domain D\nclass A\n  event e(p : ref Nope)\nend\n",
               "xtm.event.param");
  expect_error("domain D\nclass A\n  initial Nope\nend\n", "xtm.initial");
  expect_error("domain D\nclass A\n  on_unexpected whatever\nend\n",
               "xtm.fallback");
  expect_error("domain D\nclass A\n  attr x : int = zz\nend\n", "xtm.literal");
}

TEST(XtmWriter, RoundTripIsStructurallyIdentical) {
  DiagnosticSink sink;
  auto d1 = parse_xtm(kTrafficXtm, sink);
  ASSERT_NE(d1, nullptr) << sink.to_string();
  std::string text1 = write_xtm(*d1);
  auto d2 = parse_xtm(text1, sink);
  ASSERT_NE(d2, nullptr) << sink.to_string() << "\n" << text1;
  // Writing again must be a fixpoint.
  EXPECT_EQ(text1, write_xtm(*d2));
  // Structure preserved.
  EXPECT_EQ(d2->class_count(), d1->class_count());
  EXPECT_EQ(d2->state_count(), d1->state_count());
  EXPECT_EQ(d2->transition_count(), d1->transition_count());
  EXPECT_EQ(d2->event_count(), d1->event_count());
  EXPECT_EQ(d2->associations().size(), d1->associations().size());
  // And the round-tripped model still compiles.
  auto compiled = oal::compile_domain(*d2, sink);
  EXPECT_NE(compiled, nullptr) << sink.to_string();
}

TEST(XtmWriter, EmitsRefTypes) {
  DiagnosticSink sink;
  auto d = parse_xtm(R"(
domain D
class A
end
class B
  attr peer : ref A
  event go(target : ref A)
end
)", sink);
  ASSERT_NE(d, nullptr);
  std::string out = write_xtm(*d);
  EXPECT_NE(out.find("attr peer : ref A"), std::string::npos);
  EXPECT_NE(out.find("go(target : ref A)"), std::string::npos);
}

TEST(XtmParser, CommentsAndBlankLinesIgnored) {
  DiagnosticSink sink;
  auto d = parse_xtm("\n# leading comment\n\ndomain D  # trailing\n\n"
                     "class A # comment\nend\n", sink);
  ASSERT_NE(d, nullptr) << sink.to_string();
  EXPECT_EQ(d->class_count(), 1u);
}

}  // namespace
}  // namespace xtsoc::text
