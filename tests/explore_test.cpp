// Tests for the VCD writer and the bounded state-space explorer.

#include <gtest/gtest.h>

#include "xtsoc/hwsim/components.hpp"
#include "xtsoc/hwsim/vcd.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/verify/explore.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc {
namespace {

using runtime::Value;
using xtuml::DataType;
using xtuml::DomainBuilder;

// --- VCD --------------------------------------------------------------------------

TEST(Vcd, HeaderListsWatchedWires) {
  hwsim::Simulator sim;
  sim.wire(1, 0, "clk");
  sim.wire(8, 0, "data bus");  // space becomes underscore
  sim.wire(4);                 // anonymous
  hwsim::VcdWriter vcd(sim);
  std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("data_bus"), std::string::npos);
  EXPECT_NE(out.find("wire2"), std::string::npos);
  EXPECT_EQ(vcd.watched_count(), 3u);
}

TEST(Vcd, FirstSampleDumpsEverything) {
  hwsim::Simulator sim;
  HwSignalId a = sim.wire(1, 1, "a");
  sim.wire(8, 5, "b");
  hwsim::VcdWriter vcd(sim);
  vcd.sample();
  std::string out = vcd.render();
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);     // a = 1
  EXPECT_NE(out.find("b101 \""), std::string::npos); // b = 5
  (void)a;
}

TEST(Vcd, OnlyChangesAfterFirstSample) {
  hwsim::Simulator sim;
  HwSignalId clk = sim.wire(1, 0, "clk");
  sim.add_clock(clk, 1);
  hwsim::Counter ctr(sim, clk, 8);
  hwsim::VcdWriter vcd(sim, {clk, ctr.value()});
  vcd.sample();
  std::size_t after_first = vcd.change_count();
  sim.run_cycles(clk, 1);
  vcd.sample();
  EXPECT_GT(vcd.change_count(), after_first);
  std::string out = vcd.render();
  // The counter (id ") went to 1 at some later timestamp.
  EXPECT_NE(out.find("b1 \""), std::string::npos);
  // No repeated dump of unchanged values: "$dumpvars" appears exactly once.
  EXPECT_EQ(out.find("$dumpvars"), out.rfind("$dumpvars"));
}

TEST(Vcd, QuietSampleEmitsNothing) {
  hwsim::Simulator sim;
  sim.wire(1, 0, "a");
  hwsim::VcdWriter vcd(sim);
  vcd.sample();
  std::string before = vcd.render();
  vcd.sample();  // nothing changed, no time advanced
  EXPECT_EQ(vcd.render(), before);
}

// --- explorer ----------------------------------------------------------------------

/// Two independent toggles: the schedule space is all interleavings of two
/// 2-step chains; reachable states are the product (9 states incl. root
/// variants), and exploration must be complete.
TEST(Explore, CoversAllInterleavings) {
  DomainBuilder b("Toggles");
  b.cls("T")
      .attr("n", DataType::kInt)
      .event("flip")
      .state("Off", "self.n = self.n + 1;")
      .state("On", "self.n = self.n + 1;")
      .transition("Off", "flip", "On")
      .transition("On", "flip", "Off")
      .initial("Off");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();

  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto t1 = exec.create("T");
    auto t2 = exec.create("T");
    exec.inject(t1, "flip");
    exec.inject(t1, "flip");
    exec.inject(t2, "flip");
    exec.inject(t2, "flip");
  });
  EXPECT_TRUE(result.complete) << result.to_string();
  EXPECT_TRUE(result.errors.empty()) << result.to_string();
  // 3x3 grid of (t1 progress, t2 progress).
  EXPECT_EQ(result.states_visited, 9u);
  EXPECT_TRUE(result.dead_states.empty());
}

TEST(Explore, FindsCantHappenOnSomeScheduleOnly) {
  // A receives "a" then "b" from two different channels. If "b" lands
  // first, A is still in S0 where "b" can't happen. A single default-order
  // run never sees it; the explorer must.
  DomainBuilder b("Race");
  b.cls("A")
      .event("a")
      .event("b")
      .state("S0")
      .state("S1")
      .state("S2")
      .transition("S0", "a", "S1")
      .transition("S1", "b", "S2")
      .on_unexpected(xtuml::EventFallback::kCantHappen);
  b.cls("Driver")
      .ref_attr("target", "A")
      .event("go")
      .state("D0")
      .state("D1", "generate b() to self.target;")
      .transition("D0", "go", "D1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();

  // Default executor order: 'a' (injected first) dispatches first — fine.
  {
    runtime::Executor exec(*cd);
    auto a = exec.create("A");
    auto d = exec.create_with("Driver", {{"target", Value(a)}});
    exec.inject(a, "a");
    exec.inject(d, "go");  // driver then sends 'b' — after 'a'
    EXPECT_NO_THROW(exec.run_all());
  }

  // The explorer finds the schedule where the driver outruns 'a'.
  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto a = exec.create("A");
    auto d = exec.create_with("Driver", {{"target", Value(a)}});
    exec.inject(a, "a");
    exec.inject(d, "go");
  });
  ASSERT_FALSE(result.errors.empty()) << result.to_string();
  EXPECT_NE(result.errors[0].find("can't-happen"), std::string::npos);
  EXPECT_NE(result.errors[0].find("schedule"), std::string::npos);
}

TEST(Explore, ReportsDeadStates) {
  DomainBuilder b("Dead");
  b.cls("A")
      .event("go")
      .state("S0")
      .state("S1")
      .state("Unreachable")  // no transition leads here with this stimulus
      .event("never")
      .transition("S0", "go", "S1")
      .transition("S1", "never", "Unreachable");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();

  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto a = exec.create("A");
    exec.inject(a, "go");
  });
  ASSERT_EQ(result.dead_states.size(), 1u) << result.to_string();
  EXPECT_EQ(result.dead_states[0].second, "Unreachable");
}

TEST(Explore, RespectsPairwiseOrderAndSelfPriority) {
  // B sends itself "s" while an external "e" is pending: only the
  // self-directed event is a candidate (xtUML priority), so exactly one
  // schedule exists and it matches the executor's default order.
  DomainBuilder b("SelfP");
  b.cls("B")
      .attr("log_order", DataType::kString)
      .event("go")
      .event("s")
      .event("e")
      .state("S0")
      .state("S1", "generate s() to self;")
      .state("S2", "self.log_order = self.log_order + \"s\";")
      .state("S3", "self.log_order = self.log_order + \"e\";")
      .transition("S0", "go", "S1")
      .transition("S1", "s", "S2")
      .transition("S1", "e", "S3")
      .transition("S2", "e", "S2")
      .transition("S3", "s", "S3");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();

  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto inst = exec.create("B");
    exec.inject(inst, "go");
    exec.inject(inst, "e");
  });
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.errors.empty()) << result.to_string();
  // S3 is unreachable BECAUSE of the self-priority rule.
  ASSERT_EQ(result.dead_states.size(), 1u) << result.to_string();
  EXPECT_EQ(result.dead_states[0].second, "S3");
}

TEST(Explore, DelayRejected) {
  DomainBuilder b("D");
  b.cls("A")
      .event("go")
      .state("S0")
      .state("S1", "generate go() to self delay 5;")
      .transition("S0", "go", "S1")
      .transition("S1", "go", "S1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();
  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto a = exec.create("A");
    exec.inject(a, "go");
  });
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors[0].find("delay"), std::string::npos);
}

TEST(Explore, StateBoundTruncates) {
  // A counter that never converges: ping-pong with ever-growing attr.
  DomainBuilder b("Grow");
  b.cls("A")
      .attr("n", DataType::kInt)
      .event("t")
      .state("S", "self.n = self.n + 1;\ngenerate t() to self;")
      .transition("S", "t", "S");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr) << sink.to_string();
  verify::ExploreConfig cfg;
  cfg.max_states = 50;
  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto a = exec.create("A");
    exec.inject(a, "t");
  }, cfg);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.states_visited, 50u);
}

TEST(Explore, ResultToStringMentionsEverything) {
  DomainBuilder b("D");
  b.cls("A").event("go").state("S0").state("S1").transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr);
  auto result = verify::explore(*cd, [](runtime::Executor& exec) {
    auto a = exec.create("A");
    exec.inject(a, "go");
  });
  std::string s = result.to_string();
  EXPECT_NE(s.find("states"), std::string::npos);
  EXPECT_NE(s.find("transitions"), std::string::npos);
}

}  // namespace
}  // namespace xtsoc
