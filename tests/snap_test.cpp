// xtsoc::snap — versioned checkpoint/restore.
//
// The contracts under test, in order:
//   * the determinism grid: save at cycle N, restore into a FRESH
//     elaboration, continue to M — traces, VCD, stats and report() are
//     byte-identical to the uninterrupted run, at threads 1/2/8 x window
//     0/1/L x faults on/off;
//   * a snapshot is config-portable: saved under one (threads, window)
//     configuration, it restores under any other and still reproduces the
//     serial run byte for byte;
//   * fault::Plan RNG positions ride the snapshot ('F' section): a faulty
//     run resumes mid-stream, not from a reseeded stream;
//   * obs counters ride the snapshot ('O' section);
//   * rejection: truncated files, bit flips (CRC), version bumps, wrong
//     magic, and digest mismatches (a different MappedSystem) all throw
//     SnapError instead of deserializing garbage;
//   * inspect() reads the header without a CoSimulation;
//   * warm campaigns (snap/warm.hpp): one checkpoint + per-seed fresh
//     streams produces the exact cold-campaign document, and the
//     window-start precondition is enforced.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "test_models.hpp"
#include "xtsoc/jit/jit.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/hwsim/vcd.hpp"
#include "xtsoc/obs/registry.hpp"
#include "xtsoc/snap/snapshot.hpp"
#include "xtsoc/snap/warm.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::snap {
namespace {

using cosim::CoSimConfig;
using cosim::CoSimulation;
using runtime::Value;
using testing::MappedFixture;
using xtuml::DataType;
using xtuml::ScalarValue;

// --- workload ------------------------------------------------------------------

/// A self-sustaining 2x2-mesh ring: three hardware nodes ping-ponging
/// forever (each tick re-arms itself), so there is traffic in flight at
/// every candidate checkpoint cycle.
std::unique_ptr<xtuml::Domain> make_ring_domain() {
  xtuml::DomainBuilder b("Ring");
  constexpr int kNodes = 3;
  for (int i = 0; i < kNodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < kNodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % kNodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "self.acc = (self.acc * 33 + 7) % 65537;\n"
               "if (self.acc % 8 == 0)\n"
               "  generate ping(v: self.acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;\n"
               "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet ring_marks() {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};  // sw owns (0,0)
  for (int i = 0; i < 3; ++i) {
    std::string cls = "Node" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

/// Create the ring population and kick every node once.
void boot_ring(CoSimulation& cs) {
  constexpr int kNodes = 3;
  std::vector<runtime::InstanceHandle> h;
  for (int i = 0; i < kNodes; ++i) {
    h.push_back(cs.create("Node" + std::to_string(i)));
  }
  for (int i = 0; i < kNodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cs.executor_of(h[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(h[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(h[static_cast<std::size_t>((i + 1) % kNodes)]));
    cs.inject(h[static_cast<std::size_t>(i)], "tick");
  }
}

fault::FaultSpec noisy_spec() {
  fault::FaultSpec s;
  s.seed = 7;
  s.flit_drop = 0.05;
  s.flit_corrupt = 0.05;
  return s;
}

// --- byte-for-byte capture -----------------------------------------------------

/// Everything observable about the continuation segment of a run. The
/// executor traces are cumulative (they ride the snapshot), so they cover
/// the full history either way; the VCD writer is attached at the segment
/// start in BOTH arms, so its samples line up cycle for cycle.
struct Tail {
  std::string hw_traces;
  std::string sw_trace;
  std::string vcd;
  std::string report;
  std::uint64_t cycles = 0;
};

Tail run_tail(CoSimulation& cs, std::uint64_t more_cycles) {
  hwsim::VcdWriter vcd(cs.hw_sim());
  cs.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
  cs.run_cycles(more_cycles);
  cs.set_cycle_hook(nullptr);
  Tail t;
  for (const auto& hw : cs.hw_domains()) {
    t.hw_traces += hw->executor().trace().to_string();
  }
  t.sw_trace = cs.sw_executor().trace().to_string();
  t.vcd = vcd.render();
  t.report = cs.report().to_json(2);
  t.cycles = cs.cycles();
  return t;
}

void expect_identical(const Tail& a, const Tail& b, const std::string& what) {
  EXPECT_EQ(a.hw_traces, b.hw_traces) << what;
  EXPECT_EQ(a.sw_trace, b.sw_trace) << what;
  EXPECT_EQ(a.vcd, b.vcd) << what;
  EXPECT_EQ(a.report, b.report) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
}

constexpr std::uint64_t kSaveAt = 300;
constexpr std::uint64_t kContinue = 400;

/// One grid cell: straight-through vs save-at-N + restore-into-fresh.
void grid_case(int threads, int window, bool faults) {
  const std::string what = "threads=" + std::to_string(threads) +
                           " window=" + std::to_string(window) +
                           " faults=" + (faults ? "on" : "off");
  MappedFixture fx(make_ring_domain(), ring_marks());
  CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;

  fault::Plan plan_a(faults ? noisy_spec() : fault::FaultSpec{});
  cfg.fault = faults ? &plan_a : nullptr;
  CoSimulation a(*fx.system, cfg);
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, cfg.fault, nullptr);
  Tail ta = run_tail(a, kContinue);

  fault::Plan plan_b(faults ? noisy_spec() : fault::FaultSpec{});
  cfg.fault = faults ? &plan_b : nullptr;
  CoSimulation b(*fx.system, cfg);  // fresh elaboration, no boot: state loads
  const SnapshotInfo info =
      restore(b, bytes.data(), bytes.size(), cfg.fault, nullptr);
  EXPECT_EQ(info.cycle, kSaveAt) << what;
  EXPECT_EQ(info.version, kSnapVersion) << what;
  EXPECT_EQ(info.has_fault_streams, faults) << what;
  Tail tb = run_tail(b, kContinue);

  expect_identical(ta, tb, what);
}

// --- the determinism grid ------------------------------------------------------

TEST(SnapGrid, Threads1Window0) { grid_case(1, 0, false); }
TEST(SnapGrid, Threads1Window1) { grid_case(1, 1, false); }
TEST(SnapGrid, Threads1WindowL) { grid_case(1, 4, false); }
TEST(SnapGrid, Threads2Window0) { grid_case(2, 0, false); }
TEST(SnapGrid, Threads2WindowL) { grid_case(2, 4, false); }
TEST(SnapGrid, Threads8Window1) { grid_case(8, 1, false); }
TEST(SnapGrid, Threads8WindowL) { grid_case(8, 4, false); }
TEST(SnapGrid, FaultsThreads1Window0) { grid_case(1, 0, true); }
TEST(SnapGrid, FaultsThreads1Window1) { grid_case(1, 1, true); }
TEST(SnapGrid, FaultsThreads1WindowL) { grid_case(1, 4, true); }
TEST(SnapGrid, FaultsThreads2Window0) { grid_case(2, 0, true); }
TEST(SnapGrid, FaultsThreads2WindowL) { grid_case(2, 4, true); }
TEST(SnapGrid, FaultsThreads8Window1) { grid_case(8, 1, true); }
TEST(SnapGrid, FaultsThreads8WindowL) { grid_case(8, 4, true); }

// A snapshot is engine-portable: the saved bytes record model state, not
// execution machinery, so a run saved under the bytecode VM restores into
// a jit-engined co-simulation (and vice versa) and continues byte for
// byte. A stale or mismatched jitted object cannot corrupt this path: it
// is rejected at load time by its embedded digest (jit_test covers that
// rejection), leaving the restore running on the VM.
void cross_engine_case(runtime::ActionEngine save_engine,
                       runtime::ActionEngine restore_engine,
                       const std::string& what) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  jit::JitOptions jopts;
  std::error_code ec;
  jopts.cache_dir =
      (std::filesystem::temp_directory_path(ec) / "xtsoc-jit-gtest").string();
  jit::JitResult jr = jit::compile(*fx.compiled, jopts);
  ASSERT_NE(jr.module, nullptr) << jr.reason;
  auto config_for = [&](runtime::ActionEngine engine) {
    CoSimConfig cfg;
    cfg.engine = engine;
    if (engine == runtime::ActionEngine::kJit) cfg.compiled = jr.module.get();
    return cfg;
  };

  CoSimulation a(*fx.system, config_for(save_engine));
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, nullptr, nullptr);
  Tail ta = run_tail(a, kContinue);

  CoSimulation b(*fx.system, config_for(restore_engine));
  const SnapshotInfo info = restore(b, bytes.data(), bytes.size(), nullptr,
                                    nullptr);
  EXPECT_EQ(info.cycle, kSaveAt) << what;
  Tail tb = run_tail(b, kContinue);
  expect_identical(ta, tb, what);
}

TEST(SnapGrid, CrossEngineVmToJit) {
  cross_engine_case(runtime::ActionEngine::kBytecode,
                    runtime::ActionEngine::kJit, "saved vm, restored jit");
}

TEST(SnapGrid, CrossEngineJitToVm) {
  cross_engine_case(runtime::ActionEngine::kJit,
                    runtime::ActionEngine::kBytecode, "saved jit, restored vm");
}

/// The report's "run" section echoes host knobs (threads, window) that a
/// ported restore legitimately changes; drop those two lines so the rest
/// of the document must still match byte for byte.
std::string strip_host_knobs(const std::string& report) {
  std::string out;
  std::size_t pos = 0;
  while (pos < report.size()) {
    std::size_t eol = report.find('\n', pos);
    if (eol == std::string::npos) eol = report.size();
    const std::string line = report.substr(pos, eol - pos);
    if (line.find("\"threads\":") == std::string::npos &&
        line.find("\"window\":") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

// A snapshot is config-portable: saved serial, restored parallel — the
// continuation still equals the serial run byte for byte.
TEST(SnapGrid, SnapshotPortsAcrossConfigurations) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  fault::Plan plan_a(noisy_spec());
  CoSimConfig serial;
  serial.fault = &plan_a;
  CoSimulation a(*fx.system, serial);
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, &plan_a, nullptr);
  Tail ta = run_tail(a, kContinue);

  for (auto [threads, window] : {std::pair{2, 4}, std::pair{8, 0}}) {
    fault::Plan plan_b(noisy_spec());
    CoSimConfig cfg;
    cfg.threads = threads;
    cfg.window = window;
    cfg.fault = &plan_b;
    CoSimulation b(*fx.system, cfg);
    restore(b, bytes.data(), bytes.size(), &plan_b, nullptr);
    Tail tb = run_tail(b, kContinue);
    const std::string what =
        "saved at threads=1/window=0, restored at threads=" +
        std::to_string(threads) + "/window=" + std::to_string(window);
    EXPECT_EQ(ta.hw_traces, tb.hw_traces) << what;
    EXPECT_EQ(ta.sw_trace, tb.sw_trace) << what;
    EXPECT_EQ(ta.vcd, tb.vcd) << what;
    EXPECT_EQ(strip_host_knobs(ta.report), strip_host_knobs(tb.report))
        << what;
    EXPECT_EQ(ta.cycles, tb.cycles) << what;
  }
}

// The reverse port: saved under the sharded parallel scheduler (threads=8,
// window=auto, so phase B replays per-tile kernel shards concurrently),
// restored serial and at another thread count. The kernel's shard
// structure is construction-time configuration, not snapshot state — the
// 'H' section layout is identical either way — so a sharded run's
// snapshot must be interchangeable with a serial one, byte for byte.
TEST(SnapGrid, ShardedSnapshotPortsAcrossThreadCounts) {
  // The stock ring has a 1-cycle link (lookahead 1, forced lockstep); give
  // it a 4-cycle link so window=0 really opens a window and shards.
  marks::MarkSet m = ring_marks();
  m.set_domain_mark(marks::kLinkLatency, ScalarValue(std::int64_t{4}));
  MappedFixture fx(make_ring_domain(), std::move(m));
  fault::Plan plan_a(noisy_spec());
  CoSimConfig sharded;
  sharded.threads = 8;
  sharded.window = 0;
  sharded.fault = &plan_a;
  CoSimulation a(*fx.system, sharded);
  EXPECT_TRUE(a.hw_sim().has_replay_shards());
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, &plan_a, nullptr);
  Tail ta = run_tail(a, kContinue);

  for (auto [threads, window] : {std::pair{1, 1}, std::pair{2, 4}}) {
    fault::Plan plan_b(noisy_spec());
    CoSimConfig cfg;
    cfg.threads = threads;
    cfg.window = window;
    cfg.fault = &plan_b;
    CoSimulation b(*fx.system, cfg);
    restore(b, bytes.data(), bytes.size(), &plan_b, nullptr);
    Tail tb = run_tail(b, kContinue);
    const std::string what =
        "saved at threads=8/window=0, restored at threads=" +
        std::to_string(threads) + "/window=" + std::to_string(window);
    EXPECT_EQ(ta.hw_traces, tb.hw_traces) << what;
    EXPECT_EQ(ta.sw_trace, tb.sw_trace) << what;
    EXPECT_EQ(ta.vcd, tb.vcd) << what;
    EXPECT_EQ(strip_host_knobs(ta.report), strip_host_knobs(tb.report))
        << what;
    EXPECT_EQ(ta.cycles, tb.cycles) << what;
  }
}

// Without the 'F' section loaded, a faulty continuation diverges — proof
// the stream positions (not just the seed) are what the snapshot carries.
TEST(SnapGrid, FaultStreamsActuallyMatter) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  fault::Plan plan_a(noisy_spec());
  CoSimConfig cfg;
  cfg.fault = &plan_a;
  CoSimulation a(*fx.system, cfg);
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, &plan_a, nullptr);
  Tail ta = run_tail(a, kContinue);

  fault::Plan plan_b(noisy_spec());  // fresh streams, same seed
  CoSimConfig cfg_b;
  cfg_b.fault = &plan_b;
  CoSimulation b(*fx.system, cfg_b);
  RestoreOptions opts;
  opts.load_fault_streams = false;
  restore(b, bytes.data(), bytes.size(), &plan_b, nullptr, opts);
  Tail tb = run_tail(b, kContinue);
  // Same state, but the plan re-draws from position 0: the fault pattern —
  // and with it the delivery timeline some observable records — must
  // differ. (The exported VCD signals are too coarse to be guaranteed to
  // move, so the assertion spans every observable.)
  EXPECT_TRUE(ta.hw_traces != tb.hw_traces || ta.sw_trace != tb.sw_trace ||
              ta.report != tb.report);
}

// --- obs counters --------------------------------------------------------------

TEST(SnapObs, CountersRideTheSnapshot) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  obs::Registry reg_a;
  CoSimConfig cfg;
  cfg.obs = &reg_a;
  CoSimulation a(*fx.system, cfg);
  boot_ring(a);
  a.run_cycles(kSaveAt);
  const std::vector<std::uint8_t> bytes = save(a, nullptr, &reg_a);

  obs::Registry reg_b;
  CoSimConfig cfg_b;
  cfg_b.obs = &reg_b;
  CoSimulation b(*fx.system, cfg_b);
  const SnapshotInfo info =
      restore(b, bytes.data(), bytes.size(), nullptr, &reg_b);
  EXPECT_TRUE(info.has_obs_counters);
  EXPECT_EQ(reg_a.counters(), reg_b.counters());
  EXPECT_FALSE(reg_b.counters().empty());

  // And the continued runs agree counter for counter.
  a.run_cycles(kContinue);
  b.run_cycles(kContinue);
  EXPECT_EQ(reg_a.counters(), reg_b.counters());
}

// A snapshot with sections the reader does not want (no plan, no registry
// attached at restore time) still restores: unwanted sections are skipped.
TEST(SnapObs, UnwantedSectionsAreSkipped) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  obs::Registry reg;
  fault::Plan plan(noisy_spec());
  CoSimConfig cfg;
  cfg.obs = &reg;
  cfg.fault = &plan;
  CoSimulation a(*fx.system, cfg);
  boot_ring(a);
  a.run_cycles(100);
  const std::vector<std::uint8_t> bytes = save(a, &plan, &reg);

  CoSimulation b(*fx.system, CoSimConfig{});
  const SnapshotInfo info = restore(b, bytes.data(), bytes.size());
  EXPECT_TRUE(info.has_fault_streams);
  EXPECT_TRUE(info.has_obs_counters);
  EXPECT_EQ(b.cycles(), 100u);
}

// --- rejection -----------------------------------------------------------------

std::vector<std::uint8_t> make_snapshot(MappedFixture& fx,
                                        std::uint64_t cycles = 100) {
  CoSimulation cs(*fx.system, CoSimConfig{});
  boot_ring(cs);
  cs.run_cycles(cycles);
  return save(cs);
}

/// Recompute the trailing CRC after a deliberate patch, so the test hits
/// the check it aims at instead of stopping at the CRC.
void refresh_crc(std::vector<std::uint8_t>* bytes) {
  const std::uint32_t crc = fault::crc32(bytes->data(), bytes->size() - 4);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[bytes->size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

TEST(SnapReject, TruncatedFile) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  std::vector<std::uint8_t> bytes = make_snapshot(fx);
  bytes.resize(bytes.size() - 5);
  CoSimulation cs(*fx.system, CoSimConfig{});
  EXPECT_THROW(restore(cs, bytes.data(), bytes.size()), SnapError);
  EXPECT_THROW(inspect(bytes.data(), bytes.size()), SnapError);
}

TEST(SnapReject, BitFlipFailsCrc) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  std::vector<std::uint8_t> bytes = make_snapshot(fx);
  bytes[bytes.size() / 2] ^= 0x40;
  CoSimulation cs(*fx.system, CoSimConfig{});
  EXPECT_THROW(restore(cs, bytes.data(), bytes.size()), SnapError);
}

TEST(SnapReject, VersionMismatch) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  std::vector<std::uint8_t> bytes = make_snapshot(fx);
  // Version is the u32 after the 4-byte magic (little-endian).
  bytes[4] = static_cast<std::uint8_t>(kSnapVersion + 1);
  refresh_crc(&bytes);  // valid CRC: the VERSION check must fire, not CRC
  CoSimulation cs(*fx.system, CoSimConfig{});
  try {
    restore(cs, bytes.data(), bytes.size());
    FAIL() << "version mismatch not rejected";
  } catch (const SnapError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(SnapReject, WrongMagic) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  std::vector<std::uint8_t> bytes = make_snapshot(fx);
  bytes[0] = 'Z';
  refresh_crc(&bytes);
  CoSimulation cs(*fx.system, CoSimConfig{});
  EXPECT_THROW(restore(cs, bytes.data(), bytes.size()), SnapError);
}

TEST(SnapReject, EmptyAndTinyFiles) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  CoSimulation cs(*fx.system, CoSimConfig{});
  std::vector<std::uint8_t> empty;
  EXPECT_THROW(restore(cs, empty.data(), empty.size()), SnapError);
  std::vector<std::uint8_t> tiny{'X', 'S', 'N', 'P', 1, 0};
  EXPECT_THROW(restore(cs, tiny.data(), tiny.size()), SnapError);
}

TEST(SnapReject, DigestMismatch) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  std::vector<std::uint8_t> bytes = make_snapshot(fx);
  // A different partition (Node2 in software) is a different MappedSystem:
  // same classes, different interface digest.
  marks::MarkSet other = ring_marks();
  marks::MarkSet reduced;
  for (int i = 0; i < 2; ++i) {
    std::string cls = "Node" + std::to_string(i);
    reduced.mark_hardware(cls);
    reduced.set_class_mark(cls, marks::kTileX,
                           ScalarValue(std::int64_t{i == 0 ? 1 : 0}));
    reduced.set_class_mark(cls, marks::kTileY,
                           ScalarValue(std::int64_t{i == 0 ? 0 : 1}));
  }
  reduced.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  reduced.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  MappedFixture fx2(make_ring_domain(), reduced);
  CoSimulation cs(*fx2.system, CoSimConfig{});
  try {
    restore(cs, bytes.data(), bytes.size());
    FAIL() << "digest mismatch not rejected";
  } catch (const SnapError& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
        << e.what();
  }
}

TEST(SnapInspect, HeaderWithoutACosim) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  const std::vector<std::uint8_t> bytes = make_snapshot(fx, 123);
  const SnapshotInfo info = inspect(bytes.data(), bytes.size());
  EXPECT_EQ(info.version, kSnapVersion);
  EXPECT_EQ(info.cycle, 123u);
  EXPECT_FALSE(info.has_fault_streams);
  EXPECT_FALSE(info.digest.empty());
}

// --- file helpers --------------------------------------------------------------

TEST(SnapFile, WriteReadRoundTrip) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  const std::vector<std::uint8_t> bytes = make_snapshot(fx);
  const std::string path = ::testing::TempDir() + "snap_roundtrip.xsnp";
  write_file(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  EXPECT_THROW(read_file(path + ".nonexistent"), SnapError);
}

// --- warm campaigns ------------------------------------------------------------

fault::FaultSpec warm_spec(std::uint64_t window_start) {
  fault::FaultSpec s;
  s.seed = 42;
  s.flit_drop = 0.02;
  s.flit_corrupt = 0.02;
  s.window_start = window_start;
  return s;
}

TEST(SnapWarm, WarmCampaignEqualsColdCampaign) {
  constexpr std::uint64_t kWarm = 200;
  constexpr std::uint64_t kRun = 300;
  constexpr int kRuns = 6;
  MappedFixture fx(make_ring_domain(), ring_marks());

  WarmCampaign warm(*fx.system, CoSimConfig{}, warm_spec(kWarm), kWarm, kRun,
                    [](CoSimulation& cs) { boot_ring(cs); });
  fault::CampaignResult warm_result = warm.run(kRuns, 1, nullptr);

  // Cold: per seed, full elaboration and straight run over the same span.
  fault::Campaign cold(warm_spec(kWarm), kRuns, 1);
  fault::CampaignResult cold_result = cold.run([&](int index, std::uint64_t) {
    fault::Plan plan(cold.spec_for(index));
    CoSimConfig cfg;
    cfg.fault = &plan;
    CoSimulation cs(*fx.system, cfg);
    boot_ring(cs);
    cs.run_cycles(kWarm + kRun);
    return cosim::outcome_of(cs, plan);
  });

  EXPECT_EQ(warm_result.to_snapshot().to_json(2),
            cold_result.to_snapshot().to_json(2));
  // The workload must be noisy enough that equality is meaningful.
  std::uint64_t injected = 0;
  for (const auto& r : cold_result.runs) injected += r.injected;
  EXPECT_GT(injected, 0u);
}

TEST(SnapWarm, RejectsWindowBeforeCheckpoint) {
  MappedFixture fx(make_ring_domain(), ring_marks());
  // window_start 50 < warm 200: streams would be consulted pre-checkpoint.
  EXPECT_THROW(WarmCampaign(*fx.system, CoSimConfig{}, warm_spec(50), 200,
                            300, [](CoSimulation& cs) { boot_ring(cs); }),
               SnapError);
}

}  // namespace
}  // namespace xtsoc::snap
