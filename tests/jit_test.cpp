// xtsoc::jit — AOT-compiled actions must be observably indistinguishable
// from the bytecode VM: identical traces, identical final databases,
// identical error text. And every failure of the jit pipeline (no
// compiler, unwritable cache, stale cached object) must degrade to the VM
// with a reported reason, never crash.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/hwsim/vcd.hpp"
#include "xtsoc/jit/jit.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::runtime {
namespace {

namespace fs = std::filesystem;

using xtuml::DataType;
using xtuml::Domain;
using xtuml::DomainBuilder;
using xtuml::Multiplicity;

/// Shared cache directory for the whole test binary: repeated runs warm
/// it, which also exercises the cache-hit path.
std::string test_cache_dir() {
  static const std::string dir = [] {
    std::error_code ec;
    fs::path p = fs::temp_directory_path(ec);
    if (ec) p = "/tmp";
    p /= "xtsoc-jit-gtest";
    fs::create_directories(p, ec);
    return p.string();
  }();
  return dir;
}

/// Same two-class harness as engines_test, run through a jitted module or
/// the bytecode VM for byte-comparison.
struct JitRun {
  std::unique_ptr<Domain> domain;
  std::unique_ptr<oal::CompiledDomain> compiled;
  jit::JitResult jitted;
  std::unique_ptr<Executor> exec;
  InstanceHandle probe;

  JitRun(const std::string& snippet, ActionEngine engine, std::int64_t n = 0) {
    DomainBuilder b("H");
    b.cls("Peer", "PEER")
        .attr("tag", DataType::kInt)
        .event("poke")
        .state("P0")
        .state("P1", "self.tag = self.tag + 100;")
        .transition("P0", "poke", "P1");
    b.cls("Probe", "PRB")
        .attr("i", DataType::kInt)
        .attr("r", DataType::kReal)
        .attr("s", DataType::kString)
        .attr("flag", DataType::kBool)
        .ref_attr("ref", "Peer")
        .event("go", {{"n", DataType::kInt}})
        .state("S0")
        .state("S1", snippet)
        .transition("S0", "go", "S1");
    b.assoc("R1", "Probe", "uses", Multiplicity::kZeroMany, "Peer", "used_by",
            Multiplicity::kZeroMany);
    domain = b.take();
    DiagnosticSink sink;
    compiled = oal::compile_domain(*domain, sink);
    if (!compiled) throw std::runtime_error(sink.to_string());
    ExecutorConfig cfg;
    cfg.engine = engine;
    if (engine == ActionEngine::kJit) {
      jit::JitOptions opts;
      opts.cache_dir = test_cache_dir();
      jitted = jit::compile(*compiled, opts);
      if (jitted.module == nullptr) {
        throw std::runtime_error("jit unavailable: " + jitted.reason);
      }
      if (jitted.skipped_actions != 0) {
        throw std::runtime_error("jit skipped actions");
      }
      cfg.compiled = jitted.module.get();
    }
    exec = std::make_unique<Executor>(*compiled, cfg);
    probe = exec->create("Probe");
    exec->inject(probe, "go", {Value(n)});
    exec->run_all();
  }

  std::string trace() const { return exec->trace().to_string(); }
};

class JitParity : public ::testing::TestWithParam<const char*> {};

TEST_P(JitParity, TracesIdentical) {
  const char* snippet = GetParam();
  JitRun vm(snippet, ActionEngine::kBytecode, 6);
  JitRun jit(snippet, ActionEngine::kJit, 6);
  EXPECT_EQ(vm.trace(), jit.trace()) << "snippet:\n" << snippet;
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, JitParity,
    ::testing::Values(
        "self.i = 2 + 3 * 4 - 1;",
        "self.r = 1.5 * param.n;",
        "self.r = 7;",  // widening on real attr
        "x = 2.0;\nx = 3;\nself.r = x;",  // widening on real local
        "self.s = \"a\" + \"b\" + \"c\";",
        "self.flag = 1 < 2 and not (3 == 4) or false;",
        "self.flag = false and (1 / 0 == 1);",  // short circuit
        "self.flag = true or (1 / 0 == 1);",
        "self.i = param.n % 4;",
        "self.r = param.n / 4;",
        "self.flag = \"abc\" < \"abd\";",
        "self.flag = 2 == 2.0;",
        "if (param.n > 3)\n  self.i = 1;\nelif (param.n > 1)\n"
        "  self.i = 2;\nelse\n  self.i = 3;\nend if;",
        "k = 0;\nwhile (k < 10)\n  k = k + 1;\n  if (k == 4)\n"
        "    continue;\n  end if;\n  if (k > 7)\n    break;\n  end if;\n"
        "  self.i = self.i + k;\nend while;",
        "self.i = 1;\nreturn;\nself.i = 2;",
        "create object instance p of Peer;\np.tag = 9;\n"
        "relate self to p across R1;\n"
        "select one q related by self->Peer[R1];\nself.i = q.tag;",
        "create object instance p of Peer;\np.tag = 9;\n"
        "relate self to p across R1;\nunrelate self from p across R1;\n"
        "select one q related by self->Peer[R1];\nself.flag = empty q;",
        "create object instance a of Peer;\ncreate object instance b of "
        "Peer;\na.tag = 2;\nb.tag = 5;\n"
        "select many big from instances of Peer where (selected.tag > 3);\n"
        "self.i = cardinality big;",
        "create object instance a of Peer;\n"
        "select any p from instances of Peer;\n"
        "self.flag = not_empty p;\ndelete object instance p;\n"
        "select any q from instances of Peer;\nself.flag = empty q;",
        "k = 0;\nwhile (k < 4)\n  create object instance p of Peer;\n"
        "  p.tag = k;\n  k = k + 1;\nend while;\n"
        "select many all from instances of Peer;\n"
        "t = 0;\nfor each p in all\n  if (p.tag == 2)\n    continue;\n"
        "  end if;\n  t = t + p.tag;\nend for;\nself.i = t;",
        "create object instance p of Peer;\nself.ref = p;\n"
        "generate poke() to self.ref;\nlog \"sent\", 1;",
        "log \"vals\", 1, 2.5, true, \"txt\";",
        "generate go(n: param.n - 1) to self delay 3;",
        // mem.* lowers to the o->mem_read/mem_write host hooks; with no
        // hierarchy attached both engines hit the same flat fallback.
        "mem.write(3, 40);\nmem.write(3, 2);\n"
        "self.i = mem.read(3) + mem.read(99);",
        "k = 0;\nwhile (k < 4)\n  mem.write(k * 8, k * param.n);\n"
        "  k = k + 1;\nend while;\nt = 0;\nk = 0;\nwhile (k < 4)\n"
        "  t = t + mem.read(k * 8);\n  k = k + 1;\nend while;\nself.i = t;"));

TEST(JitParity, ErrorTextIdentical) {
  for (const char* snippet :
       {"self.i = 1 / (param.n - 6);",  // div by zero at n=6
        "self.i = 1 % (param.n - 6);",
        "self.i = self.ref.tag;",           // null deref
        "generate poke() to self.ref;",     // generate to null
        "generate poke() to self.ref delay 0 - 1;"}) {
    std::string vm_what = "(vm: no throw)";
    std::string jit_what = "(jit: no throw)";
    try {
      JitRun(snippet, ActionEngine::kBytecode, 6);
    } catch (const std::exception& e) {
      vm_what = e.what();
    }
    try {
      JitRun(snippet, ActionEngine::kJit, 6);
    } catch (const std::exception& e) {
      jit_what = e.what();
    }
    EXPECT_EQ(vm_what, jit_what) << snippet;
    EXPECT_NE(vm_what, "(vm: no throw)") << snippet;
  }
}

TEST(JitParity, OpLimitEnforced) {
  const char* spin = "while (true)\n  self.i = self.i + 1;\nend while;";
  DomainBuilder b("L");
  b.cls("A")
      .attr("i", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1", spin)
      .transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir();
  jit::JitResult jr = jit::compile(*cd, opts);
  ASSERT_NE(jr.module, nullptr) << jr.reason;
  ExecutorConfig cfg;
  cfg.engine = ActionEngine::kJit;
  cfg.compiled = jr.module.get();
  cfg.max_ops_per_action = 5000;
  Executor exec(*cd, cfg);
  auto h = exec.create("A");
  exec.inject(h, "go");
  EXPECT_THROW(exec.run_all(), ModelError);
}

TEST(JitParity, SelfDeleteHandled) {
  DomainBuilder b("D");
  b.cls("E")
      .event("die")
      .state("Alive")
      .state("Dying", "delete object instance self;")
      .transition("Alive", "die", "Dying");
  DiagnosticSink sink;
  auto cd = oal::compile_domain(b.domain(), sink);
  ASSERT_NE(cd, nullptr);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir();
  jit::JitResult jr = jit::compile(*cd, opts);
  ASSERT_NE(jr.module, nullptr) << jr.reason;
  ExecutorConfig cfg;
  cfg.engine = ActionEngine::kJit;
  cfg.compiled = jr.module.get();
  Executor exec(*cd, cfg);
  auto h = exec.create("E");
  exec.inject(h, "die");
  EXPECT_NO_THROW(exec.run_all());
  EXPECT_FALSE(exec.database().is_alive(h));
}

/// A minimal one-class domain for the failure-path tests.
std::unique_ptr<oal::CompiledDomain> tiny_domain(
    std::unique_ptr<Domain>* keep) {
  DomainBuilder b("T");
  b.cls("A")
      .attr("x", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1", "self.x = self.x + 1;")
      .transition("S0", "go", "S1");
  *keep = b.take();
  DiagnosticSink sink;
  auto cd = oal::compile_domain(**keep, sink);
  EXPECT_NE(cd, nullptr) << sink.to_string();
  return cd;
}

TEST(JitFallback, SecondCompileIsCacheHit) {
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir() + "/hit";
  jit::JitResult cold = jit::compile(*cd, opts);
  ASSERT_NE(cold.module, nullptr) << cold.reason;
  jit::JitResult warm = jit::compile(*cd, opts);
  ASSERT_NE(warm.module, nullptr) << warm.reason;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.digest, warm.digest);
  EXPECT_EQ(cold.so_path, warm.so_path);
}

TEST(JitFallback, UnwritableCacheDirReportsReason) {
  // A regular file where the cache dir should be defeats the jit even for
  // root (chmod-based unwritability is a no-op under CAP_DAC_OVERRIDE).
  const std::string blocker = test_cache_dir() + "/blocker-file";
  { std::ofstream out(blocker); out << "not a directory"; }
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  jit::JitOptions opts;
  opts.cache_dir = blocker;
  jit::JitResult res = jit::compile(*cd, opts);
  EXPECT_EQ(res.module, nullptr);
  EXPECT_FALSE(res.reason.empty());
}

TEST(JitFallback, MissingCompilerReportsReason) {
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir() + "/nocc";
  opts.compiler = "/nonexistent/xtsoc-no-such-compiler";
  jit::JitResult res = jit::compile(*cd, opts);
  EXPECT_EQ(res.module, nullptr);
  EXPECT_NE(res.reason.find("compile failed"), std::string::npos)
      << res.reason;
}

TEST(JitFallback, StaleCachedObjectRejectedNotRecompiled) {
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir() + "/stale";
  // This test corrupts its cache; start clean so re-runs see a fresh build.
  std::error_code ec;
  fs::remove_all(opts.cache_dir, ec);
  jit::JitResult good = jit::compile(*cd, opts);
  ASSERT_NE(good.module, nullptr) << good.reason;
  good.module.reset();  // release the dlopen handle before corrupting

  // Replace the cached object with one whose embedded digest differs:
  // compile a different domain and copy its .so over ours.
  DomainBuilder b2("U");
  b2.cls("B")
      .attr("y", DataType::kInt)
      .event("go")
      .state("S0")
      .state("S1", "self.y = self.y + 2;")
      .transition("S0", "go", "S1");
  DiagnosticSink sink;
  auto cd2 = oal::compile_domain(b2.domain(), sink);
  ASSERT_NE(cd2, nullptr);
  jit::JitResult other = jit::compile(*cd2, opts);
  ASSERT_NE(other.module, nullptr) << other.reason;
  other.module.reset();
  ASSERT_NE(other.so_path, good.so_path);
  fs::copy_file(other.so_path, good.so_path,
                fs::copy_options::overwrite_existing);

  jit::JitResult stale = jit::compile(*cd, opts);
  EXPECT_EQ(stale.module, nullptr);
  EXPECT_NE(stale.reason.find("digest mismatch"), std::string::npos)
      << stale.reason;
}

TEST(JitFallback, TruncatedCachedObjectRejected) {
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir() + "/trunc";
  std::error_code ec;
  fs::remove_all(opts.cache_dir, ec);
  jit::JitResult good = jit::compile(*cd, opts);
  ASSERT_NE(good.module, nullptr) << good.reason;
  good.module.reset();
  { std::ofstream out(good.so_path, std::ios::trunc); out << "garbage"; }
  jit::JitResult bad = jit::compile(*cd, opts);
  EXPECT_EQ(bad.module, nullptr);
  EXPECT_NE(bad.reason.find("cached object rejected"), std::string::npos)
      << bad.reason;
}

TEST(JitFallback, ExecutorFallsBackPerActionWhenModuleMissing) {
  // kJit with no compiled module behaves exactly like the bytecode VM.
  std::unique_ptr<Domain> dom;
  auto cd = tiny_domain(&dom);
  ExecutorConfig cfg;
  cfg.engine = ActionEngine::kJit;
  cfg.compiled = nullptr;
  Executor exec(*cd, cfg);
  auto h = exec.create("A");
  exec.inject(h, "go");
  EXPECT_NO_THROW(exec.run_all());
  EXPECT_EQ(as_int(exec.database().get_attr(h, AttributeId(0))), 1);
}

// --- cosim-level parity grid ---------------------------------------------------
//
// The tentpole contract: a jitted co-simulation is byte-identical to the
// bytecode VM in every observable — executor traces in both partitions,
// the VCD waveform, the cycle count and the full report() snapshot — at
// every (threads, window, faults) combination. The workload is the same
// self-sustaining 2x2-mesh ring snap_test uses: three hardware nodes
// ping-ponging forever, so there is cross-tile traffic in flight at every
// cycle and the fault injector has something to chew on.

std::unique_ptr<Domain> make_ring_domain() {
  using xtuml::ScalarValue;
  DomainBuilder b("Ring");
  constexpr int kNodes = 3;
  for (int i = 0; i < kNodes; ++i) b.cls("Node" + std::to_string(i));
  for (int i = 0; i < kNodes; ++i) {
    std::string peer = "Node" + std::to_string((i + 1) % kNodes);
    b.edit("Node" + std::to_string(i))
        .attr("acc", DataType::kInt)
        .attr("pings", DataType::kInt)
        .ref_attr("peer", peer)
        .event("tick")
        .event("ping", {{"v", DataType::kInt}})
        .state("Spin",
               "self.acc = (self.acc * 33 + 7) % 65537;\n"
               "if (self.acc % 8 == 0)\n"
               "  generate ping(v: self.acc) to self.peer;\n"
               "end if;\n"
               "generate tick() to self;")
        .state("Pinged",
               "self.pings = self.pings + param.v % 2;\n"
               "generate tick() to self;")
        .transition("Spin", "tick", "Spin")
        .transition("Spin", "ping", "Pinged")
        .transition("Pinged", "tick", "Spin")
        .transition("Pinged", "ping", "Pinged");
  }
  return b.take();
}

marks::MarkSet ring_marks() {
  using xtuml::ScalarValue;
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};  // sw owns (0,0)
  for (int i = 0; i < 3; ++i) {
    std::string cls = "Node" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

void boot_ring(cosim::CoSimulation& cs) {
  constexpr int kNodes = 3;
  std::vector<InstanceHandle> h;
  for (int i = 0; i < kNodes; ++i) {
    h.push_back(cs.create("Node" + std::to_string(i)));
  }
  for (int i = 0; i < kNodes; ++i) {
    // peer is the third declared attribute (acc, pings, peer).
    cs.executor_of(h[static_cast<std::size_t>(i)].cls)
        .database()
        .set_attr(h[static_cast<std::size_t>(i)], AttributeId(2),
                  Value(h[static_cast<std::size_t>((i + 1) % kNodes)]));
    cs.inject(h[static_cast<std::size_t>(i)], "tick");
  }
}

fault::FaultSpec noisy_spec() {
  fault::FaultSpec s;
  s.seed = 7;
  s.flit_drop = 0.05;
  s.flit_corrupt = 0.05;
  return s;
}

/// Everything observable about one ring run.
struct CosimObs {
  std::string hw_traces;
  std::string sw_trace;
  std::string vcd;
  std::string report;
  std::uint64_t cycles = 0;
};

CosimObs run_ring(const testing::MappedFixture& fx, ActionEngine engine,
                  const CompiledActions* compiled, int threads, int window,
                  bool faults) {
  cosim::CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;
  cfg.engine = engine;
  cfg.compiled = compiled;
  fault::Plan plan(noisy_spec());
  cfg.fault = faults ? &plan : nullptr;
  cosim::CoSimulation cs(*fx.system, cfg);
  boot_ring(cs);
  hwsim::VcdWriter vcd(cs.hw_sim());
  cs.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
  cs.run_cycles(300);
  CosimObs o;
  for (const auto& hw : cs.hw_domains()) {
    o.hw_traces += hw->executor().trace().to_string();
  }
  o.sw_trace = cs.sw_executor().trace().to_string();
  o.vcd = vcd.render();
  o.report = cs.report().to_json(2);
  o.cycles = cs.cycles();
  return o;
}

class EnginesJit
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(EnginesJit, ByteIdenticalToVm) {
  auto [threads, window, faults] = GetParam();
  testing::MappedFixture fx(make_ring_domain(), ring_marks());
  jit::JitOptions opts;
  opts.cache_dir = test_cache_dir();
  jit::JitResult jr = jit::compile(*fx.compiled, opts);
  ASSERT_NE(jr.module, nullptr) << jr.reason;
  EXPECT_EQ(jr.skipped_actions, 0);

  CosimObs vm = run_ring(fx, ActionEngine::kBytecode, nullptr, threads,
                         window, faults);
  CosimObs jat = run_ring(fx, ActionEngine::kJit, jr.module.get(), threads,
                          window, faults);
  const std::string tag = "threads=" + std::to_string(threads) +
                          " window=" + std::to_string(window) +
                          " faults=" + std::to_string(faults);
  EXPECT_EQ(vm.hw_traces, jat.hw_traces) << tag;
  EXPECT_EQ(vm.sw_trace, jat.sw_trace) << tag;
  EXPECT_EQ(vm.vcd, jat.vcd) << tag;
  EXPECT_EQ(vm.report, jat.report) << tag;
  EXPECT_EQ(vm.cycles, jat.cycles) << tag;
}

// threads 1/2/8 x window 0 (auto = L) / 1 (lockstep) / 4 (clamped to L) x
// faults off/on.
INSTANTIATE_TEST_SUITE_P(Grid, EnginesJit,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(0, 1, 4),
                                            ::testing::Bool()));

TEST(EnginesJit, ReportSurfacesEngineSection) {
  // The "engines" section appears exactly when the caller records a
  // request, and carries the fallback reason when the jit was unavailable.
  testing::MappedFixture fx(make_ring_domain(), ring_marks());
  {
    cosim::CoSimConfig cfg;
    cosim::CoSimulation cs(*fx.system, cfg);
    EXPECT_EQ(cs.report().to_json(2).find("engines"), std::string::npos);
  }
  {
    cosim::CoSimConfig cfg;
    cfg.engine_status.requested = "jit";
    cfg.engine_status.active = "vm";
    cfg.engine_status.fallback_reason = "compile failed (cc, status 1)";
    cosim::CoSimulation cs(*fx.system, cfg);
    const std::string rep = cs.report().to_json(2);
    EXPECT_NE(rep.find("\"engines\""), std::string::npos);
    EXPECT_NE(rep.find("\"requested\": \"jit\""), std::string::npos);
    EXPECT_NE(rep.find("\"active\": \"vm\""), std::string::npos);
    EXPECT_NE(rep.find("compile failed"), std::string::npos);
  }
}

}  // namespace
}  // namespace xtsoc::runtime
