// xtsoc::fault — deterministic fault injection, resilient transport, and
// the campaign runner.
//
// The contracts under test, in order:
//   * marks::validate rejects out-of-range fault marks (rates are
//     probabilities; seed/window are non-negative);
//   * fault::Plan draws are reproducible from one seed and site-independent
//     (traffic on one link never perturbs another link's stream);
//   * a zero-rate plan attached to a co-simulation leaves every observable
//     byte identical to a run with no plan at all (the disabled path);
//   * with faults armed, the run stays byte-identical across every
//     (threads x window) configuration — fault injection rides the same
//     determinism contract as the parallel kernel;
//   * CRC catches every corrupted flit (nothing tainted is ever delivered),
//     and an exhausted retry budget reports loss instead of hanging;
//   * the bus and the bridge degrade the same way: bounded retries, then a
//     counted drop;
//   * a campaign produces the identical snapshot at every thread count.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "test_models.hpp"
#include "xtsoc/bridge/bridge.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/hwsim/vcd.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::fault {
namespace {

using cosim::CoSimConfig;
using cosim::CoSimulation;
using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

// --- marks validation ----------------------------------------------------------

marks::MarkSet domain_fault_marks(double drop, double corrupt, double down,
                                  double bus, std::int64_t seed = 1,
                                  std::int64_t window = 0) {
  marks::MarkSet m;
  m.set_domain_mark(marks::kFaultSeed, ScalarValue(seed));
  m.set_domain_mark(marks::kFaultWindow, ScalarValue(window));
  m.set_domain_mark(marks::kFaultRateFlitDrop, ScalarValue(drop));
  m.set_domain_mark(marks::kFaultRateFlitCorrupt, ScalarValue(corrupt));
  m.set_domain_mark(marks::kFaultRateLinkDown, ScalarValue(down));
  m.set_domain_mark(marks::kFaultRateBusError, ScalarValue(bus));
  return m;
}

TEST(FaultMarks, ValidateAcceptsInRangeKeys) {
  auto domain = make_pipeline_domain();
  DiagnosticSink sink;
  EXPECT_TRUE(domain_fault_marks(0.5, 0.0, 1.0, 0.25, 42, 100)
                  .validate(*domain, sink))
      << sink.to_string();
}

TEST(FaultMarks, ValidateRejectsOutOfRangeRates) {
  auto domain = make_pipeline_domain();
  {
    DiagnosticSink sink;
    EXPECT_FALSE(domain_fault_marks(1.5, 0, 0, 0).validate(*domain, sink));
    EXPECT_NE(sink.to_string().find("probability"), std::string::npos)
        << sink.to_string();
  }
  {
    DiagnosticSink sink;
    EXPECT_FALSE(domain_fault_marks(0, -0.1, 0, 0).validate(*domain, sink));
  }
  {
    DiagnosticSink sink;
    marks::MarkSet m;
    m.set_domain_mark(marks::kFaultRateBusError, ScalarValue("high"));
    EXPECT_FALSE(m.validate(*domain, sink));  // rates are numbers
  }
}

TEST(FaultMarks, ValidateRejectsNegativeSeedAndWindow) {
  auto domain = make_pipeline_domain();
  {
    DiagnosticSink sink;
    EXPECT_FALSE(domain_fault_marks(0, 0, 0, 0, -1).validate(*domain, sink));
  }
  {
    DiagnosticSink sink;
    EXPECT_FALSE(domain_fault_marks(0, 0, 0, 0, 1, -5)
                     .validate(*domain, sink));
  }
}

TEST(FaultMarks, FromMarksReadsKeysAndDefaults) {
  FaultSpec def = FaultSpec::from_marks(marks::MarkSet{});
  EXPECT_EQ(def.seed, 1u);
  EXPECT_EQ(def.window, 0u);
  EXPECT_FALSE(def.any());

  FaultSpec s =
      FaultSpec::from_marks(domain_fault_marks(0.25, 0.5, 0.125, 1.0, 9, 64));
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.window, 64u);
  EXPECT_DOUBLE_EQ(s.flit_drop, 0.25);
  EXPECT_DOUBLE_EQ(s.flit_corrupt, 0.5);
  EXPECT_DOUBLE_EQ(s.link_down, 0.125);
  EXPECT_DOUBLE_EQ(s.bus_error, 1.0);
  EXPECT_TRUE(s.any());
}

// --- the plan ------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameDraws) {
  FaultSpec s;
  s.seed = 123;
  s.flit_drop = 0.5;
  Plan a(s), b(s);
  for (std::uint64_t c = 1; c <= 200; ++c) {
    EXPECT_EQ(a.flit_drop(3, c), b.flit_drop(3, c)) << "cycle " << c;
  }
}

TEST(FaultPlan, SitesAreIndependentStreams) {
  FaultSpec s;
  s.seed = 7;
  s.flit_drop = 0.5;
  // Plan `a` draws on sites 0 and 1 interleaved; plan `b` only on site 1.
  // Site 1's sequence must be unaffected by site 0's traffic.
  Plan a(s), b(s);
  std::vector<bool> seq_a, seq_b;
  for (std::uint64_t c = 1; c <= 100; ++c) {
    a.flit_drop(0, c);
    seq_a.push_back(a.flit_drop(1, c));
    seq_b.push_back(b.flit_drop(1, c));
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultPlan, RateBoundsAndWindow) {
  FaultSpec zero;
  zero.flit_drop = 0.0;
  Plan z(zero);
  FaultSpec one;
  one.flit_drop = 1.0;
  Plan o(one);
  FaultSpec windowed;
  windowed.flit_drop = 1.0;
  windowed.window = 10;
  Plan w(windowed);
  for (std::uint64_t c = 1; c <= 50; ++c) {
    EXPECT_FALSE(z.flit_drop(0, c));
    EXPECT_TRUE(o.flit_drop(0, c));
    EXPECT_EQ(w.flit_drop(0, c), c <= 10);
  }
}

TEST(FaultPlan, Crc32MatchesKnownVector) {
  // The standard IEEE 802.3 check value for "123456789".
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg, sizeof(msg)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// --- co-simulation fixtures ----------------------------------------------------

/// The fanout workload from cosim_test: a software boss fanning jobs to
/// three hardware workers on separate tiles of a 2x2 mesh — every job and
/// every ack crosses the NoC, so fault sites see real traffic.
std::unique_ptr<xtuml::Domain> make_fanout_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Fan");
  b.cls("Boss", "BSS");
  for (int i = 0; i < 3; ++i) b.cls("W" + std::to_string(i));
  auto boss = b.edit("Boss");
  boss.attr("acks", DataType::kInt)
      .ref_attr("w0", "W0")
      .ref_attr("w1", "W1")
      .ref_attr("w2", "W2")
      .event("go")
      .event("done", {{"v", DataType::kInt}})
      .state("Idle")
      .state("Fanning",
             "generate job(n: 1, who: self) to self.w0;\n"
             "generate job(n: 2, who: self) to self.w1;\n"
             "generate job(n: 3, who: self) to self.w2;")
      .transition("Idle", "go", "Fanning")
      .transition("Fanning", "go", "Fanning");
  boss.state("Collect", "self.acks = self.acks + 1;")
      .transition("Fanning", "done", "Collect")
      .transition("Collect", "done", "Collect")
      .transition("Collect", "go", "Fanning");
  for (int i = 0; i < 3; ++i) {
    b.edit("W" + std::to_string(i))
        .attr("sum", DataType::kInt)
        .event("job", {{"n", DataType::kInt}, b.ref_param("who", "Boss")})
        .state("Work",
               "self.sum = self.sum + param.n;\n"
               "generate done(v: param.n) to param.who;")
        .transition("Work", "job", "Work");
  }
  return b.take();
}

marks::MarkSet fanout_mesh_marks() {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};  // sw owns (0,0)
  for (int i = 0; i < 3; ++i) {
    std::string cls = "W" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

/// Everything observable about one run, for byte-for-byte comparison.
struct RunRecord {
  std::string hw_traces;
  std::string sw_trace;
  std::string vcd;
  std::uint64_t cycles = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  noc::FabricFaultStats fstats;
};

/// Drive the fanout workload for a fixed cycle count (run_cycles is exact
/// at every threads/window configuration; run() is not) and record it.
RunRecord run_fanout(Plan* plan, int threads, int window,
                     std::uint64_t total_cycles = 600) {
  MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
  CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;
  cfg.fault = plan;
  CoSimulation cosim(*fx.system, cfg);
  auto w0 = cosim.create("W0");
  auto w1 = cosim.create("W1");
  auto w2 = cosim.create("W2");
  auto boss = cosim.create_with(
      "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
  hwsim::VcdWriter vcd(cosim.hw_sim());
  cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
  // Three kicks separated by fixed chunks, so retransmissions overlap new
  // traffic; the chunk sizes are deliberately not window multiples.
  for (int i = 0; i < 3; ++i) {
    cosim.inject(boss, "go");
    cosim.run_cycles(97);
  }
  cosim.run_cycles(total_cycles - 3 * 97);

  RunRecord r;
  for (const auto& hw : cosim.hw_domains()) {
    r.hw_traces += hw->executor().trace().to_string();
  }
  r.sw_trace = cosim.sw_executor().trace().to_string();
  r.vcd = vcd.render();
  r.cycles = cosim.cycles();
  r.frames_sent = cosim.fabric().stats().frames_sent;
  r.frames_delivered = cosim.fabric().stats().frames_delivered;
  r.fstats = cosim.fabric().fault_stats();
  return r;
}

void expect_identical(const RunRecord& a, const RunRecord& b,
                      const std::string& what) {
  EXPECT_EQ(a.hw_traces, b.hw_traces) << what;
  EXPECT_EQ(a.sw_trace, b.sw_trace) << what;
  EXPECT_EQ(a.vcd, b.vcd) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.frames_sent, b.frames_sent) << what;
  EXPECT_EQ(a.frames_delivered, b.frames_delivered) << what;
  EXPECT_EQ(a.fstats.flits_dropped, b.fstats.flits_dropped) << what;
  EXPECT_EQ(a.fstats.flits_corrupted, b.fstats.flits_corrupted) << what;
  EXPECT_EQ(a.fstats.link_down_events, b.fstats.link_down_events) << what;
  EXPECT_EQ(a.fstats.crc_rejects, b.fstats.crc_rejects) << what;
  EXPECT_EQ(a.fstats.retransmissions, b.fstats.retransmissions) << what;
  EXPECT_EQ(a.fstats.frames_lost, b.fstats.frames_lost) << what;
}

// --- disabled path -------------------------------------------------------------

TEST(FaultCosim, ZeroRatePlanIsByteIdenticalToNoPlan) {
  FaultSpec zero;  // all rates 0: the plan is attached but injects nothing
  Plan plan(zero);
  RunRecord without = run_fanout(nullptr, 1, 0);
  RunRecord with = run_fanout(&plan, 1, 0);
  expect_identical(without, with, "zero-rate plan vs no plan");
  EXPECT_EQ(with.fstats.retransmissions, 0u);
  EXPECT_EQ(with.fstats.acks_delivered, 0u);  // transport never armed
}

// --- determinism under faults --------------------------------------------------

FaultSpec noisy_spec() {
  FaultSpec s;
  s.seed = 7;
  s.flit_drop = 0.05;
  s.flit_corrupt = 0.05;
  s.link_down = 0.01;
  return s;
}

TEST(FaultCosim, FaultsAreByteIdenticalAcrossThreadsAndWindows) {
  Plan base_plan(noisy_spec());
  RunRecord base = run_fanout(&base_plan, 1, 1);
  // Faults must actually fire for this test to mean anything.
  EXPECT_GT(base.fstats.flits_dropped + base.fstats.flits_corrupted +
                base.fstats.link_down_events,
            0u);
  for (int threads : {1, 2, 8}) {
    for (int window : {1, 0}) {
      if (threads == 1 && window == 1) continue;
      Plan plan(noisy_spec());
      RunRecord r = run_fanout(&plan, threads, window);
      expect_identical(base, r,
                       "threads=" + std::to_string(threads) +
                           " window=" + std::to_string(window));
    }
  }
}

// --- resilience ----------------------------------------------------------------

TEST(FaultCosim, CrcCatchesEveryCorruptedFlit) {
  FaultSpec s;
  s.seed = 11;
  s.flit_corrupt = 0.3;
  Plan plan(s);
  RunRecord r = run_fanout(&plan, 1, 0);
  EXPECT_GT(r.fstats.flits_corrupted, 0u);
  EXPECT_GT(r.fstats.crc_rejects, 0u);
  // The resilience claim: corruption is injected, detected, and NEVER
  // reaches a delivered frame.
  EXPECT_EQ(r.fstats.tainted_delivered, 0u);
  // Rejected frames were retransmitted and the workload still completed.
  EXPECT_GT(r.fstats.retransmissions, 0u);
  EXPECT_GT(r.frames_delivered, 0u);
}

TEST(FaultCosim, ExhaustedRetryBudgetReportsLossNotAHang) {
  FaultSpec s;
  s.seed = 3;
  s.flit_drop = 1.0;  // every flit dies; no frame can ever arrive
  s.retry_budget = 2;
  Plan plan(s);
  // A long fixed run: every frame must resolve to a reported loss within
  // it (deadlines double per attempt but the budget is 2).
  RunRecord r = run_fanout(&plan, 1, 0, 3000);
  EXPECT_EQ(r.frames_delivered, 0u);
  EXPECT_GT(r.frames_sent, 0u);
  EXPECT_EQ(r.fstats.frames_lost, r.frames_sent);
  EXPECT_GT(r.fstats.flits_dropped, 0u);
}

TEST(FaultCosim, BusErrorsRetryThenDrop) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  MappedFixture fx(make_pipeline_domain(), std::move(m));

  FaultSpec s;
  s.seed = 21;
  s.bus_error = 0.5;
  Plan plan(s);
  CoSimConfig cfg;
  cfg.fault = &plan;
  CoSimulation cosim(*fx.system, cfg);
  auto consumer = cosim.create("Consumer");
  auto producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  for (int i = 0; i < 20; ++i) {
    cosim.inject(producer, "kick");
    cosim.run_cycles(40);
  }
  const cosim::BusFaultStats& f = cosim.bus().fault_stats();
  EXPECT_GT(f.errors, 0u);
  EXPECT_GT(f.retries, 0u);
  // A transfer only drops after the budget; the first few errors always
  // retry, so retries trail errors by exactly the drops' final attempts.
  EXPECT_LE(f.frames_dropped * 1u, f.errors);
  // And the pipeline still moved traffic.
  EXPECT_GT(cosim.bus().stats().frames_to_hw, 0u);
}

TEST(FaultCosim, ReportCarriesFaultSection) {
  Plan plan(noisy_spec());
  MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
  CoSimConfig cfg;
  cfg.fault = &plan;
  CoSimulation cosim(*fx.system, cfg);
  cosim.run_cycles(64);
  obs::Snapshot snap = cosim.report();
  EXPECT_EQ(snap.at("faults").at("seed").as_uint(), 7u);
  EXPECT_NE(snap.at("faults").find("noc"), nullptr);

  // Without a plan the section must not exist at all.
  CoSimulation plain(*fx.system, {});
  plain.run_cycles(64);
  EXPECT_EQ(plain.report().find("faults"), nullptr);
}

// --- the bridge ----------------------------------------------------------------

std::unique_ptr<xtuml::Domain> make_ping_domain() {
  xtuml::DomainBuilder b("Ping");
  b.cls("PongProxy").event("ping", {{"n", xtuml::DataType::kInt}});
  b.cls("Pinger")
      .attr("sent", xtuml::DataType::kInt)
      .ref_attr("out", "PongProxy")
      .event("go", {{"n", xtuml::DataType::kInt}})
      .state("Run",
             "self.sent = self.sent + 1;\n"
             "generate ping(n: param.n) to self.out;")
      .transition("Run", "go", "Run");
  return b.take();
}

std::unique_ptr<xtuml::Domain> make_pong_domain() {
  xtuml::DomainBuilder b("Pong");
  b.cls("Ponger")
      .attr("got", xtuml::DataType::kInt)
      .event("hit", {{"n", xtuml::DataType::kInt}})
      .state("Count", "self.got = self.got + 1;")
      .transition("Count", "hit", "Count");
  return b.take();
}

struct BridgedPair {
  std::unique_ptr<xtuml::Domain> ping_d = make_ping_domain();
  std::unique_ptr<xtuml::Domain> pong_d = make_pong_domain();
  std::unique_ptr<oal::CompiledDomain> ping, pong;
  bridge::SystemDef def;

  BridgedPair() {
    DiagnosticSink sink;
    ping = oal::compile_domain(*ping_d, sink);
    pong = oal::compile_domain(*pong_d, sink);
    if (!ping || !pong) throw std::runtime_error(sink.to_string());
    def.add_domain(*ping);
    def.add_domain(*pong);
    def.add_wire({"Ping", "PongProxy", "ping", "Pong", "Ponger", "hit"});
  }
};

TEST(FaultBridge, CertainFailureDropsAfterBudgetWithoutWedging) {
  BridgedPair sys;
  FaultSpec s;
  s.bus_error = 1.0;  // every carry attempt fails
  s.retry_budget = 3;
  Plan plan(s);
  bridge::SystemExecutor exec(sys.def, {}, &plan);
  auto proxy = exec.domain("Ping").create("PongProxy");
  auto pinger =
      exec.domain("Ping").create_with("Pinger", {{"out", Value(proxy)}});
  auto ponger = exec.domain("Pong").create("Ponger");
  exec.bind(proxy, "Ping", ponger, "Pong");

  exec.domain("Ping").inject(pinger, "go", {Value(std::int64_t{1})});
  exec.run_all();  // must terminate despite the 100% carry failure rate
  EXPECT_EQ(exec.forwarded_count(), 1u);
  EXPECT_EQ(exec.dropped_forward_count(), 1u);
  EXPECT_EQ(exec.retried_forward_count(), 3u);  // = the budget
}

TEST(FaultBridge, IntermittentFailureRetriesThenDelivers) {
  BridgedPair sys;
  FaultSpec s;
  s.seed = 5;
  s.bus_error = 0.5;
  s.retry_budget = 16;  // generous: loss odds at 0.5^17 are negligible
  Plan plan(s);
  bridge::SystemExecutor exec(sys.def, {}, &plan);
  auto proxy = exec.domain("Ping").create("PongProxy");
  auto pinger =
      exec.domain("Ping").create_with("Pinger", {{"out", Value(proxy)}});
  auto ponger = exec.domain("Pong").create("Ponger");
  exec.bind(proxy, "Ping", ponger, "Pong");

  for (int i = 0; i < 10; ++i) {
    exec.domain("Ping").inject(pinger, "go", {Value(std::int64_t{i})});
  }
  exec.run_all();
  EXPECT_EQ(exec.forwarded_count(), 10u);
  EXPECT_EQ(exec.dropped_forward_count(), 0u);
  EXPECT_GT(exec.retried_forward_count(), 0u);

  const auto* got = sys.pong->domain().find_class("Ponger")
                        ->find_attribute("got");
  EXPECT_EQ(std::get<std::int64_t>(
                exec.domain("Pong").database().get_attr(ponger, got->id)),
            10);
}

// --- campaigns -----------------------------------------------------------------

TEST(FaultCampaign, SeedDerivationIsStableAndDistinct) {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < 16; ++i) {
    seeds.push_back(Campaign::seed_for(42, i));
    EXPECT_NE(seeds.back(), 0u);
    EXPECT_EQ(seeds.back(), Campaign::seed_for(42, i));  // stable
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());

  FaultSpec base;
  base.seed = 42;
  base.flit_drop = 0.25;
  Campaign c(base, 4, 1);
  EXPECT_EQ(c.spec_for(2).seed, Campaign::seed_for(42, 2));
  EXPECT_DOUBLE_EQ(c.spec_for(2).flit_drop, 0.25);  // rates carry over
}

TEST(FaultCampaign, SnapshotIsByteIdenticalAtEveryThreadCount) {
  FaultSpec base;
  base.seed = 42;
  base.flit_drop = 0.02;
  base.flit_corrupt = 0.02;

  auto one_run = [&](int index, std::uint64_t) {
    Plan plan(Campaign(base, 8, 1).spec_for(index));
    MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
    CoSimConfig cfg;
    cfg.fault = &plan;
    CoSimulation cosim(*fx.system, cfg);
    auto w0 = cosim.create("W0");
    auto w1 = cosim.create("W1");
    auto w2 = cosim.create("W2");
    auto boss = cosim.create_with(
        "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
    cosim.inject(boss, "go");
    cosim.run_cycles(400);
    return cosim::outcome_of(cosim, plan);
  };

  std::string serial;
  for (int threads : {1, 2, 8}) {
    Campaign campaign(base, 8, threads);
    CampaignResult result = campaign.run(one_run);
    ASSERT_EQ(result.runs.size(), 8u);
    std::string doc = result.to_snapshot().to_json(2);
    if (threads == 1) {
      serial = doc;
      // At these rates the transport absorbs everything.
      EXPECT_EQ(result.survivors(), 8u) << doc;
    } else {
      EXPECT_EQ(doc, serial) << "threads=" << threads;
    }
  }
}

TEST(FaultCampaign, RunErrorsPropagate) {
  FaultSpec base;
  Campaign campaign(base, 4, 2);
  EXPECT_THROW(
      campaign.run([](int index, std::uint64_t) -> RunOutcome {
        if (index == 2) throw std::runtime_error("run exploded");
        return {};
      }),
      std::runtime_error);
}

}  // namespace
}  // namespace xtsoc::fault
