#include <gtest/gtest.h>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/common/ids.hpp"
#include "xtsoc/common/rng.hpp"
#include "xtsoc/common/strings.hpp"

namespace xtsoc {
namespace {

TEST(Ids, DefaultIsInvalid) {
  ClassId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, ClassId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  ClassId id(7);
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ClassId, StateId>);
  static_assert(!std::is_same_v<EventId, AttributeId>);
}

TEST(Ids, Ordering) {
  EXPECT_LT(ClassId(1), ClassId(2));
  EXPECT_FALSE(ClassId(2) < ClassId(2));
}

TEST(Ids, Hashable) {
  std::hash<ClassId> h;
  EXPECT_EQ(h(ClassId(5)), h(ClassId(5)));
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticSink sink;
  sink.warning("w", "warning");
  sink.note("n", "note");
  EXPECT_FALSE(sink.has_errors());
  sink.error("e", "error");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.all().size(), 3u);
}

TEST(Diagnostics, ToStringIncludesLocAndCode) {
  Diagnostic d{Severity::kError, {3, 14}, "x.y", "boom"};
  std::string s = d.to_string();
  EXPECT_NE(s.find("3:14"), std::string::npos);
  EXPECT_NE(s.find("x.y"), std::string::npos);
  EXPECT_NE(s.find("boom"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticSink sink;
  sink.error("e", "err");
  sink.clear();
  EXPECT_FALSE(sink.has_errors());
  EXPECT_TRUE(sink.all().empty());
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSinglePiece) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc"));
  EXPECT_TRUE(is_identifier("_a1"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1ab"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Strings, SnakeCase) {
  EXPECT_EQ(to_snake_case("CamelCase"), "camel_case");
  EXPECT_EQ(to_snake_case("already_snake"), "already_snake");
  EXPECT_EQ(to_snake_case("HTTPServer"), "httpserver");
  EXPECT_EQ(to_upper_snake("PacketFilter"), "PACKET_FILTER");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, Indent) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

TEST(Strings, CountLines) {
  EXPECT_EQ(count_lines(""), 0u);
  EXPECT_EQ(count_lines("a"), 1u);
  EXPECT_EQ(count_lines("a\n"), 1u);
  EXPECT_EQ(count_lines("a\nb"), 2u);
  EXPECT_EQ(count_lines("a\nb\n"), 2u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace xtsoc
