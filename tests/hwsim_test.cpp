#include <gtest/gtest.h>

#include <algorithm>

#include "xtsoc/hwsim/components.hpp"
#include "xtsoc/hwsim/kernel.hpp"
#include "xtsoc/hwsim/vcd.hpp"

namespace xtsoc::hwsim {
namespace {

TEST(Kernel, WireWidthMasking) {
  Simulator sim;
  HwSignalId w = sim.wire(4, 0xff);
  EXPECT_EQ(sim.read(w), 0xfu);  // init masked to width
  sim.poke(w, 0x12);
  EXPECT_EQ(sim.read(w), 0x2u);
  EXPECT_EQ(sim.width_of(w), 4);
}

TEST(Kernel, BadWidthRejected) {
  Simulator sim;
  EXPECT_THROW(sim.wire(0), SimError);
  EXPECT_THROW(sim.wire(65), SimError);
  EXPECT_NO_THROW(sim.wire(64));
}

TEST(Kernel, InvalidWireIdRejected) {
  Simulator sim;
  EXPECT_THROW(sim.read(HwSignalId(5)), SimError);
  EXPECT_THROW(sim.read(HwSignalId::invalid()), SimError);
}

TEST(Kernel, CombinationalPropagation) {
  // c = a AND b as a combinational process.
  Simulator sim;
  HwSignalId a = sim.wire(1);
  HwSignalId b = sim.wire(1);
  HwSignalId c = sim.wire(1);
  sim.combinational({a, b}, [a, b, c](Simulator& s) {
    s.nba_write(c, s.read(a) & s.read(b));
  });
  sim.settle();
  EXPECT_EQ(sim.read(c), 0u);
  sim.poke(a, 1);
  sim.poke(b, 1);
  sim.settle();
  EXPECT_EQ(sim.read(c), 1u);
  sim.poke(b, 0);
  sim.settle();
  EXPECT_EQ(sim.read(c), 0u);
}

TEST(Kernel, CombinationalChainSettlesAcrossDeltas) {
  // y = not x; z = not y  — two deltas to propagate.
  Simulator sim;
  HwSignalId x = sim.wire(1);
  HwSignalId y = sim.wire(1);
  HwSignalId z = sim.wire(1);
  sim.combinational({x}, [x, y](Simulator& s) { s.nba_write(y, !s.read(x)); });
  sim.combinational({y}, [y, z](Simulator& s) { s.nba_write(z, !s.read(y)); });
  sim.settle();
  EXPECT_EQ(sim.read(y), 1u);
  EXPECT_EQ(sim.read(z), 0u);
  sim.poke(x, 1);
  sim.settle();
  EXPECT_EQ(sim.read(y), 0u);
  EXPECT_EQ(sim.read(z), 1u);
}

TEST(Kernel, OscillatingLoopDetected) {
  // x = not x oscillates forever; the kernel must detect it.
  Simulator sim;
  HwSignalId x = sim.wire(1);
  sim.combinational({x}, [x](Simulator& s) { s.nba_write(x, !s.read(x)); });
  EXPECT_THROW(sim.settle(), SimError);
}

TEST(Kernel, ClockTogglesAndCountsPosedges) {
  Simulator sim;
  HwSignalId clk = sim.wire(1, 0, "clk");
  sim.add_clock(clk, 5);
  sim.advance(5);  // toggle to 1 (posedge #1)
  EXPECT_EQ(sim.read(clk), 1u);
  EXPECT_EQ(sim.posedge_count(clk), 1u);
  sim.advance(5);  // toggle to 0
  EXPECT_EQ(sim.read(clk), 0u);
  EXPECT_EQ(sim.posedge_count(clk), 1u);
  sim.advance(10);  // full period: posedge #2
  EXPECT_EQ(sim.posedge_count(clk), 2u);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Kernel, ZeroHalfPeriodRejected) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  EXPECT_THROW(sim.add_clock(clk, 0), SimError);
}

TEST(Kernel, ClockedProcessRunsOncePerEdge) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  int runs = 0;
  sim.on_posedge(clk, [&runs](Simulator&) { ++runs; });
  sim.run_cycles(clk, 7);
  EXPECT_EQ(runs, 7);
}

TEST(Kernel, NbaWriteNotVisibleUntilCommit) {
  // A clocked swap: a <=> b works because reads happen before commits.
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  HwSignalId a = sim.wire(8, 1);
  HwSignalId b = sim.wire(8, 2);
  sim.on_posedge(clk, [a, b](Simulator& s) {
    s.nba_write(a, s.read(b));
    s.nba_write(b, s.read(a));
  });
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(a), 2u);
  EXPECT_EQ(sim.read(b), 1u);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(a), 1u);
  EXPECT_EQ(sim.read(b), 2u);
}

TEST(Kernel, StatsAccumulate) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Counter ctr(sim, clk, 8);
  sim.run_cycles(clk, 3);
  EXPECT_GT(sim.stats().delta_cycles, 0u);
  EXPECT_GT(sim.stats().process_activations, 0u);
  EXPECT_GT(sim.stats().wire_commits, 0u);
}

TEST(Components, RegisterLatchesOnEdge) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Register reg(sim, clk, 8);
  sim.poke(reg.d(), 42);
  EXPECT_EQ(sim.read(reg.q()), 0u);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(reg.q()), 42u);
}

TEST(Components, RegisterEnableGates) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Register reg(sim, clk, 8);
  sim.poke(reg.d(), 7);
  sim.poke(reg.en(), 0);
  sim.run_cycles(clk, 3);
  EXPECT_EQ(sim.read(reg.q()), 0u);
  sim.poke(reg.en(), 1);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(reg.q()), 7u);
}

TEST(Components, CounterCountsAndClears) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Counter ctr(sim, clk, 8);
  sim.run_cycles(clk, 5);
  EXPECT_EQ(sim.read(ctr.value()), 5u);
  sim.poke(ctr.clear(), 1);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(ctr.value()), 0u);
  sim.poke(ctr.clear(), 0);
  sim.poke(ctr.enable(), 0);
  sim.run_cycles(clk, 3);
  EXPECT_EQ(sim.read(ctr.value()), 0u);
}

TEST(Components, CounterWraps) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Counter ctr(sim, clk, 2);  // wraps at 4
  sim.run_cycles(clk, 5);
  EXPECT_EQ(sim.read(ctr.value()), 1u);
}

TEST(Components, FifoPushPop) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  SyncFifo fifo(sim, clk, 4);

  // Push two words.
  sim.poke(fifo.in_valid(), 1);
  sim.poke(fifo.in_data(), 11);
  sim.run_cycles(clk, 1);
  sim.poke(fifo.in_data(), 22);
  sim.run_cycles(clk, 1);
  sim.poke(fifo.in_valid(), 0);
  EXPECT_EQ(fifo.size(), 2u);

  // First word presented.
  EXPECT_EQ(sim.read(fifo.out_valid()), 1u);
  EXPECT_EQ(sim.read(fifo.out_data()), 11u);

  // Consume both.
  sim.poke(fifo.out_ready(), 1);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(fifo.out_data()), 22u);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(fifo.out_valid()), 0u);
  EXPECT_EQ(fifo.size(), 0u);
}

TEST(Components, FifoBackpressureWhenFull) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  SyncFifo fifo(sim, clk, 2);
  sim.poke(fifo.in_valid(), 1);
  sim.poke(fifo.in_data(), 1);
  sim.run_cycles(clk, 1);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(sim.read(fifo.in_ready()), 0u);  // full
  // Further pushes rejected while full.
  sim.run_cycles(clk, 1);
  EXPECT_EQ(fifo.size(), 2u);
}

TEST(Components, ArbiterGrantsOneAtATime) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  RoundRobinArbiter arb(sim, clk, 3);

  // Nothing requested: idle marker (index == 3).
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(arb.grant_index()), 3u);

  sim.poke(arb.request(1), 1);
  sim.run_cycles(clk, 1);
  EXPECT_EQ(sim.read(arb.grant_index()), 1u);
  EXPECT_EQ(sim.read(arb.grant(1)), 1u);
  EXPECT_EQ(sim.read(arb.grant(0)), 0u);
  EXPECT_EQ(sim.read(arb.grant(2)), 0u);
}

TEST(Components, ArbiterRotatesFairly) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  RoundRobinArbiter arb(sim, clk, 3);
  for (int i = 0; i < 3; ++i) sim.poke(arb.request(i), 1);

  std::vector<std::uint64_t> order;
  for (int c = 0; c < 6; ++c) {
    sim.run_cycles(clk, 1);
    order.push_back(sim.read(arb.grant_index()));
  }
  // All requesters held high: strict rotation, each granted twice in 6.
  for (std::uint64_t idx : {0u, 1u, 2u}) {
    EXPECT_EQ(std::count(order.begin(), order.end(), idx), 2) << idx;
  }
  // No immediate repeat (rotation moves on while others still request).
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_NE(order[i], order[i - 1]);
  }
}

TEST(Components, ArbiterSkipsIdleRequesters) {
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  RoundRobinArbiter arb(sim, clk, 4);
  sim.poke(arb.request(0), 1);
  sim.poke(arb.request(3), 1);
  std::vector<std::uint64_t> order;
  for (int c = 0; c < 4; ++c) {
    sim.run_cycles(clk, 1);
    order.push_back(sim.read(arb.grant_index()));
  }
  for (std::uint64_t idx : order) {
    EXPECT_TRUE(idx == 0 || idx == 3) << idx;
  }
  EXPECT_EQ(std::count(order.begin(), order.end(), 0u), 2);
  EXPECT_EQ(std::count(order.begin(), order.end(), 3u), 2);
}

// Property sweep: a counter after N cycles reads N (mod 2^width).
class CounterSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CounterSweep, ValueMatchesCycleCount) {
  auto [width, cycles] = GetParam();
  Simulator sim;
  HwSignalId clk = sim.wire(1);
  sim.add_clock(clk, 1);
  Counter ctr(sim, clk, width);
  sim.run_cycles(clk, cycles);
  std::uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  EXPECT_EQ(sim.read(ctr.value()), cycles & mask);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndLengths, CounterSweep,
    ::testing::Combine(::testing::Values(1, 4, 8, 16),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{10},
                                         std::uint64_t{100})));

// --- parallel-kernel determinism ---------------------------------------------
//
// The contract of SimConfig::threads: ANY thread count is byte-identical to
// the serial kernel — same wire values, same SimStats, same VCD text, same
// oscillation behaviour. These tests run one workload at threads = 1/2/8
// and diff everything observable.

/// Everything observable from one run of the dense netlist.
struct DeterminismRun {
  std::vector<std::uint64_t> finals;
  SimStats stats;
  std::string vcd;
  std::uint64_t posedges = 0;
};

/// A dense mixed netlist: a counter bank, a combinational XOR-reduction
/// tree over it (multi-delta settle chains), registered feedback, and two
/// clocked processes racing writes to one shared wire (the last-write-wins
/// order the deterministic commit must reproduce).
DeterminismRun run_dense_netlist(int threads) {
  Simulator sim(SimConfig{threads});
  HwSignalId clk = sim.wire(1, 0, "clk");
  sim.add_clock(clk, 1);

  constexpr int kCounters = 8;
  std::vector<Counter> bank;
  bank.reserve(kCounters);
  std::vector<HwSignalId> wires;
  for (int i = 0; i < kCounters; ++i) {
    bank.emplace_back(sim, clk, 16, "ctr" + std::to_string(i));
    wires.push_back(bank.back().value());
  }

  // XOR-reduction tree: log2(kCounters) combinational layers.
  std::vector<HwSignalId> layer = wires;
  int level = 0;
  while (layer.size() > 1) {
    std::vector<HwSignalId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      HwSignalId out = sim.wire(16, 0,
                                "xor" + std::to_string(level) + "_" +
                                    std::to_string(i / 2));
      HwSignalId a = layer[i];
      HwSignalId b = layer[i + 1];
      sim.combinational({a, b}, [a, b, out](Simulator& s) {
        s.nba_write(out, s.read(a) ^ s.read(b));
      });
      next.push_back(out);
      wires.push_back(out);
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = next;
    ++level;
  }
  HwSignalId root = layer.front();

  // Registered feedback from the tree root.
  HwSignalId accum = sim.wire(32, 0, "accum");
  sim.on_posedge(clk, [root, accum](Simulator& s) {
    s.nba_write(accum, (s.read(accum) * 33 + s.read(root)) & 0xffffffffu);
  });
  wires.push_back(accum);

  // Two clocked processes write the same wire every edge: the serial
  // kernel applies them in registration order (last registered wins).
  HwSignalId contested = sim.wire(16, 0, "contested");
  sim.on_posedge(clk, [accum, contested](Simulator& s) {
    s.nba_write(contested, (s.read(accum) + 1) & 0xffffu);
  });
  sim.on_posedge(clk, [accum, contested](Simulator& s) {
    s.nba_write(contested, (s.read(accum) + 2) & 0xffffu);
  });
  wires.push_back(contested);

  VcdWriter vcd(sim);
  DeterminismRun run;
  for (int c = 0; c < 50; ++c) {
    sim.run_cycles(clk, 1);
    vcd.sample();
  }
  for (HwSignalId w : wires) run.finals.push_back(sim.read(w));
  run.stats = sim.stats();
  run.vcd = vcd.render();
  run.posedges = sim.posedge_count(clk);
  return run;
}

TEST(KernelParallel, DenseNetlistByteIdenticalAcrossThreadCounts) {
  DeterminismRun serial = run_dense_netlist(1);
  // The contested wire proves last-write-wins survived: the second
  // registered process's value (+2) is the one latched.
  ASSERT_GT(serial.finals.size(), 2u);
  for (int threads : {2, 8}) {
    DeterminismRun par = run_dense_netlist(threads);
    EXPECT_EQ(par.finals, serial.finals) << "threads=" << threads;
    EXPECT_EQ(par.stats.delta_cycles, serial.stats.delta_cycles)
        << "threads=" << threads;
    EXPECT_EQ(par.stats.process_activations,
              serial.stats.process_activations)
        << "threads=" << threads;
    EXPECT_EQ(par.stats.wire_commits, serial.stats.wire_commits)
        << "threads=" << threads;
    EXPECT_EQ(par.vcd, serial.vcd) << "threads=" << threads;
    EXPECT_EQ(par.posedges, serial.posedges) << "threads=" << threads;
  }
}

/// Oscillation behaviour of a 2-process combinational loop at `threads`.
struct OscillationRun {
  std::string error;
  std::uint64_t delta_cycles = 0;
};

OscillationRun run_oscillator(int threads) {
  Simulator sim(SimConfig{threads});
  HwSignalId a = sim.wire(1, 0, "a");
  HwSignalId b = sim.wire(1, 0, "b");
  // a = !b and b = !a: from (0,0) both flip forever, a batch of two
  // processes per delta — the parallel path stays exercised while the
  // guard counts up.
  sim.combinational({b}, [a, b](Simulator& s) { s.nba_write(a, !s.read(b)); });
  sim.combinational({a}, [a, b](Simulator& s) { s.nba_write(b, !s.read(a)); });
  OscillationRun run;
  try {
    sim.settle();
    ADD_FAILURE() << "oscillation not detected at threads=" << threads;
  } catch (const SimError& e) {
    run.error = e.what();
  }
  run.delta_cycles = sim.stats().delta_cycles;
  return run;
}

TEST(KernelParallel, OscillationGuardFiresIdenticallyAcrossThreadCounts) {
  OscillationRun serial = run_oscillator(1);
  EXPECT_FALSE(serial.error.empty());
  for (int threads : {2, 8}) {
    OscillationRun par = run_oscillator(threads);
    EXPECT_EQ(par.error, serial.error) << "threads=" << threads;
    EXPECT_EQ(par.delta_cycles, serial.delta_cycles)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace xtsoc::hwsim
