// xtsoc::obs — the observability layer.
//
// Two halves. The unit half covers the JSON machinery (JsonWriter,
// JsonValue) and the Registry (counters, tracks, spans, snapshot sections,
// Chrome trace export). The integration half runs real co-simulations and
// checks the layer's central contract: attaching a registry — even with
// tracing on — leaves every observable simulation byte (executor traces,
// VCD, cycle counts, SimStats) identical to a run with no registry, at
// every thread count and window size; and when enabled, the counters and
// spans describe the run truthfully.
#include <gtest/gtest.h>

#include <sstream>

#include "test_models.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/hwsim/vcd.hpp"
#include "xtsoc/obs/json.hpp"
#include "xtsoc/obs/registry.hpp"
#include "xtsoc/obs/snapshot.hpp"

namespace xtsoc::obs {
namespace {

// --- JsonWriter ---------------------------------------------------------------

TEST(JsonWriter, CompactObjectAndArray) {
  JsonWriter w;
  w.begin_object()
      .field("a", 1)
      .key("b")
      .begin_array()
      .value(true)
      .null()
      .value("x\"y")
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true,null,\"x\\\"y\"]}");
}

TEST(JsonWriter, PrettyPrinting) {
  JsonWriter w(/*indent=*/2);
  w.begin_object().field("a", 1).key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EscapesControlCharactersAndSpecials) {
  EXPECT_EQ(json_escape("say \"hi\"\nback\\slash"),
            "say \\\"hi\\\"\\nback\\\\slash");
  EXPECT_EQ(json_escape(std::string_view("\x01\t", 2)), "\\u0001\\t");
}

TEST(JsonWriter, NumberFormatting) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  // Non-finite values are not valid JSON; they degrade to null.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// --- JsonValue ----------------------------------------------------------------

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue v = JsonValue::object();
  v["zeta"] = 1;
  v["alpha"] = 2;
  v["zeta"] = 3;  // update in place, no reorder
  EXPECT_EQ(v.dump(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(JsonValue, NullPromotesToObjectOrArray) {
  JsonValue v;
  v["key"] = "value";  // null -> object
  EXPECT_TRUE(v.is_object());
  JsonValue a;
  a.push_back(1);  // null -> array
  a.push_back("two");
  EXPECT_TRUE(a.is_array());
  EXPECT_EQ(a.dump(), "[1,\"two\"]");
}

TEST(JsonValue, NestedDumpMatchesWriter) {
  JsonValue v = JsonValue::object();
  v["run"] = JsonValue::object();
  v["run"]["cycles"] = std::uint64_t{64};
  v["list"].push_back(JsonValue::object());
  EXPECT_EQ(v.dump(), "{\"run\":{\"cycles\":64},\"list\":[{}]}");
  EXPECT_EQ(v.at("run").at("cycles").as_uint(), 64u);
}

// --- Registry -----------------------------------------------------------------

TEST(Registry, CountersFindOrCreateWithStableAddresses) {
  Registry reg;
  Counter* a = reg.counter("x.total");
  Counter* again = reg.counter("x.total");
  EXPECT_EQ(a, again);
  a->add();
  a->add(41);
  Counter* b = reg.counter("a.first");
  b->add(7);
  auto all = reg.counters();
  ASSERT_EQ(all.size(), 2u);
  // Name-sorted, independent of creation order.
  EXPECT_EQ(all[0].first, "a.first");
  EXPECT_EQ(all[0].second, 7u);
  EXPECT_EQ(all[1].first, "x.total");
  EXPECT_EQ(all[1].second, 42u);
}

TEST(Registry, TracksFindOrCreate) {
  Registry reg;
  TrackId t1 = reg.track("kernel");
  TrackId t2 = reg.track("noc");
  EXPECT_TRUE(t1.is_valid());
  EXPECT_NE(t1.value, t2.value);
  EXPECT_EQ(reg.track("kernel").value, t1.value);
  EXPECT_EQ(reg.track_name(t2), "noc");
  EXPECT_EQ(reg.track_count(), 2u);
}

TEST(Registry, EventCapacityDropsAreCounted) {
  Registry reg;
  TrackId t = reg.track("t");
  reg.set_event_capacity(2);
  reg.record_span(t, "a", 0, 10);
  reg.record_span(t, "b", 10, 20);
  reg.record_span(t, "c", 20, 30);
  EXPECT_EQ(reg.event_count(), 2u);
  EXPECT_EQ(reg.dropped_events(), 1u);
}

TEST(Registry, ScopedSpanRecordsOnlyWhenTracing) {
  Registry reg;
  TrackId t = reg.track("t");
  {
    ScopedSpan off(&reg, t, "ignored");
    EXPECT_FALSE(off.active());
  }
  EXPECT_EQ(reg.event_count(), 0u);
  reg.enable_tracing();
  {
    ScopedSpan outer(&reg, t, "outer");
    EXPECT_TRUE(outer.active());
    ScopedSpan inner(&reg, t, "inner");
  }
  EXPECT_EQ(reg.event_count(), 2u);
  // Events are sorted by start time at export: outer opened first.
  std::string j = reg.chrome_trace();
  EXPECT_LT(j.find("\"name\":\"outer\""), j.find("\"name\":\"inner\""));
}

TEST(Registry, ChromeTraceNamesEveryTrackEvenWithoutEvents) {
  Registry reg;
  reg.track("busy");
  reg.track("idle");  // never receives an event
  reg.enable_tracing();
  reg.record_span(reg.track("busy"), "work", 1000, 2000, /*cycle=*/7);
  reg.record_instant(reg.track("busy"), "mark", 1500);
  reg.record_value(reg.track("busy"), "depth", 1500, 3.0);
  std::string j = reg.chrome_trace();
  EXPECT_NE(j.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"busy\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"idle\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"cycle\":7"), std::string::npos);
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  // Spans are microseconds in the viewer: 1000 ns = 1 us.
  EXPECT_NE(j.find("\"ts\":1,"), std::string::npos);
}

TEST(Registry, SnapshotAssemblesSectionsThenCounters) {
  Registry reg;
  reg.counter("hits")->add(3);
  reg.add_section("sim", [] {
    JsonValue v = JsonValue::object();
    v["delta_cycles"] = 12;
    return v;
  });
  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.at("sim").at("delta_cycles").as_int(), 12);
  EXPECT_EQ(snap.at("counters").at("hits").as_uint(), 3u);
  reg.remove_section("sim");
  EXPECT_EQ(reg.snapshot().find("sim"), nullptr);
}

}  // namespace
}  // namespace xtsoc::obs

// --- integration: obs attached to a real co-simulation --------------------------

namespace xtsoc::cosim {
namespace {

using runtime::InstanceHandle;
using runtime::Value;
using testing::MappedFixture;
using testing::make_pipeline_domain;
using xtuml::ScalarValue;

marks::MarkSet hw_consumer_marks(int bus_latency) {
  marks::MarkSet m;
  m.mark_hardware("Consumer");
  m.set_domain_mark(marks::kBusLatency,
                    ScalarValue(static_cast<std::int64_t>(bus_latency)));
  return m;
}

/// Software boss, three hardware workers on separate mesh tiles (the same
/// shape cosim_test.cpp uses): real NoC traffic for the noc track/counters.
std::unique_ptr<xtuml::Domain> make_fanout_domain() {
  using xtuml::DataType;
  xtuml::DomainBuilder b("Fan");
  b.cls("Boss", "BSS");
  for (int i = 0; i < 3; ++i) b.cls("W" + std::to_string(i));
  auto boss = b.edit("Boss");
  boss.attr("acks", DataType::kInt)
      .ref_attr("w0", "W0")
      .ref_attr("w1", "W1")
      .ref_attr("w2", "W2")
      .event("go")
      .event("done", {{"v", DataType::kInt}})
      .state("Idle")
      .state("Fanning",
             "generate job(n: 1, who: self) to self.w0;\n"
             "generate job(n: 2, who: self) to self.w1;\n"
             "generate job(n: 3, who: self) to self.w2;")
      .transition("Idle", "go", "Fanning")
      .transition("Fanning", "go", "Fanning");
  boss.state("Collect", "self.acks = self.acks + 1;")
      .transition("Fanning", "done", "Collect")
      .transition("Collect", "done", "Collect")
      .transition("Collect", "go", "Fanning");
  for (int i = 0; i < 3; ++i) {
    b.edit("W" + std::to_string(i))
        .attr("sum", DataType::kInt)
        .event("job", {{"n", DataType::kInt}, b.ref_param("who", "Boss")})
        .state("Work",
               "self.sum = self.sum + param.n;\n"
               "generate done(v: param.n) to param.who;")
        .transition("Work", "job", "Work");
  }
  return b.take();
}

marks::MarkSet fanout_mesh_marks() {
  marks::MarkSet m;
  const int tiles[3][2] = {{1, 0}, {0, 1}, {1, 1}};  // sw owns (0,0)
  for (int i = 0; i < 3; ++i) {
    std::string cls = "W" + std::to_string(i);
    m.mark_hardware(cls);
    m.set_class_mark(cls, marks::kTileX,
                     ScalarValue(std::int64_t{tiles[i][0]}));
    m.set_class_mark(cls, marks::kTileY,
                     ScalarValue(std::int64_t{tiles[i][1]}));
  }
  m.set_domain_mark(marks::kMeshWidth, ScalarValue(std::int64_t{2}));
  m.set_domain_mark(marks::kMeshHeight, ScalarValue(std::int64_t{2}));
  return m;
}

/// Every observable byte of one pipeline run.
struct ObservedRun {
  std::string hw_traces;
  std::string sw_trace;
  std::string vcd;
  std::uint64_t cycles = 0;
  hwsim::SimStats sim_stats;
  std::vector<std::int64_t> attrs;
};

ObservedRun run_pipeline(int threads, int window, obs::Registry* reg) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks(4));
  CoSimConfig cfg;
  cfg.threads = threads;
  cfg.window = window;
  cfg.obs = reg;
  CoSimulation cosim(*fx.system, cfg);
  auto consumer = cosim.create("Consumer");
  auto producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  hwsim::VcdWriter vcd(cosim.hw_sim());
  cosim.set_cycle_hook([&vcd](std::uint64_t) { vcd.sample(); });
  for (int i = 0; i < 4; ++i) {
    cosim.inject(producer, "kick", {}, static_cast<std::uint64_t>(i));
    cosim.run(2000);
  }
  ObservedRun r;
  for (const auto& hw : cosim.hw_domains()) {
    r.hw_traces += hw->executor().trace().to_string();
  }
  r.sw_trace = cosim.sw_executor().trace().to_string();
  r.vcd = vcd.render();
  r.cycles = cosim.cycles();
  r.sim_stats = cosim.hw_sim().stats();
  auto attr = [&](const InstanceHandle& h, const char* cls, const char* name) {
    const auto* a = fx.domain->find_class(cls)->find_attribute(name);
    return std::get<std::int64_t>(
        cosim.executor_of(h.cls).database().get_attr(h, a->id));
  };
  r.attrs = {attr(producer, "Producer", "sent"),
             attr(producer, "Producer", "acks"),
             attr(consumer, "Consumer", "total")};
  return r;
}

void expect_same(const ObservedRun& a, const ObservedRun& b,
                 const std::string& what) {
  EXPECT_EQ(a.hw_traces, b.hw_traces) << what;
  EXPECT_EQ(a.sw_trace, b.sw_trace) << what;
  EXPECT_EQ(a.vcd, b.vcd) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.sim_stats.delta_cycles, b.sim_stats.delta_cycles) << what;
  EXPECT_EQ(a.sim_stats.process_activations, b.sim_stats.process_activations)
      << what;
  EXPECT_EQ(a.sim_stats.wire_commits, b.sim_stats.wire_commits) << what;
  EXPECT_EQ(a.attrs, b.attrs) << what;
}

// The central contract: a registry — absent, attached, or attached with
// tracing on — never perturbs simulation output, at any thread count.
TEST(ObsCosim, RegistryNeverPerturbsSimulationAcrossThreadCounts) {
  ObservedRun baseline = run_pipeline(1, 0, nullptr);
  ASSERT_FALSE(baseline.hw_traces.empty());
  for (int threads : {1, 2, 8}) {
    ObservedRun bare = run_pipeline(threads, 0, nullptr);
    expect_same(bare, baseline, "no registry, threads=" + std::to_string(threads));

    obs::Registry quiet;
    ObservedRun counted = run_pipeline(threads, 0, &quiet);
    expect_same(counted, baseline,
                "registry attached, threads=" + std::to_string(threads));

    obs::Registry tracing;
    tracing.enable_tracing();
    ObservedRun traced = run_pipeline(threads, 0, &tracing);
    expect_same(traced, baseline,
                "tracing on, threads=" + std::to_string(threads));
    EXPECT_GT(tracing.event_count(), 0u);
  }
}

TEST(ObsCosim, RegistryNeverPerturbsSimulationAcrossWindowSizes) {
  // run() may pad up to window-1 idle cycles past quiescence, so different
  // window sizes are not comparable to each other — the contract under test
  // is registry vs no-registry at the SAME window size.
  for (int window : {1, 2, 4}) {
    ObservedRun baseline = run_pipeline(2, window, nullptr);
    obs::Registry reg;
    reg.enable_tracing();
    ObservedRun traced = run_pipeline(2, window, &reg);
    expect_same(traced, baseline, "window=" + std::to_string(window));
  }
}

TEST(ObsCosim, CounterTotalsMatchExecutorAndKernelStats) {
  obs::Registry reg;
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks(2));
  CoSimConfig cfg;
  cfg.obs = &reg;
  CoSimulation cosim(*fx.system, cfg);
  auto consumer = cosim.create("Consumer");
  auto producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  for (int i = 0; i < 3; ++i) {
    cosim.inject(producer, "kick");
    cosim.run(2000);
  }
  auto counters = reg.counters();
  auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(value("executor/sw.dispatches"),
            cosim.sw_executor().dispatch_count());
  EXPECT_EQ(value("executor/hw0.dispatches"),
            cosim.hw_executor().dispatch_count());
  EXPECT_EQ(value("kernel.delta_cycles"),
            cosim.hw_sim().stats().delta_cycles);
  EXPECT_EQ(value("kernel.process_activations"),
            cosim.hw_sim().stats().process_activations);
  // The pipeline crossed the boundary both ways.
  EXPECT_GT(value("executor/hw0.frames_in"), 0u);
  EXPECT_GT(value("executor/hw0.frames_out"), 0u);
  EXPECT_GT(value("executor/sw.frames_in"), 0u);
  EXPECT_GT(value("executor/sw.frames_out"), 0u);
}

TEST(ObsCosim, MeshRunProducesAllTracksAndNocCounters) {
  obs::Registry reg;
  reg.enable_tracing();
  MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
  CoSimConfig cfg;
  cfg.obs = &reg;
  CoSimulation cosim(*fx.system, cfg);
  auto w0 = cosim.create("W0");
  auto w1 = cosim.create("W1");
  auto w2 = cosim.create("W2");
  auto boss = cosim.create_with(
      "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
  cosim.inject(boss, "go");
  cosim.run(5000);

  // The acceptance shape: >= 4 distinct tracks, one per layer.
  std::string j = reg.chrome_trace();
  for (const char* track : {"cosim", "kernel", "noc", "executor/hw0",
                            "executor/hw1", "executor/hw2", "executor/sw"}) {
    EXPECT_NE(j.find("\"name\":\"" + std::string(track) + "\""),
              std::string::npos)
        << track;
  }
  EXPECT_GE(reg.track_count(), 4u);

  auto counters = reg.counters();
  auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  };
  const noc::FabricStats stats = cosim.fabric().stats();
  EXPECT_EQ(value("noc.frames_sent"), stats.frames_sent);
  EXPECT_EQ(value("noc.frames_delivered"), stats.frames_delivered);
  EXPECT_EQ(value("noc.flits_injected"), stats.flits_injected);
  EXPECT_GT(stats.frames_delivered, 0u);

  // Span nesting: per-cycle spans on the master track, kernel settles
  // inside them; both present in the exported trace.
  EXPECT_NE(j.find("\"name\":\"cycle\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"settle\""), std::string::npos);
}

TEST(ObsCosim, ReportCoversRunSimInterconnectAndDomains) {
  // Bus mode, no registry: report works without obs and omits counters.
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks(2));
  CoSimulation cosim(*fx.system, {});
  auto consumer = cosim.create("Consumer");
  auto producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  cosim.inject(producer, "kick");
  cosim.run(2000);

  obs::Snapshot snap = cosim.report();
  EXPECT_EQ(snap.at("run").at("cycles").as_uint(), cosim.cycles());
  EXPECT_EQ(snap.at("run").at("interconnect").as_string(), "bus");
  EXPECT_EQ(snap.at("sim").at("delta_cycles").as_uint(),
            cosim.hw_sim().stats().delta_cycles);
  EXPECT_EQ(snap.at("interconnect").at("kind").as_string(), "bus");
  EXPECT_GT(snap.at("interconnect").at("frames_to_hw").as_uint(), 0u);
  ASSERT_EQ(snap.at("domains").size(), 2u);  // hw0 + sw
  EXPECT_EQ(snap.at("domains").at(0).at("name").as_string(), "hw0");
  EXPECT_EQ(snap.at("domains").at(1).at("name").as_string(), "sw");
  EXPECT_EQ(snap.find("counters"), nullptr);

  // The document round-trips through the one JSON path.
  std::string doc = snap.to_json(2);
  EXPECT_NE(doc.find("\"run\": {"), std::string::npos);
  std::ostringstream os;
  snap.write(os);
  EXPECT_EQ(os.str().back(), '\n');
}

TEST(ObsCosim, ReportOnMeshIncludesFabricSectionAndCounters) {
  obs::Registry reg;
  MappedFixture fx(make_fanout_domain(), fanout_mesh_marks());
  CoSimConfig cfg;
  cfg.obs = &reg;
  CoSimulation cosim(*fx.system, cfg);
  auto w0 = cosim.create("W0");
  auto w1 = cosim.create("W1");
  auto w2 = cosim.create("W2");
  auto boss = cosim.create_with(
      "Boss", {{"w0", Value(w0)}, {"w1", Value(w1)}, {"w2", Value(w2)}});
  cosim.inject(boss, "go");
  cosim.run(5000);

  obs::Snapshot snap = cosim.report();
  EXPECT_EQ(snap.at("run").at("interconnect").as_string(), "noc");
  EXPECT_EQ(snap.at("interconnect").at("kind").as_string(), "noc");
  EXPECT_EQ(snap.at("interconnect").at("mesh").at("width").as_int(), 2);
  EXPECT_EQ(snap.at("interconnect").at("routers").size(), 4u);
  EXPECT_GT(snap.at("interconnect").at("frames_delivered").as_uint(), 0u);
  ASSERT_EQ(snap.at("domains").size(), 4u);  // hw0..hw2 + sw
  // Counters ride along because a registry is attached.
  EXPECT_GT(snap.at("counters").at("noc.frames_delivered").as_uint(), 0u);
}

TEST(ObsCosim, ReportAgreesWithComponentStats) {
  MappedFixture fx(make_pipeline_domain(), hw_consumer_marks(2));
  CoSimulation cosim(*fx.system, {});
  auto consumer = cosim.create("Consumer");
  auto producer = cosim.create_with("Producer", {{"sink", Value(consumer)}});
  cosim.inject(producer, "kick");
  cosim.run(2000);
  obs::Snapshot snap = cosim.report();
  EXPECT_EQ(snap.at("sim").at("delta_cycles").as_uint(),
            cosim.hw_sim().stats().delta_cycles);
  EXPECT_EQ(snap.at("interconnect").at("frames_to_hw").as_uint(),
            cosim.bus().stats().frames_to_hw);
}

}  // namespace
}  // namespace xtsoc::cosim
