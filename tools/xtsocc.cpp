// xtsocc — the xtsoc model compiler, as a command-line tool.
//
//   xtsocc MODEL.xtm [options]
//
//   -m, --marks FILE    marks file (sticky notes; default: no marks,
//                       everything maps to software)
//   -o, --out DIR       write generated sources under DIR (sw/ and hw/)
//       --c-only        generate only the software partition
//       --vhdl-only     generate only the hardware partition
//       --check         stop after compile + map (exit status reports
//                       model/marks validity)
//       --simulate FILE run a stimulus script against the abstract model
//                       (exit status reflects its expectations)
//       --on-cosim      run against the partitioned cosim. With --simulate
//                       the script drives it; without, a short bring-up run
//                       (64 cycles, no stimulus) exercises the partitioned
//                       system — useful with --obs-trace / --obs=snapshot
//       --threads N     cosim worker threads for --on-cosim (default 1 =
//                       serial; any N produces byte-identical results)
//       --window N      cosim execution window in cycles for --on-cosim:
//                       0 (default) = auto, the interconnect's full static
//                       lookahead; 1 forces per-cycle lockstep; values above
//                       the lookahead are clamped down (correctness bound)
//       --engine ENG    action engine for --on-cosim: vm (the bytecode
//                       reference) or jit (AOT-compile the model's actions
//                       to a native shared object; falls back to vm with a
//                       warning when unavailable). Engines are
//                       byte-identical by contract — jit only changes
//                       speed. See docs/PERF.md
//       --jit-cache DIR jit shared-object cache directory (default:
//                       ~/.cache/xtsoc/jit; requires --engine=jit)
//       --obs LIST      comma-separated observability sections to print
//                       (default: summary):
//                         summary   partition/interface summary
//                         noc       NoC statistics table (--on-cosim, mesh)
//                         snapshot  full cosim stats report as JSON
//                                   (--on-cosim; see docs/FORMAT.md)
//                         counters  obs counter totals (--on-cosim)
//                         none      print nothing (excludes all others)
//       --obs-trace FILE  record a Chrome trace-event / Perfetto JSON of
//                       the cosim run to FILE (--on-cosim; load in
//                       ui.perfetto.dev or chrome://tracing)
//       --faults FILE   marks file with fault keys (faultSeed, faultRate.*,
//                       faultWindow; may be the same file as -m). Attaches a
//                       deterministic fault plan to the cosim run
//                       (--on-cosim; see docs/FAULTS.md)
//       --campaign N    run an N-seed fault-injection campaign instead of a
//                       single run (requires --faults). Each run gets a seed
//                       derived from faultSeed; --threads fans runs out in
//                       parallel. Prints the campaign JSON document
//       --campaign-out FILE  write the campaign JSON to FILE instead of
//                       stdout (requires --campaign)
//       --checkpoint-out FILE  write a versioned snapshot of the finished
//                       cosim run to FILE (--on-cosim; docs/CHECKPOINT.md).
//                       Restoring it resumes byte-identically at any
//                       --threads/--window setting
//       --restore FILE  instead of starting from cycle 0, load the snapshot
//                       FILE into the freshly elaborated cosim and continue
//                       (--on-cosim; model + marks must match the save)
//       --run-cycles N  cycles to run for the --on-cosim bring-up / after
//                       --restore (default 64)
//       --connect SOCK  client mode: ship the model to the xtsocd daemon at
//                       AF_UNIX socket SOCK and run there (--campaign runs
//                       a server-side campaign; see docs/SERVER.md)
//       --warm-cycles N with --connect --campaign: ask the daemon to serve
//                       the campaign from a warm checkpoint taken after N
//                       cycles (resident across requests; 0 = cold runs)
//       --quiet         deprecated; use --obs=none or an --obs list
//                       without 'summary'
//   -h, --help          this text
//
// Exit status: 0 on success, 1 on invalid model/marks/usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "xtsoc/core/project.hpp"
#include "xtsoc/core/stimulus.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/jit/jit.hpp"
#include "xtsoc/marks/marks.hpp"
#include "xtsoc/obs/registry.hpp"
#include "xtsoc/obs/snapshot.hpp"
#include "xtsoc/snap/client.hpp"
#include "xtsoc/snap/snapshot.hpp"

namespace fs = std::filesystem;
using namespace xtsoc;

namespace {

struct Options {
  std::string model_path;
  std::string marks_path;
  std::string out_dir;
  bool c_only = false;
  bool vhdl_only = false;
  bool check_only = false;
  std::string simulate_path;
  bool on_cosim = false;
  int threads = 1;
  int window = 0;

  // --engine family. Empty engine means "not given": the cosim runs on its
  // built-in default and the report never grows an "engines" section.
  std::string engine;        ///< "", "vm" or "jit"
  std::string jit_cache_dir;  ///< --jit-cache override (empty = default)

  // --obs family, as parsed. Contradictions are diagnosed centrally in
  // validate_options(), not at parse time.
  bool obs_given = false;  ///< an explicit --obs LIST appeared
  bool obs_none = false;
  bool obs_summary = false;
  bool obs_noc = false;
  bool obs_snapshot = false;
  bool obs_counters = false;
  std::string obs_trace_path;

  // --faults / --campaign family (fault injection; docs/FAULTS.md).
  std::string faults_path;
  int campaign = 0;  ///< 0 = no campaign; N > 0 = N-seed campaign
  std::string campaign_out_path;

  // Checkpoint / daemon family (docs/CHECKPOINT.md, docs/SERVER.md).
  std::string checkpoint_out_path;
  std::string restore_path;
  std::uint64_t run_cycles = 64;
  bool saw_run_cycles_flag = false;
  std::string connect_path;
  std::uint64_t warm_cycles = 0;
  bool saw_warm_cycles_flag = false;

  // Recorded separately so diagnostics can name the flag the user actually
  // typed (--quiet is the one surviving deprecated alias).
  bool saw_quiet_flag = false;
  bool saw_threads_flag = false;
  bool saw_window_flag = false;

  // Effective settings, derived by validate_options().
  bool print_summary = true;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: xtsocc MODEL.xtm [-m MARKS] [-o OUTDIR] [--c-only] "
               "[--vhdl-only] [--check] [--obs LIST] [--simulate FILE] "
               "[--on-cosim [--threads N] [--window N] "
               "[--engine vm|jit [--jit-cache DIR]] [--obs-trace FILE] "
               "[--faults FILE [--campaign N [--campaign-out FILE]]]\n"
               "              [--checkpoint-out FILE] [--restore FILE] "
               "[--run-cycles N]]\n"
               "       xtsocc MODEL.xtm --connect SOCK [--run-cycles N] "
               "[--faults FILE --campaign N [--warm-cycles N]]\n"
               "       --obs sections: summary,noc,snapshot,counters,none "
               "(default: summary)\n");
}

void deprecated(const char* old_flag, const char* instead) {
  std::fprintf(stderr, "xtsocc: warning: %s is deprecated; use %s\n", old_flag,
               instead);
}

bool parse_obs_list(const std::string& list, Options* opt) {
  std::size_t pos = 0;
  opt->obs_given = true;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string tok = list.substr(pos, comma - pos);
    if (tok == "summary") {
      opt->obs_summary = true;
    } else if (tok == "noc") {
      opt->obs_noc = true;
    } else if (tok == "snapshot") {
      opt->obs_snapshot = true;
    } else if (tok == "counters") {
      opt->obs_counters = true;
    } else if (tok == "none") {
      opt->obs_none = true;
    } else {
      std::fprintf(stderr,
                   "xtsocc: unknown --obs section '%s' (expected "
                   "summary, noc, snapshot, counters or none)\n",
                   tok.c_str());
      return false;
    }
    pos = comma + 1;
  }
  return true;
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-h" || a == "--help") {
      usage(stdout);
      std::exit(0);
    } else if (a == "-m" || a == "--marks") {
      const char* v = next();
      if (!v) return false;
      opt->marks_path = v;
    } else if (a == "-o" || a == "--out") {
      const char* v = next();
      if (!v) return false;
      opt->out_dir = v;
    } else if (a == "--c-only") {
      opt->c_only = true;
    } else if (a == "--vhdl-only") {
      opt->vhdl_only = true;
    } else if (a == "--check") {
      opt->check_only = true;
    } else if (a == "--simulate") {
      const char* v = next();
      if (!v) return false;
      opt->simulate_path = v;
    } else if (a == "--on-cosim") {
      opt->on_cosim = true;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      opt->threads = std::atoi(v);
      opt->saw_threads_flag = true;
      if (opt->threads < 1) {
        std::fprintf(stderr, "xtsocc: --threads needs a positive integer\n");
        return false;
      }
    } else if (a == "--window") {
      const char* v = next();
      if (!v) return false;
      opt->window = std::atoi(v);
      opt->saw_window_flag = true;
      if (opt->window < 0) {
        std::fprintf(stderr, "xtsocc: --window needs a non-negative integer "
                             "(0 = auto)\n");
        return false;
      }
    } else if (a == "--engine" || a.rfind("--engine=", 0) == 0) {
      std::string v;
      if (a == "--engine") {
        const char* n = next();
        if (!n) return false;
        v = n;
      } else {
        v = a.substr(std::strlen("--engine="));
      }
      if (v != "vm" && v != "jit") {
        std::fprintf(stderr,
                     "xtsocc: unknown --engine '%s' (expected vm or jit)\n",
                     v.c_str());
        return false;
      }
      opt->engine = v;
    } else if (a == "--jit-cache" || a.rfind("--jit-cache=", 0) == 0) {
      if (a == "--jit-cache") {
        const char* v = next();
        if (!v) return false;
        opt->jit_cache_dir = v;
      } else {
        opt->jit_cache_dir = a.substr(std::strlen("--jit-cache="));
      }
      if (opt->jit_cache_dir.empty()) {
        std::fprintf(stderr, "xtsocc: --jit-cache needs a directory\n");
        return false;
      }
    } else if (a == "--obs" || a.rfind("--obs=", 0) == 0) {
      std::string list;
      if (a == "--obs") {
        const char* v = next();
        if (!v) return false;
        list = v;
      } else {
        list = a.substr(std::strlen("--obs="));
      }
      if (!parse_obs_list(list, opt)) return false;
    } else if (a == "--obs-trace" || a.rfind("--obs-trace=", 0) == 0) {
      if (a == "--obs-trace") {
        const char* v = next();
        if (!v) return false;
        opt->obs_trace_path = v;
      } else {
        opt->obs_trace_path = a.substr(std::strlen("--obs-trace="));
      }
      if (opt->obs_trace_path.empty()) {
        std::fprintf(stderr, "xtsocc: --obs-trace needs a file name\n");
        return false;
      }
    } else if (a == "--faults" || a.rfind("--faults=", 0) == 0) {
      if (a == "--faults") {
        const char* v = next();
        if (!v) return false;
        opt->faults_path = v;
      } else {
        opt->faults_path = a.substr(std::strlen("--faults="));
      }
      if (opt->faults_path.empty()) {
        std::fprintf(stderr, "xtsocc: --faults needs a file name\n");
        return false;
      }
    } else if (a == "--campaign" || a.rfind("--campaign=", 0) == 0) {
      std::string v;
      if (a == "--campaign") {
        const char* n = next();
        if (!n) return false;
        v = n;
      } else {
        v = a.substr(std::strlen("--campaign="));
      }
      opt->campaign = std::atoi(v.c_str());
      if (opt->campaign < 1) {
        std::fprintf(stderr, "xtsocc: --campaign needs a positive run count\n");
        return false;
      }
    } else if (a == "--campaign-out" || a.rfind("--campaign-out=", 0) == 0) {
      if (a == "--campaign-out") {
        const char* v = next();
        if (!v) return false;
        opt->campaign_out_path = v;
      } else {
        opt->campaign_out_path = a.substr(std::strlen("--campaign-out="));
      }
      if (opt->campaign_out_path.empty()) {
        std::fprintf(stderr, "xtsocc: --campaign-out needs a file name\n");
        return false;
      }
    } else if (a == "--checkpoint-out" || a.rfind("--checkpoint-out=", 0) == 0) {
      if (a == "--checkpoint-out") {
        const char* v = next();
        if (!v) return false;
        opt->checkpoint_out_path = v;
      } else {
        opt->checkpoint_out_path = a.substr(std::strlen("--checkpoint-out="));
      }
      if (opt->checkpoint_out_path.empty()) {
        std::fprintf(stderr, "xtsocc: --checkpoint-out needs a file name\n");
        return false;
      }
    } else if (a == "--restore" || a.rfind("--restore=", 0) == 0) {
      if (a == "--restore") {
        const char* v = next();
        if (!v) return false;
        opt->restore_path = v;
      } else {
        opt->restore_path = a.substr(std::strlen("--restore="));
      }
      if (opt->restore_path.empty()) {
        std::fprintf(stderr, "xtsocc: --restore needs a file name\n");
        return false;
      }
    } else if (a == "--run-cycles" || a.rfind("--run-cycles=", 0) == 0) {
      std::string v;
      if (a == "--run-cycles") {
        const char* n = next();
        if (!n) return false;
        v = n;
      } else {
        v = a.substr(std::strlen("--run-cycles="));
      }
      const long long n = std::atoll(v.c_str());
      if (n < 1) {
        std::fprintf(stderr, "xtsocc: --run-cycles needs a positive count\n");
        return false;
      }
      opt->run_cycles = static_cast<std::uint64_t>(n);
      opt->saw_run_cycles_flag = true;
    } else if (a == "--connect" || a.rfind("--connect=", 0) == 0) {
      if (a == "--connect") {
        const char* v = next();
        if (!v) return false;
        opt->connect_path = v;
      } else {
        opt->connect_path = a.substr(std::strlen("--connect="));
      }
      if (opt->connect_path.empty()) {
        std::fprintf(stderr, "xtsocc: --connect needs a socket path\n");
        return false;
      }
    } else if (a == "--warm-cycles" || a.rfind("--warm-cycles=", 0) == 0) {
      std::string v;
      if (a == "--warm-cycles") {
        const char* n = next();
        if (!n) return false;
        v = n;
      } else {
        v = a.substr(std::strlen("--warm-cycles="));
      }
      const long long n = std::atoll(v.c_str());
      if (n < 1) {
        std::fprintf(stderr, "xtsocc: --warm-cycles needs a positive count\n");
        return false;
      }
      opt->warm_cycles = static_cast<std::uint64_t>(n);
      opt->saw_warm_cycles_flag = true;
    } else if (a == "--quiet") {
      deprecated("--quiet", "--obs=none, or an --obs list without 'summary'");
      opt->saw_quiet_flag = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "xtsocc: unknown option '%s'\n", a.c_str());
      return false;
    } else if (opt->model_path.empty()) {
      opt->model_path = a;
    } else {
      std::fprintf(stderr, "xtsocc: extra argument '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// The one place flag combinations are checked. parse_args() only records
/// what was typed; every cross-flag rule (and the derived effective
/// settings) lives here, so contradictions get a diagnostic instead of a
/// silent last-one-wins.
bool validate_options(Options* opt) {
  auto fail = [](const char* msg) {
    std::fprintf(stderr, "xtsocc: %s\n", msg);
    return false;
  };

  if (opt->model_path.empty()) return fail("no model file given");
  if (opt->c_only && opt->vhdl_only) {
    return fail("--c-only and --vhdl-only are exclusive");
  }
  if (!opt->connect_path.empty()) {
    // Client mode: the model ships to xtsocd and every run executes there.
    // Local execution knobs are meaningless (or misleading) and rejected.
    if (opt->on_cosim) {
      return fail("--connect contradicts --on-cosim (the run executes on "
                  "the daemon; --on-cosim runs locally)");
    }
    if (!opt->simulate_path.empty()) {
      return fail("--connect contradicts --simulate (daemon runs are "
                  "stimulus-free; drive length with --run-cycles)");
    }
    if (opt->check_only) return fail("--connect contradicts --check");
    if (!opt->out_dir.empty()) {
      return fail("--connect contradicts -o (client mode does not generate "
                  "code)");
    }
    if (!opt->checkpoint_out_path.empty()) {
      return fail("--checkpoint-out contradicts --connect (warm checkpoints "
                  "stay resident on the daemon)");
    }
    if (!opt->restore_path.empty()) {
      return fail("--restore contradicts --connect");
    }
    if (!opt->obs_trace_path.empty()) {
      return fail("--obs-trace contradicts --connect");
    }
    if (opt->saw_threads_flag) {
      return fail("--threads contradicts --connect (the daemon owns the "
                  "worker pool; see xtsocd --threads)");
    }
    if (opt->saw_window_flag) return fail("--window contradicts --connect");
    if (!opt->engine.empty()) {
      return fail("--engine contradicts --connect (the daemon picks its own "
                  "engine)");
    }
    if (!opt->jit_cache_dir.empty()) {
      return fail("--jit-cache contradicts --connect");
    }
    if (opt->campaign > 0 && opt->faults_path.empty()) {
      return fail("--campaign requires --faults");
    }
    if (opt->saw_warm_cycles_flag && opt->campaign == 0) {
      return fail("--warm-cycles requires --campaign (warm checkpoints "
                  "serve campaign fan-out)");
    }
    opt->print_summary = false;
    return true;
  }
  if (opt->saw_warm_cycles_flag) {
    return fail("--warm-cycles requires --connect (local runs have no "
                "resident checkpoint cache; use --checkpoint-out/--restore)");
  }
  if (opt->check_only && !opt->simulate_path.empty()) {
    return fail("--check contradicts --simulate (--check stops after "
                "compile + map)");
  }
  if (opt->saw_quiet_flag && opt->obs_summary) {
    return fail("--quiet contradicts --obs=summary");
  }
  if (opt->obs_none && (opt->obs_summary || opt->obs_noc ||
                        opt->obs_snapshot || opt->obs_counters)) {
    return fail("--obs=none excludes every other --obs section");
  }
  if (!opt->on_cosim) {
    if (opt->obs_noc) return fail("--obs=noc requires --on-cosim");
    if (opt->obs_snapshot) return fail("--obs=snapshot requires --on-cosim");
    if (opt->obs_counters) return fail("--obs=counters requires --on-cosim");
    if (!opt->obs_trace_path.empty()) {
      return fail("--obs-trace requires --on-cosim");
    }
    if (opt->saw_threads_flag) return fail("--threads requires --on-cosim");
    if (opt->saw_window_flag) return fail("--window requires --on-cosim");
    if (!opt->engine.empty()) {
      return fail("--engine requires --on-cosim (the abstract simulator "
                  "always runs the reference engine)");
    }
    if (!opt->faults_path.empty()) {
      return fail("--faults requires --on-cosim (faults are injected into "
                  "the partitioned interconnect)");
    }
    if (opt->campaign > 0) return fail("--campaign requires --on-cosim");
    if (!opt->checkpoint_out_path.empty()) {
      return fail("--checkpoint-out requires --on-cosim (snapshots capture "
                  "the partitioned co-simulation)");
    }
    if (!opt->restore_path.empty()) {
      return fail("--restore requires --on-cosim");
    }
    if (opt->saw_run_cycles_flag) {
      return fail("--run-cycles requires --on-cosim");
    }
  }
  if (!opt->restore_path.empty() && !opt->simulate_path.empty()) {
    return fail("--restore contradicts --simulate (a restored run continues "
                "for --run-cycles; scripts start from cycle 0)");
  }
  if (opt->saw_run_cycles_flag && !opt->simulate_path.empty()) {
    return fail("--run-cycles contradicts --simulate (the script drives the "
                "run length)");
  }
  if (opt->campaign > 0 && opt->faults_path.empty()) {
    return fail("--campaign requires --faults (a campaign without a fault "
                "plan would be N identical fault-free runs)");
  }
  if (!opt->campaign_out_path.empty() && opt->campaign == 0) {
    return fail("--campaign-out requires --campaign");
  }
  if (!opt->jit_cache_dir.empty() && opt->engine != "jit") {
    return fail("--jit-cache requires --engine=jit");
  }
  if (opt->campaign > 0 && !opt->engine.empty()) {
    return fail("--engine contradicts --campaign (campaign rows always run "
                "the pinned reference engine)");
  }
  if (opt->campaign > 0) {
    // The per-run --obs surfaces describe ONE run; a campaign is many.
    // Its output is the campaign JSON document itself.
    if (!opt->obs_trace_path.empty()) {
      return fail("--obs-trace contradicts --campaign (a trace describes "
                  "one run; campaigns emit the campaign JSON instead)");
    }
    if (!opt->checkpoint_out_path.empty()) {
      return fail("--checkpoint-out contradicts --campaign (a snapshot "
                  "captures one run; campaigns elaborate per seed)");
    }
    if (!opt->restore_path.empty()) {
      return fail("--restore contradicts --campaign");
    }
    if (opt->obs_noc || opt->obs_snapshot || opt->obs_counters) {
      return fail("--obs sections other than summary/none contradict "
                  "--campaign (per-run reports vs. an N-run campaign)");
    }
  }

  // Effective summary setting: an explicit --obs list is authoritative;
  // otherwise the deprecated aliases adjust the on-by-default summary.
  if (opt->obs_none) {
    opt->print_summary = false;
  } else if (opt->obs_given) {
    opt->print_summary = opt->obs_summary;
  } else {
    opt->print_summary = !opt->saw_quiet_flag;
  }
  return true;
}

/// String field lookup with a fallback, for daemon responses.
std::string field_or(const obs::JsonValue& v, std::string_view key,
                     const std::string& fallback) {
  const obs::JsonValue* f = v.find(key);
  return (f != nullptr && f->is_string()) ? f->as_string() : fallback;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Print the requested --obs sections for a finished co-simulation.
void emit_obs_reports(const cosim::CoSimulation& cs, const Options& opt,
                      const obs::Registry* reg) {
  if (opt.obs_noc) {
    if (!cs.has_fabric()) {
      std::printf(
          "(no NoC: model has no tileX/tileY marks, legacy bus "
          "interconnect used)\n");
    } else {
      std::printf("%s", cs.fabric().stats().to_table().c_str());
    }
  }
  if (opt.obs_snapshot) {
    std::printf("%s\n", cs.report().to_json(2).c_str());
  }
  if (opt.obs_counters && reg != nullptr) {
    for (const auto& [name, value] : reg->counters()) {
      std::printf("%-40s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt) || !validate_options(&opt)) {
    usage(stderr);
    return 1;
  }

  std::string model_text;
  if (!read_file(opt.model_path, &model_text)) {
    std::fprintf(stderr, "xtsocc: cannot read model '%s'\n",
                 opt.model_path.c_str());
    return 1;
  }
  std::string marks_text;
  if (!opt.marks_path.empty() && !read_file(opt.marks_path, &marks_text)) {
    std::fprintf(stderr, "xtsocc: cannot read marks '%s'\n",
                 opt.marks_path.c_str());
    return 1;
  }

  if (!opt.connect_path.empty()) {
    // Client mode: ship the model to xtsocd and run there. The daemon does
    // the compile + elaborate (and keeps both resident for the next call).
    std::string err;
    auto client = snap::Client::connect(opt.connect_path, &err);
    if (!client) {
      std::fprintf(stderr, "xtsocc: %s\n", err.c_str());
      return 1;
    }
    const std::string name = fs::path(opt.model_path).stem().string();
    obs::JsonValue load = obs::JsonValue::object();
    load["op"] = "load";
    load["name"] = name;
    load["model"] = model_text;
    if (!marks_text.empty()) load["marks"] = marks_text;
    auto resp = client->request(load, &err);
    if (!resp.has_value()) {
      std::fprintf(stderr, "xtsocc: %s\n", err.c_str());
      return 1;
    }
    const obs::JsonValue* ok = resp->find("ok");
    if (ok == nullptr || !ok->as_bool()) {
      std::fprintf(stderr, "xtsocc: daemon: %s\n",
                   field_or(*resp, "error", "load rejected").c_str());
      return 1;
    }

    obs::JsonValue work = obs::JsonValue::object();
    if (opt.campaign > 0) {
      std::string faults_text;
      if (!read_file(opt.faults_path, &faults_text)) {
        std::fprintf(stderr, "xtsocc: cannot read faults '%s'\n",
                     opt.faults_path.c_str());
        return 1;
      }
      work["op"] = "campaign";
      work["model"] = name;
      work["faults"] = faults_text;
      work["runs"] = opt.campaign;
      if (opt.warm_cycles > 0) work["warm_cycles"] = opt.warm_cycles;
      work["run_cycles"] = opt.run_cycles > 64 ? opt.run_cycles
                                               : std::uint64_t{512};
      if (opt.saw_run_cycles_flag) work["run_cycles"] = opt.run_cycles;
    } else {
      work["op"] = "run";
      work["model"] = name;
      work["cycles"] = opt.run_cycles;
    }
    resp = client->request(work, &err);
    if (!resp.has_value()) {
      std::fprintf(stderr, "xtsocc: %s\n", err.c_str());
      return 1;
    }
    ok = resp->find("ok");
    if (ok == nullptr || !ok->as_bool()) {
      std::fprintf(stderr, "xtsocc: daemon: %s\n",
                   field_or(*resp, "error", "request rejected").c_str());
      return 1;
    }
    std::printf("%s\n", resp->dump(2).c_str());
    return 0;
  }

  DiagnosticSink sink;
  auto project = core::Project::from_xtm(model_text, marks_text, sink);
  if (!project) {
    std::fprintf(stderr, "%s", sink.to_string().c_str());
    std::fprintf(stderr, "xtsocc: '%s' rejected\n", opt.model_path.c_str());
    return 1;
  }
  for (const auto& d : sink.all()) {
    if (d.severity == Severity::kWarning) {
      std::fprintf(stderr, "%s\n", d.to_string().c_str());
    }
  }

  if (opt.print_summary) std::printf("%s", project->summary().c_str());
  if (opt.check_only) return 0;

  if (!opt.simulate_path.empty() || opt.on_cosim) {
    // The registry exists only when something will read it; tracing is
    // armed only for --obs-trace. With neither, cfg.obs stays null and
    // every probe in the stack is a dead null-check.
    std::unique_ptr<obs::Registry> reg;
    if (!opt.obs_trace_path.empty() || opt.obs_snapshot || opt.obs_counters) {
      reg = std::make_unique<obs::Registry>();
      if (!opt.obs_trace_path.empty()) reg->enable_tracing(true);
    }
    cosim::CoSimConfig cfg;
    cfg.threads = opt.threads;
    cfg.window = opt.window;
    cfg.obs = reg.get();

    // --engine: vm is the bytecode reference; jit AOT-compiles the model
    // and falls back to vm when unavailable — a warning plus the reason in
    // the report's "engines" section, never an error. Both engines are
    // byte-identical by contract, so a run that never asked for an engine
    // never mentions one.
    jit::JitResult jit_result;  // owns the module for the cosim's lifetime
    if (!opt.engine.empty()) {
      cfg.engine = runtime::ActionEngine::kBytecode;
      cfg.engine_status.requested = opt.engine;
      cfg.engine_status.active = "vm";
      if (opt.engine == "jit") {
        jit::JitOptions jopts;
        jopts.cache_dir = opt.jit_cache_dir;
        jit_result = jit::compile(project->compiled(), jopts);
        if (jit_result.module != nullptr) {
          cfg.engine = runtime::ActionEngine::kJit;
          cfg.compiled = jit_result.module.get();
          cfg.engine_status.active = "jit";
          cfg.engine_status.digest = jit_result.digest;
          cfg.engine_status.cache_hit = jit_result.cache_hit;
        } else {
          cfg.engine_status.fallback_reason = jit_result.reason;
          std::fprintf(stderr,
                       "xtsocc: warning: jit unavailable (%s); running on "
                       "the bytecode VM\n",
                       jit_result.reason.c_str());
        }
      }
    }

    // --faults: the fault marks file reuses the .marks syntax and the
    // central validator, so a typo'd key or an out-of-range rate gets the
    // same diagnostics as -m (it may in fact BE the -m file).
    fault::FaultSpec fault_spec;
    std::unique_ptr<fault::Plan> fault_plan;
    if (!opt.faults_path.empty()) {
      std::string faults_text;
      if (!read_file(opt.faults_path, &faults_text)) {
        std::fprintf(stderr, "xtsocc: cannot read faults '%s'\n",
                     opt.faults_path.c_str());
        return 1;
      }
      DiagnosticSink fsink;
      marks::MarkSet fmarks = marks::MarkSet::from_text(faults_text, fsink);
      fmarks.validate(project->domain(), fsink);
      if (fsink.has_errors()) {
        std::fprintf(stderr, "%s", fsink.to_string().c_str());
        std::fprintf(stderr, "xtsocc: faults '%s' rejected\n",
                     opt.faults_path.c_str());
        return 1;
      }
      for (const auto& d : fsink.all()) {
        if (d.severity == Severity::kWarning) {
          std::fprintf(stderr, "%s\n", d.to_string().c_str());
        }
      }
      fault_spec = fault::FaultSpec::from_marks(fmarks);
      if (opt.campaign == 0) {
        fault_plan = std::make_unique<fault::Plan>(fault_spec);
        cfg.fault = fault_plan.get();
      }
    }

    if (opt.campaign > 0) {
      std::string script;
      if (!opt.simulate_path.empty() &&
          !read_file(opt.simulate_path, &script)) {
        std::fprintf(stderr, "xtsocc: cannot read script '%s'\n",
                     opt.simulate_path.c_str());
        return 1;
      }
      const bool scripted = !opt.simulate_path.empty();
      // Each run executes under a pinned per-run config (one worker
      // thread, auto window): a campaign row must depend only on the
      // model, the marks and its seed — never on host execution knobs.
      // --threads scales how many runs execute concurrently instead, and
      // every thread count produces the identical campaign document.
      fault::Campaign campaign(fault_spec, opt.campaign, opt.threads);
      fault::CampaignResult result;
      try {
        result = campaign.run([&](int index, std::uint64_t) {
          fault::Plan plan(campaign.spec_for(index));
          cosim::CoSimConfig rcfg;
          rcfg.fault = &plan;
          fault::RunOutcome o;
          if (scripted) {
            std::ostringstream discard;
            core::StimulusResult r = core::run_stimulus_cosim(
                *project, script, discard, rcfg,
                [&](const cosim::CoSimulation& cs) {
                  o = cosim::outcome_of(cs, plan);
                });
            o.survived = o.survived && r.ok;
          } else {
            // Stimulus-free campaign: a fixed-length bring-up run, long
            // enough for retransmissions to resolve either way.
            auto cs = project->make_cosim(rcfg);
            cs->run_cycles(512);
            o = cosim::outcome_of(*cs, plan);
          }
          return o;
        });
      } catch (const std::exception& e) {
        std::fprintf(stderr, "xtsocc: campaign failed: %s\n", e.what());
        return 1;
      }
      std::string doc = result.to_snapshot().to_json(2);
      doc += '\n';
      if (!opt.campaign_out_path.empty()) {
        std::ofstream os(opt.campaign_out_path, std::ios::binary);
        if (!os) {
          std::fprintf(stderr, "xtsocc: cannot write campaign '%s'\n",
                       opt.campaign_out_path.c_str());
          return 1;
        }
        os << doc;
        std::printf("campaign: %d runs, %zu survived; wrote %s\n",
                    opt.campaign, result.survivors(),
                    opt.campaign_out_path.c_str());
      } else {
        std::printf("%s", doc.c_str());
      }
      return 0;
    }

    int status = 0;
    if (!opt.simulate_path.empty()) {
      std::string script;
      if (!read_file(opt.simulate_path, &script)) {
        std::fprintf(stderr, "xtsocc: cannot read script '%s'\n",
                     opt.simulate_path.c_str());
        return 1;
      }
      std::ostringstream out;
      core::StimulusResult r;
      if (opt.on_cosim) {
        r = core::run_stimulus_cosim(
            *project, script, out, cfg,
            [&](const cosim::CoSimulation& cs) {
              emit_obs_reports(cs, opt, reg.get());
              if (!opt.checkpoint_out_path.empty()) {
                snap::write_file(opt.checkpoint_out_path,
                                 snap::save(cs, cfg.fault, reg.get()));
                std::printf("wrote checkpoint %s (cycle %llu)\n",
                            opt.checkpoint_out_path.c_str(),
                            static_cast<unsigned long long>(cs.cycles()));
              }
            });
      } else {
        r = core::run_stimulus(*project, script, out);
      }
      std::printf("%s%s\n", out.str().c_str(), r.to_string().c_str());
      status = r.ok ? 0 : 1;
    } else {
      // --on-cosim without --simulate: a stimulus-free bring-up run of
      // --run-cycles cycles (default 64) so the observability surfaces
      // (--obs-trace, --obs=snapshot/counters) have a real run to
      // describe. --restore loads a snapshot into the fresh elaboration
      // first and the run continues from its saved cycle.
      auto cs = project->make_cosim(cfg);
      if (!opt.restore_path.empty()) {
        try {
          const std::vector<std::uint8_t> bytes =
              snap::read_file(opt.restore_path);
          const snap::SnapshotInfo info = snap::restore(
              *cs, bytes.data(), bytes.size(), fault_plan.get(), reg.get());
          std::printf("restored %s (cycle %llu)\n", opt.restore_path.c_str(),
                      static_cast<unsigned long long>(info.cycle));
        } catch (const snap::SnapError& e) {
          std::fprintf(stderr, "xtsocc: --restore %s: %s\n",
                       opt.restore_path.c_str(), e.what());
          return 1;
        }
      }
      cs->run_cycles(opt.run_cycles);
      std::printf("cosim bring-up: %llu cycles, threads=%d, window=%d, "
                  "interconnect=%s\n",
                  static_cast<unsigned long long>(cs->cycles()), opt.threads,
                  cs->window(), cs->has_fabric() ? "noc" : "bus");
      emit_obs_reports(*cs, opt, reg.get());
      if (!opt.checkpoint_out_path.empty()) {
        try {
          snap::write_file(opt.checkpoint_out_path,
                           snap::save(*cs, cfg.fault, reg.get()));
          std::printf("wrote checkpoint %s (cycle %llu)\n",
                      opt.checkpoint_out_path.c_str(),
                      static_cast<unsigned long long>(cs->cycles()));
        } catch (const snap::SnapError& e) {
          std::fprintf(stderr, "xtsocc: --checkpoint-out %s: %s\n",
                       opt.checkpoint_out_path.c_str(), e.what());
          return 1;
        }
      }
    }

    if (!opt.obs_trace_path.empty()) {
      std::ofstream os(opt.obs_trace_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "xtsocc: cannot write trace '%s'\n",
                     opt.obs_trace_path.c_str());
        return 1;
      }
      reg->write_chrome_trace(os);
      os << '\n';
      std::printf("wrote %s (%llu trace events)\n", opt.obs_trace_path.c_str(),
                  static_cast<unsigned long long>(reg->event_count()));
    }
    return status;
  }

  codegen::Output out;
  DiagnosticSink gen_sink;
  if (opt.c_only) {
    out = project->generate_c(gen_sink);
  } else if (opt.vhdl_only) {
    out = project->generate_vhdl(gen_sink);
  } else {
    out = project->generate_all(gen_sink);
  }
  if (gen_sink.has_errors()) {
    std::fprintf(stderr, "%s", gen_sink.to_string().c_str());
    return 1;
  }

  if (opt.out_dir.empty()) {
    // No output directory: list what would be written.
    for (const auto& f : out.files) {
      std::printf("  %-28s %6zu lines\n", f.path.c_str(),
                  count_lines(f.content));
    }
    std::printf("(pass -o DIR to write %zu files, %zu lines)\n",
                out.files.size(), out.total_lines());
    return 0;
  }

  for (const auto& f : out.files) {
    fs::path dest = fs::path(opt.out_dir) / f.path;
    std::error_code ec;
    fs::create_directories(dest.parent_path(), ec);
    std::ofstream os(dest);
    if (!os) {
      std::fprintf(stderr, "xtsocc: cannot write '%s'\n", dest.c_str());
      return 1;
    }
    os << f.content;
  }
  std::printf("wrote %zu files (%zu lines) under %s\n", out.files.size(),
              out.total_lines(), opt.out_dir.c_str());
  return 0;
}
