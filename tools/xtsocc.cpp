// xtsocc — the xtsoc model compiler, as a command-line tool.
//
//   xtsocc MODEL.xtm [options]
//
//   -m, --marks FILE    marks file (sticky notes; default: no marks,
//                       everything maps to software)
//   -o, --out DIR       write generated sources under DIR (sw/ and hw/)
//       --c-only        generate only the software partition
//       --vhdl-only     generate only the hardware partition
//       --check         stop after compile + map (exit status reports
//                       model/marks validity)
//       --simulate FILE run a stimulus script against the abstract model
//                       (exit status reflects its expectations)
//       --on-cosim      run --simulate against the partitioned cosim instead
//       --threads N     cosim worker threads for --on-cosim (default 1 =
//                       serial; any N produces byte-identical results)
//       --window N      cosim execution window in cycles for --on-cosim:
//                       0 (default) = auto, the interconnect's full static
//                       lookahead; 1 forces per-cycle lockstep; values above
//                       the lookahead are clamped down (correctness bound)
//       --noc-stats     after --on-cosim on a mesh-placed model (tileX/tileY
//                       marks), print the NoC statistics table: per-router
//                       flit counts, per-link utilization, buffer high-water
//                       marks, frame latency histogram
//       --summary       print the partition/interface summary (default on)
//       --quiet         suppress the summary
//   -h, --help          this text
//
// Exit status: 0 on success, 1 on invalid model/marks/usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "xtsoc/core/project.hpp"
#include "xtsoc/core/stimulus.hpp"

namespace fs = std::filesystem;
using namespace xtsoc;

namespace {

struct Options {
  std::string model_path;
  std::string marks_path;
  std::string out_dir;
  bool c_only = false;
  bool vhdl_only = false;
  bool check_only = false;
  bool summary = true;
  std::string simulate_path;
  bool on_cosim = false;
  bool noc_stats = false;
  int threads = 1;
  int window = 0;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: xtsocc MODEL.xtm [-m MARKS] [-o OUTDIR] [--c-only] "
               "[--vhdl-only] [--check] [--quiet] [--simulate FILE "
               "[--on-cosim [--threads N] [--window N] [--noc-stats]]]\n");
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-h" || a == "--help") {
      usage(stdout);
      std::exit(0);
    } else if (a == "-m" || a == "--marks") {
      const char* v = next();
      if (!v) return false;
      opt->marks_path = v;
    } else if (a == "-o" || a == "--out") {
      const char* v = next();
      if (!v) return false;
      opt->out_dir = v;
    } else if (a == "--c-only") {
      opt->c_only = true;
    } else if (a == "--vhdl-only") {
      opt->vhdl_only = true;
    } else if (a == "--check") {
      opt->check_only = true;
    } else if (a == "--simulate") {
      const char* v = next();
      if (!v) return false;
      opt->simulate_path = v;
    } else if (a == "--on-cosim") {
      opt->on_cosim = true;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      opt->threads = std::atoi(v);
      if (opt->threads < 1) {
        std::fprintf(stderr, "xtsocc: --threads needs a positive integer\n");
        return false;
      }
    } else if (a == "--window") {
      const char* v = next();
      if (!v) return false;
      opt->window = std::atoi(v);
      if (opt->window < 0) {
        std::fprintf(stderr, "xtsocc: --window needs a non-negative integer "
                             "(0 = auto)\n");
        return false;
      }
    } else if (a == "--noc-stats") {
      opt->noc_stats = true;
    } else if (a == "--summary") {
      opt->summary = true;
    } else if (a == "--quiet") {
      opt->summary = false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "xtsocc: unknown option '%s'\n", a.c_str());
      return false;
    } else if (opt->model_path.empty()) {
      opt->model_path = a;
    } else {
      std::fprintf(stderr, "xtsocc: extra argument '%s'\n", a.c_str());
      return false;
    }
  }
  if (opt->model_path.empty()) {
    std::fprintf(stderr, "xtsocc: no model file given\n");
    return false;
  }
  if (opt->c_only && opt->vhdl_only) {
    std::fprintf(stderr, "xtsocc: --c-only and --vhdl-only are exclusive\n");
    return false;
  }
  if (opt->noc_stats && (opt->simulate_path.empty() || !opt->on_cosim)) {
    std::fprintf(stderr,
                 "xtsocc: --noc-stats requires --simulate FILE --on-cosim\n");
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) {
    usage(stderr);
    return 1;
  }

  std::string model_text;
  if (!read_file(opt.model_path, &model_text)) {
    std::fprintf(stderr, "xtsocc: cannot read model '%s'\n",
                 opt.model_path.c_str());
    return 1;
  }
  std::string marks_text;
  if (!opt.marks_path.empty() && !read_file(opt.marks_path, &marks_text)) {
    std::fprintf(stderr, "xtsocc: cannot read marks '%s'\n",
                 opt.marks_path.c_str());
    return 1;
  }

  DiagnosticSink sink;
  auto project = core::Project::from_xtm(model_text, marks_text, sink);
  if (!project) {
    std::fprintf(stderr, "%s", sink.to_string().c_str());
    std::fprintf(stderr, "xtsocc: '%s' rejected\n", opt.model_path.c_str());
    return 1;
  }
  for (const auto& d : sink.all()) {
    if (d.severity == Severity::kWarning) {
      std::fprintf(stderr, "%s\n", d.to_string().c_str());
    }
  }

  if (opt.summary) std::printf("%s", project->summary().c_str());
  if (opt.check_only) return 0;

  if (!opt.simulate_path.empty()) {
    std::string script;
    if (!read_file(opt.simulate_path, &script)) {
      std::fprintf(stderr, "xtsocc: cannot read script '%s'\n",
                   opt.simulate_path.c_str());
      return 1;
    }
    std::ostringstream out;
    core::StimulusResult r;
    if (opt.on_cosim) {
      cosim::CoSimConfig cfg;
      cfg.threads = opt.threads;
      cfg.window = opt.window;
      r = core::run_stimulus_cosim(
          *project, script, out, cfg,
          [&opt](const cosim::CoSimulation& cs) {
            if (!opt.noc_stats) return;
            if (!cs.has_fabric()) {
              std::printf(
                  "(no NoC: model has no tileX/tileY marks, legacy bus "
                  "interconnect used)\n");
              return;
            }
            std::printf("%s", cs.fabric().stats().to_table().c_str());
          });
    } else {
      r = core::run_stimulus(*project, script, out);
    }
    std::printf("%s%s\n", out.str().c_str(), r.to_string().c_str());
    return r.ok ? 0 : 1;
  }

  codegen::Output out;
  DiagnosticSink gen_sink;
  if (opt.c_only) {
    out = project->generate_c(gen_sink);
  } else if (opt.vhdl_only) {
    out = project->generate_vhdl(gen_sink);
  } else {
    out = project->generate_all(gen_sink);
  }
  if (gen_sink.has_errors()) {
    std::fprintf(stderr, "%s", gen_sink.to_string().c_str());
    return 1;
  }

  if (opt.out_dir.empty()) {
    // No output directory: list what would be written.
    for (const auto& f : out.files) {
      std::printf("  %-28s %6zu lines\n", f.path.c_str(),
                  count_lines(f.content));
    }
    std::printf("(pass -o DIR to write %zu files, %zu lines)\n",
                out.files.size(), out.total_lines());
    return 0;
  }

  for (const auto& f : out.files) {
    fs::path dest = fs::path(opt.out_dir) / f.path;
    std::error_code ec;
    fs::create_directories(dest.parent_path(), ec);
    std::ofstream os(dest);
    if (!os) {
      std::fprintf(stderr, "xtsocc: cannot write '%s'\n", dest.c_str());
      return 1;
    }
    os << f.content;
  }
  std::printf("wrote %zu files (%zu lines) under %s\n", out.files.size(),
              out.total_lines(), opt.out_dir.c_str());
  return 0;
}
