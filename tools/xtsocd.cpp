// xtsocd — the xtsoc campaign daemon.
//
//   xtsocd --socket PATH [options] [NAME=MODEL.xtm[,MARKS.marks]]...
//
//   --socket PATH   AF_UNIX socket to serve on (required)
//   --threads N     shared worker-pool size for campaign fan-out
//                   (default 1; campaigns from every session share it)
//   --queue N       bounded execution queue: requests allowed to wait for
//                   the executor before "server busy" (default 4)
//   --quota N       campaign runs each tenant may consume (default 4096)
//   --oneshot       exit after the first client requests shutdown (used by
//                   the smoke tests; without it, run until SIGINT/SIGTERM)
//   -h, --help      this text
//
// Positional arguments pre-load models into the resident registry, e.g.
// `traffic=examples/models/traffic.xtm,examples/models/traffic.marks`.
// Clients can also ship models over the wire with the "load" op.
//
// Protocol: newline-delimited JSON; see docs/SERVER.md. The point of the
// daemon is what stays warm between requests: pre-elaborated models, warm
// campaign checkpoints, and the worker pool — a 16-seed campaign served
// from a resident checkpoint skips 16 model elaborations and 16 warm-up
// re-simulations (bench_snap gates the speedup).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "xtsoc/snap/server.hpp"

using namespace xtsoc;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: xtsocd --socket PATH [--threads N] [--queue N] "
               "[--quota N] [--oneshot] [NAME=MODEL.xtm[,MARKS.marks]]...\n");
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Pre-load one `NAME=MODEL[,MARKS]` positional spec.
bool preload(snap::Server& server, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::fprintf(stderr, "xtsocd: bad model spec '%s' (want NAME=MODEL.xtm"
                         "[,MARKS.marks])\n", spec.c_str());
    return false;
  }
  const std::string name = spec.substr(0, eq);
  std::string model_path = spec.substr(eq + 1);
  std::string marks_path;
  const std::size_t comma = model_path.find(',');
  if (comma != std::string::npos) {
    marks_path = model_path.substr(comma + 1);
    model_path.resize(comma);
  }
  std::string model_text, marks_text;
  if (!read_file(model_path, &model_text)) {
    std::fprintf(stderr, "xtsocd: cannot read model '%s'\n",
                 model_path.c_str());
    return false;
  }
  if (!marks_path.empty() && !read_file(marks_path, &marks_text)) {
    std::fprintf(stderr, "xtsocd: cannot read marks '%s'\n",
                 marks_path.c_str());
    return false;
  }
  std::string err;
  if (!server.load_model(name, model_text, marks_text, &err)) {
    std::fprintf(stderr, "xtsocd: %s: %s\n", name.c_str(), err.c_str());
    return false;
  }
  std::printf("xtsocd: model '%s' resident\n", name.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  snap::ServerConfig cfg;
  bool oneshot = false;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-h" || a == "--help") {
      usage(stdout);
      return 0;
    } else if (a == "--socket") {
      const char* v = next();
      if (!v) { usage(stderr); return 1; }
      cfg.socket_path = v;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) {
        std::fprintf(stderr, "xtsocd: --threads needs a positive integer\n");
        return 1;
      }
      cfg.threads = std::atoi(v);
    } else if (a == "--queue") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) {
        std::fprintf(stderr, "xtsocd: --queue needs a non-negative integer\n");
        return 1;
      }
      cfg.max_queue = std::atoi(v);
    } else if (a == "--quota") {
      const char* v = next();
      if (!v || std::atoll(v) < 1) {
        std::fprintf(stderr, "xtsocd: --quota needs a positive integer\n");
        return 1;
      }
      cfg.tenant_quota = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--oneshot") {
      oneshot = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "xtsocd: unknown option '%s'\n", a.c_str());
      usage(stderr);
      return 1;
    } else {
      specs.push_back(a);
    }
  }
  if (cfg.socket_path.empty()) {
    std::fprintf(stderr, "xtsocd: --socket is required\n");
    usage(stderr);
    return 1;
  }

  snap::Server server(cfg);
  for (const std::string& spec : specs) {
    if (!preload(server, spec)) return 1;
  }

  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "xtsocd: %s\n", err.c_str());
    return 1;
  }
  std::printf("xtsocd: serving on %s (threads=%d, queue=%d, quota=%llu)\n",
              cfg.socket_path.c_str(), cfg.threads, cfg.max_queue,
              static_cast<unsigned long long>(cfg.tenant_quota));
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0 && !(oneshot && server.shutdown_requested())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  std::printf("xtsocd: stopped\n");
  return 0;
}
